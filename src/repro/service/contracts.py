"""Wire contracts of the fleet service: typed, versioned payloads.

Every request and response body that crosses the HTTP boundary is one
of these dataclasses, round-tripped through plain JSON dicts.  Each
payload carries the contract version (``api``); a reader rejects
versions newer than it understands, so a stale worker talking to a
newer server fails loudly instead of mis-parsing.

This module is deliberately stdlib-only and imports nothing from the
rest of the package: the client (and a worker deployed on a bare
host) needs exactly these shapes plus ``urllib``.  Scenario and sweep
payloads travel as the plain dicts their own ``to_dict``/``from_dict``
already define — the service adds an envelope, not a new encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = [
    "API_VERSION",
    "ContractError",
    "FleetStatus",
    "Health",
    "LeaseGrant",
    "ResultAck",
    "ResultSubmission",
    "SubmitAck",
]

#: Version of the request/response shapes defined here.
API_VERSION = 1

#: Fleet lifecycle states, in order.
FLEET_STATES = ("running", "complete")


class ContractError(ValueError):
    """A payload that does not parse as the contract it claims to be."""


def _check_api(data: Mapping[str, Any], kind: str) -> None:
    api = data.get("api", API_VERSION)
    if not isinstance(api, int) or api > API_VERSION:
        raise ContractError(
            f"{kind} payload is api version {api!r}; this side "
            f"speaks up to {API_VERSION}")


def _require(data: Mapping[str, Any], kind: str, *fields: str) -> None:
    missing = [name for name in fields if name not in data]
    if missing:
        raise ContractError(f"{kind} payload missing {missing}")


@dataclass(frozen=True)
class Health:
    """``GET /healthz``: liveness *and* readiness.

    Beyond version/uptime, the probe carries everything a load
    balancer (or the backpressure tests) needs to judge the server:
    queue depth and in-flight leases (``queue``), journal vitals and
    replay lag (``journal``), shared-cache usage and live hit/corrupt
    counters (``cache``), the drain flag, and a summary ``ready``
    verdict — ``False`` once draining starts.  All additive since api
    1, so old readers still parse.
    """

    version: str                        #: repro package version
    uptime_s: float
    fleets: int                         #: fleets submitted this process
    running: int                        #: of which still running
    cache: dict[str, Any] = field(default_factory=dict)
    queue: dict[str, Any] = field(default_factory=dict)
    journal: dict[str, Any] = field(default_factory=dict)
    limits: dict[str, Any] = field(default_factory=dict)
    draining: bool = False
    ready: bool = True
    api: int = API_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {"api": self.api, "service": "repro",
                "version": self.version, "uptime_s": self.uptime_s,
                "fleets": self.fleets, "running": self.running,
                "cache": dict(self.cache), "queue": dict(self.queue),
                "journal": dict(self.journal),
                "limits": dict(self.limits),
                "draining": self.draining, "ready": self.ready}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Health":
        _check_api(data, "health")
        _require(data, "health", "version", "uptime_s")
        return cls(version=str(data["version"]),
                   uptime_s=float(data["uptime_s"]),
                   fleets=int(data.get("fleets", 0)),
                   running=int(data.get("running", 0)),
                   cache=dict(data.get("cache", {})),
                   queue=dict(data.get("queue", {})),
                   journal=dict(data.get("journal", {})),
                   limits=dict(data.get("limits", {})),
                   draining=bool(data.get("draining", False)),
                   ready=bool(data.get("ready", True)),
                   api=int(data.get("api", API_VERSION)))


@dataclass(frozen=True)
class SubmitAck:
    """``POST /fleets`` response: the new fleet's identity and size.

    ``duplicate=True`` means the submission's idempotency key had been
    seen before and this ack describes the *original* fleet — the
    response a client retrying an ambiguous submission failure gets
    instead of a second copy of its fleet.
    """

    fleet_id: str
    total: int                          #: runs in the fleet
    cached: int                         #: served from cache at submit
    duplicate: bool = False             #: idempotent replay of a prior submit
    api: int = API_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {"api": self.api, "fleet_id": self.fleet_id,
                "total": self.total, "cached": self.cached,
                "duplicate": self.duplicate}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SubmitAck":
        _check_api(data, "submit-ack")
        _require(data, "submit-ack", "fleet_id", "total")
        return cls(fleet_id=str(data["fleet_id"]),
                   total=int(data["total"]),
                   cached=int(data.get("cached", 0)),
                   duplicate=bool(data.get("duplicate", False)),
                   api=int(data.get("api", API_VERSION)))


@dataclass(frozen=True)
class FleetStatus:
    """``GET /fleets/<id>``: a fleet's progress snapshot."""

    fleet_id: str
    state: str                          #: ``running`` | ``complete``
    total: int
    done: int
    leased: int
    pending: int
    cached: int                         #: of ``done``, reused not computed
    workers: int                        #: distinct workers that completed runs
    wall_s: float                       #: submit -> now (or completion)
    api: int = API_VERSION

    def __post_init__(self) -> None:
        if self.state not in FLEET_STATES:
            raise ContractError(f"unknown fleet state {self.state!r}")

    @property
    def complete(self) -> bool:
        return self.state == "complete"

    def to_dict(self) -> dict[str, Any]:
        return {"api": self.api, "fleet_id": self.fleet_id,
                "state": self.state, "total": self.total,
                "done": self.done, "leased": self.leased,
                "pending": self.pending, "cached": self.cached,
                "workers": self.workers, "wall_s": self.wall_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetStatus":
        _check_api(data, "fleet-status")
        _require(data, "fleet-status", "fleet_id", "state", "total",
                 "done")
        return cls(fleet_id=str(data["fleet_id"]),
                   state=str(data["state"]),
                   total=int(data["total"]), done=int(data["done"]),
                   leased=int(data.get("leased", 0)),
                   pending=int(data.get("pending", 0)),
                   cached=int(data.get("cached", 0)),
                   workers=int(data.get("workers", 0)),
                   wall_s=float(data.get("wall_s", 0.0)),
                   api=int(data.get("api", API_VERSION)))


@dataclass(frozen=True)
class LeaseGrant:
    """``POST /lease`` response: one run checked out to one worker.

    ``run`` is a plain :class:`~repro.fleet.sweep.RunSpec` dict.  The
    lease expires ``ttl_s`` after grant; a worker that has not posted
    the run's result by then loses it — the run silently returns to
    the queue for the next worker, and a late result is still accepted
    (verified by content) unless someone else finished first.
    """

    lease_id: str
    fleet_id: str
    run: dict[str, Any]
    ttl_s: float
    api: int = API_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {"api": self.api, "lease_id": self.lease_id,
                "fleet_id": self.fleet_id, "run": dict(self.run),
                "ttl_s": self.ttl_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LeaseGrant":
        _check_api(data, "lease-grant")
        _require(data, "lease-grant", "lease_id", "fleet_id", "run")
        run = data["run"]
        if not isinstance(run, Mapping):
            raise ContractError("lease-grant run must be a RunSpec dict")
        return cls(lease_id=str(data["lease_id"]),
                   fleet_id=str(data["fleet_id"]), run=dict(run),
                   ttl_s=float(data.get("ttl_s", 0.0)),
                   api=int(data.get("api", API_VERSION)))


@dataclass(frozen=True)
class ResultSubmission:
    """``POST /results`` request: a worker returning a leased run.

    Either ``record`` (a :class:`~repro.fleet.sweep.RunRecord` dict)
    on success or ``error`` on failure — a failed run is immediately
    re-queued instead of waiting out the lease.
    """

    lease_id: str
    record: Optional[dict[str, Any]] = None
    wall_s: float = 0.0
    error: str = ""
    api: int = API_VERSION

    def __post_init__(self) -> None:
        if (self.record is None) == (not self.error):
            raise ContractError(
                "result payload needs exactly one of record/error")

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"api": self.api,
                                   "lease_id": self.lease_id,
                                   "wall_s": self.wall_s}
        if self.record is not None:
            payload["record"] = dict(self.record)
        if self.error:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultSubmission":
        _check_api(data, "result")
        _require(data, "result", "lease_id")
        record = data.get("record")
        if record is not None and not isinstance(record, Mapping):
            raise ContractError("result record must be a RunRecord dict")
        return cls(lease_id=str(data["lease_id"]),
                   record=dict(record) if record is not None else None,
                   wall_s=float(data.get("wall_s", 0.0)),
                   error=str(data.get("error", "")),
                   api=int(data.get("api", API_VERSION)))


@dataclass(frozen=True)
class ResultAck:
    """``POST /results`` response: what the broker did with it."""

    accepted: bool                      #: record became the run's result
    duplicate: bool = False             #: run already had a result
    requeued: bool = False              #: failure path: run back in queue
    api: int = API_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {"api": self.api, "accepted": self.accepted,
                "duplicate": self.duplicate, "requeued": self.requeued}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultAck":
        _check_api(data, "result-ack")
        _require(data, "result-ack", "accepted")
        return cls(accepted=bool(data["accepted"]),
                   duplicate=bool(data.get("duplicate", False)),
                   requeued=bool(data.get("requeued", False)),
                   api=int(data.get("api", API_VERSION)))
