"""Shared retry policy: exponential backoff with deterministic jitter.

Every component that talks across the network — the
:class:`~repro.service.client.ServiceClient`, the ``remote`` executor
backend, the worker loop — retries through one :class:`RetryPolicy`
instead of hand-rolled sleep loops.  The policy is pure data: given an
attempt number (and the caller's stable ``key``), the delay is a pure
function, so a retry schedule is reproducible run to run and in tests.

Design points:

* **Exponential backoff, capped.**  Attempt ``n`` waits
  ``base * multiplier**n``, clamped to ``max_delay_s``.
* **Deterministic jitter.**  Real deployments need jitter so a fleet
  of workers does not reconnect in lockstep after a server restart;
  a reproducibility repo needs schedules that replay bit-identically.
  Both: the jitter fraction is derived from a BLAKE2b hash of
  ``(key, attempt)`` — different workers (different keys) spread out,
  the same worker replays the same schedule every time, and no global
  RNG state is touched (REP001 stays clean).
* **Server hints win.**  A 429/503 response carrying ``Retry-After``
  overrides the computed delay when it asks for *more* patience —
  backpressure is the server's call.
* **Budgets.**  ``max_attempts`` bounds the count and ``budget_s``
  bounds the total time spent waiting; whichever trips first ends the
  retry loop and re-raises the last error.

Idempotency is the other half of the contract and lives with the
callers: result submission is deduplicated by ``run_key`` content
identity and fleet submission by client-generated submission keys, so
retrying an *ambiguous* failure (request sent, response lost) is
always safe.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, TypeVar

__all__ = [
    "RetryPolicy",
    "RetryExhausted",
    "call_with_retry",
    "deterministic_jitter",
]

T = TypeVar("T")

#: What a classifier returns for a retryable error: the server's
#: Retry-After hint in seconds, or 0.0 when it gave none.  ``None``
#: means "not retryable" and the error propagates immediately.
Classifier = Callable[[BaseException], Optional[float]]


def deterministic_jitter(key: str, attempt: int) -> float:
    """A stable jitter fraction in ``[0, 1)`` for ``(key, attempt)``.

    BLAKE2b of the pair, mapped to a fraction — no RNG state, no seam
    for wall-clock or process identity to leak into the schedule.
    """
    digest = hashlib.blake2b(f"{key}:{attempt}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


class RetryExhausted(Exception):
    """Every allowed attempt failed; the last error is the cause."""

    def __init__(self, attempts: int, key: str,
                 last: BaseException) -> None:
        super().__init__(
            f"{key or 'request'} failed after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}")
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """How one class of requests backs off and gives up.

    ``max_attempts=1`` means "try once, never retry" — the neutral
    policy a bare client defaults to.  ``timeout_s`` is the per-request
    socket timeout callers should apply; it rides on the policy so one
    value configures a whole component.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.2
    multiplier: float = 2.0
    max_delay_s: float = 10.0
    jitter: float = 0.25          #: +/- fraction of the computed delay
    timeout_s: float = 30.0       #: per-request timeout for callers
    budget_s: Optional[float] = None  #: total sleep budget, None = unbounded

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Try exactly once; no backoff."""
        return cls(max_attempts=1)

    def delay_s(self, attempt: int, *, key: str = "",
                retry_after_s: float = 0.0) -> float:
        """Seconds to wait after failed attempt ``attempt`` (0-based).

        Exponential base delay, deterministic jitter spread around it,
        clamped to ``max_delay_s`` — then raised to the server's
        ``Retry-After`` hint when that asks for more.
        """
        base = min(self.base_delay_s * self.multiplier ** attempt,
                   self.max_delay_s)
        spread = 1.0 + self.jitter * (
            2.0 * deterministic_jitter(key, attempt) - 1.0)
        return max(min(base * spread, self.max_delay_s),
                   float(retry_after_s))


def call_with_retry(fn: Callable[[], T], *,
                    policy: RetryPolicy,
                    classify: Classifier,
                    key: str = "",
                    sleep: Callable[[float], None] = time.sleep,
                    clock: Callable[[], float] = time.monotonic,
                    on_retry: Optional[
                        Callable[[int, float, BaseException],
                                 Any]] = None) -> T:
    """Run ``fn`` under ``policy``, retrying errors ``classify`` allows.

    ``classify(exc)`` returns the server's Retry-After hint in seconds
    (0.0 for "retryable, no hint") or ``None`` for "give up now" —
    non-retryable errors propagate unwrapped.  ``on_retry(attempt,
    delay_s, exc)`` observes each backoff (logging, test probes).
    Raises :class:`RetryExhausted` once attempts or the time budget run
    out; the last error is chained as the cause.
    """
    deadline = (clock() + policy.budget_s
                if policy.budget_s is not None else None)
    last: BaseException
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except BaseException as exc:
            retry_after = classify(exc)
            if retry_after is None:
                raise
            last = exc
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.delay_s(attempt, key=key,
                                   retry_after_s=retry_after)
            if deadline is not None and clock() + delay > deadline:
                break
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            if delay > 0:
                sleep(delay)
    raise RetryExhausted(policy.max_attempts, key, last) from last
