"""Crash-safe append-only journal of fleet-broker state.

The durability layer under ``python -m repro serve``: every state
transition the broker must not forget — a fleet submitted, a lease
granted, a result acked, a fleet completed — is appended to an on-disk
journal *before* the transition is acknowledged to the caller.  A
restarted server replays the journal and carries on: completed runs
are never re-evaluated (their records are re-verified from the fleet
store by content identity), in-flight leases are simply not restored
(the runs return to the queue), and half-submitted garbage from a
crash mid-append is ignored.

Format — segmented NDJSON::

    <dir>/
      segment-000001.ndjson     # one JSON object per line
      segment-000002.ndjson     # the live (append) segment

* **Appends** go to the highest-numbered segment: one
  ``json.dumps`` line, flushed (and optionally fsynced) per entry.  A
  torn final line — the signature of a crash mid-write — is detected
  on replay and dropped; every whole line is replayed.
* **Compaction** is staged: the compacted state is written to a brand
  new segment through a temp file and one atomic :func:`os.replace`,
  *then* the older segments are unlinked.  The first entry of a
  compacted segment is a ``snapshot`` marker; replay discards
  everything older when it meets one, so a crash between the replace
  and the unlinks only costs disk, never correctness.
* **Entries** are self-describing dicts with a monotonically
  increasing ``seq`` — idempotent to replay, ordered by construction.

The journal knows nothing about brokers; it stores and replays dicts.
:meth:`repro.service.broker.FleetBroker.recover` owns the semantics.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Optional, Union

__all__ = ["FleetJournal", "SNAPSHOT_TYPE"]

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".ndjson"

#: Entry type that marks the head of a compacted segment: replay
#: discards everything read before it.
SNAPSHOT_TYPE = "snapshot"


def _segment_index(path: Path) -> int:
    return int(path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])


class FleetJournal:
    """One append-only journal directory.

    Not internally locked: the broker serializes appends under its own
    condition (journal writes must be ordered with the state changes
    they record, so a second lock would only add a lock-order hazard).
    ``fsync=True`` makes every append durable against power loss, not
    just process death; the CLI turns it on for ``--state`` servers,
    tests leave it off for speed.
    """

    def __init__(self, directory: Union[str, Path], *,
                 fsync: bool = False) -> None:
        self.directory = Path(directory)
        self.fsync = fsync
        self.directory.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        #: appends since the last compaction — the "journal lag" a
        #: readiness probe reports (how much replay a restart would do
        #: beyond the last snapshot).
        self.appended_since_compact = 0
        #: torn/corrupt lines dropped by the last replay.
        self.dropped_lines = 0
        segments = self.segments()
        self._live = segments[-1] if segments \
            else self.directory / f"{SEGMENT_PREFIX}000001{SEGMENT_SUFFIX}"
        # Continue the sequence from what is already on disk.
        for entry in self.replay():
            self._seq = max(self._seq, int(entry.get("seq", 0)))

    # -- segments ---------------------------------------------------------

    def segments(self) -> list[Path]:
        """Segment files in replay (numeric) order."""
        return sorted(
            (p for p in self.directory.glob(
                f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")
             if p.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)].isdigit()),
            key=_segment_index)

    def stats(self) -> dict[str, Any]:
        """Vitals for the readiness probe."""
        segments = self.segments()
        return {
            "directory": str(self.directory),
            "segments": len(segments),
            "bytes": sum(p.stat().st_size for p in segments
                         if p.exists()),
            "entries": self._seq,
            "lag": self.appended_since_compact,
            "dropped_lines": self.dropped_lines,
            "fsync": self.fsync,
        }

    # -- writing ----------------------------------------------------------

    def append(self, entry: dict[str, Any]) -> int:
        """Durably append one entry; returns its sequence number.

        The line is flushed (and fsynced when configured) before this
        returns — an ack the broker sends after ``append`` is an ack
        the journal already remembers.
        """
        self._seq += 1
        stamped = dict(entry, seq=self._seq)
        line = json.dumps(stamped, sort_keys=True) + "\n"
        with self._live.open("a") as handle:
            handle.write(line)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self.appended_since_compact += 1
        return self._seq

    def sync(self) -> None:
        """Force the live segment (and its directory entry) to disk —
        the drain path's final barrier before exit."""
        if self._live.exists():
            fd = os.open(self._live, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        dir_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def compact(self, entries: list[dict[str, Any]]) -> Path:
        """Replace the whole journal with ``entries`` + a snapshot head.

        Staged: the new segment is written complete to a temp file and
        atomically renamed into place as the *next* segment index,
        then every older segment is unlinked.  Replay after a crash at
        any point between those steps still reconstructs the same
        state — the snapshot marker discards whatever older segments
        survive.
        """
        old = self.segments()
        next_index = (_segment_index(old[-1]) + 1) if old else 1
        target = self.directory / (
            f"{SEGMENT_PREFIX}{next_index:06d}{SEGMENT_SUFFIX}")
        staging = target.with_name(f".{target.name}.tmp")
        with staging.open("w") as handle:
            self._seq += 1
            head = {"type": SNAPSHOT_TYPE, "seq": self._seq}
            handle.write(json.dumps(head, sort_keys=True) + "\n")
            for entry in entries:
                self._seq += 1
                handle.write(json.dumps(dict(entry, seq=self._seq),
                                        sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, target)
        for stale in old:
            stale.unlink(missing_ok=True)
        self._live = target
        self.appended_since_compact = 0
        return target

    # -- reading ----------------------------------------------------------

    def replay(self) -> list[dict[str, Any]]:
        """Every surviving entry, oldest first.

        A line that does not parse is dropped (counted in
        ``dropped_lines``): the torn tail a crash mid-append leaves is
        the expected case, any other corruption loses one entry, not
        the journal.  A snapshot marker discards everything replayed
        before it — that is what makes staged compaction crash-safe.
        """
        self.dropped_lines = 0
        entries: list[dict[str, Any]] = []
        for segment in self.segments():
            for line in segment.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    self.dropped_lines += 1
                    continue
                if not isinstance(entry, dict):
                    self.dropped_lines += 1
                    continue
                if entry.get("type") == SNAPSHOT_TYPE:
                    entries = []
                    continue
                entries.append(entry)
        return entries

    def iter_types(self, *types: str) -> Iterator[dict[str, Any]]:
        """Replayed entries filtered to the given ``type`` values."""
        wanted = set(types)
        for entry in self.replay():
            if entry.get("type") in wanted:
                yield entry


def open_journal(directory: Optional[Union[str, Path]], *,
                 fsync: bool = False) -> Optional[FleetJournal]:
    """A journal at ``directory``, or ``None`` when durability is off."""
    if directory is None:
        return None
    return FleetJournal(directory, fsync=fsync)
