"""``python -m repro worker``: a remote executor process.

The worker is a small pull loop against one ``repro serve`` instance:
lease a run, evaluate it through the existing compiled/batch path
(one :class:`~repro.fleet.executors.BatchExecutor` is kept for the
whole session, so consecutive runs sharing a build key reuse one
compiled world), POST the record back, repeat.  Determinism needs no
help here — a :class:`~repro.fleet.sweep.RunRecord` is a pure
function of ``(spec, seed, density)``, so *which* worker evaluates a
run never shows in the record.

Failure handling mirrors the broker's fault model: an evaluation
error is reported (the run re-queues immediately for another worker),
and a worker that dies silently just lets its lease expire.  Every
request runs under the shared :class:`~repro.service.retry.RetryPolicy`
— transient connection errors, server restarts, and 429 backpressure
are absorbed by per-call backoff (idempotency makes blind retry safe),
so a worker outlives the server that feeds it.  A server that is
unreachable *at startup* raises :class:`ServiceUnavailable` after
``max_retries`` backed-off attempts — the CLI turns that into a clean
non-zero exit instead of a traceback.  The loop exits on its own when
the server stays down mid-session or — with ``max_idle_s`` — when the
queue stays empty long enough, so CI can run workers to completion
without process-management gymnastics.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Optional, Union

from ..fleet.compiled import COMPILED_DIR, CompiledScenarioCache
from ..fleet.executors import BatchExecutor
from ..fleet.sweep import RunSpec
from .client import ServiceClient, ServiceError, ServiceUnavailable
from .retry import RetryPolicy

__all__ = ["run_worker"]

#: Consecutive exhausted-retry connection failures before a running
#: worker gives up (each one already spans ``max_retries`` attempts).
MAX_UNREACHABLE = 5


def run_worker(server: str, *, worker_id: str = "",
               poll_s: float = 0.5,
               max_idle_s: Optional[float] = None,
               max_runs: Optional[int] = None,
               max_retries: int = 5,
               retry: Optional[RetryPolicy] = None,
               cache_dir: Optional[Union[str, Path]] = None,
               log: Optional[Callable[[str], None]] = None,
               sleep: Callable[[float], None] = time.sleep,
               fault_hook: Optional[
                   Callable[[str], Optional[str]]] = None) -> int:
    """Drain runs from ``server`` until told (or left) to stop.

    Returns the number of runs this worker completed.  ``max_idle_s``
    bounds how long an empty queue is polled before exiting;
    ``max_runs`` caps the session; ``cache_dir`` adds a local on-disk
    compiled-scenario tier so repeated builds survive worker restarts.
    ``max_retries`` sizes the default retry policy (override the whole
    policy with ``retry=``); ``sleep``/``fault_hook`` are the test
    seams for backoff and fault injection.

    Raises :class:`ServiceUnavailable` when the server cannot be
    reached at startup even after the full retry schedule.
    """
    worker_id = worker_id or f"worker-{os.getpid()}"
    say = log if log is not None else lambda message: None
    policy = retry if retry is not None else RetryPolicy(
        max_attempts=max(1, max_retries), base_delay_s=0.2,
        max_delay_s=2.0)
    client = ServiceClient(server, retry=policy, sleep=sleep,
                           fault_hook=fault_hook)
    # Startup probe: surface an unreachable (or nonsense) server as
    # one clean error after the retry schedule, not a traceback from
    # deep inside the first lease.
    try:
        client.health()
    except ServiceUnavailable as exc:
        raise ServiceUnavailable(
            f"server {server} unreachable after "
            f"{policy.max_attempts} attempt(s): {exc}") from None
    compiled = (CompiledScenarioCache(Path(cache_dir) / COMPILED_DIR)
                if cache_dir is not None else None)
    executor = BatchExecutor(compiled=compiled)
    completed = 0
    unreachable = 0
    idle_since: Optional[float] = None
    try:
        while True:
            if max_runs is not None and completed >= max_runs:
                say(f"{worker_id}: max-runs reached, exiting")
                break
            try:
                grant = client.lease(worker_id)
            except ServiceUnavailable:
                unreachable += 1
                if unreachable >= MAX_UNREACHABLE:
                    say(f"{worker_id}: server unreachable, exiting")
                    break
                sleep(poll_s)
                continue
            except ServiceError as exc:
                if exc.status == 429:
                    # Backpressure outlasted the retry budget: wait
                    # out the server's hint and keep going.
                    sleep(max(poll_s, exc.retry_after_s))
                    continue
                say(f"{worker_id}: lease rejected ({exc}), exiting")
                break
            unreachable = 0
            if grant is None:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if (max_idle_s is not None
                        and now - idle_since >= max_idle_s):
                    say(f"{worker_id}: idle for {max_idle_s:g} s, "
                        f"exiting")
                    break
                sleep(poll_s)
                continue
            idle_since = None
            run = RunSpec.from_dict(grant.run)
            try:
                outcome, = executor.map([run])
            except Exception as exc:   # report, requeue, keep serving
                say(f"{worker_id}: {run.run_id} failed: {exc}")
                try:
                    client.post_failure(
                        grant.lease_id,
                        f"{type(exc).__name__}: {exc}")
                except (ServiceError, ServiceUnavailable):
                    pass
                continue
            try:
                ack = client.post_result(grant.lease_id,
                                         outcome.record.to_dict(),
                                         wall_s=outcome.wall_s)
            except ServiceError as exc:
                say(f"{worker_id}: result for {run.run_id} rejected "
                    f"({exc})")
                continue
            except ServiceUnavailable:
                say(f"{worker_id}: server lost mid-result, exiting")
                break
            completed += 1
            state = ("ok" if ack.accepted
                     else "duplicate" if ack.duplicate else "dropped")
            say(f"{worker_id}: {run.run_id} done in "
                f"{outcome.wall_s:.2f} s ({state})")
    finally:
        executor.close()
    return completed
