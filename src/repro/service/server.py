"""``python -m repro serve``: the HTTP control plane.

A long-running, stdlib-only (:mod:`http.server`) service wrapping one
:class:`~repro.service.broker.FleetBroker` and one shared result
cache.  Many clients submit campaigns; many workers drain the queue;
one warm cache serves them all.  State is durable: every accepted
submission and result is journaled (:mod:`repro.service.journal`)
before it is acked, and a restarted server recovers its whole queue
through :meth:`FleetBroker.recover`.

Routes (bodies are the dataclasses in
:mod:`repro.service.contracts`, plus the fleet layer's own dict
encodings):

====================================  ======================================
``GET  /healthz``                     readiness probe: version, uptime,
                                      queue depth, journal lag, cache
                                      stats, limits, drain state
``GET  /scenarios``                   the scenario registry
``GET  /scenarios/<name>``            one spec as JSON
``POST /fleets``                      submit ``{"sweep": ...}`` or
                                      ``{"runs": [...]}``; 201 + SubmitAck
``GET  /fleets``                      status list
``GET  /fleets/<id>``                 one fleet's status
``GET  /fleets/<id>/events``          NDJSON progress stream
                                      (``?follow=1`` blocks until complete)
``GET  /fleets/<id>/records``         slot snapshots (``?since=N``)
``GET  /fleets/<id>/records/<run>``   one run record
``POST /lease``                       worker checkout; 200 grant or 204
``POST /results``                     worker return; ResultAck
``GET  /compare?a=<id>&b=<id>``       cross-fleet comparison report
====================================  ======================================

Errors are JSON ``{"error": ...}``: 400 for malformed payloads, 404
for unknown fleets/runs/leases, 409 for a result that fails content
verification, and 429 + ``Retry-After`` when backpressure (submission
limits, the lease rate cap, drain mode) refuses work — the shared
retry policy honors the hint.  The server is deliberately thin —
every decision lives in the broker, which is driven directly (no
sockets) by the unit tests; these handlers only translate HTTP.

Lifecycle chores run in a background thread: expired leases are swept
even when no worker is polling, the journal is compacted once its
replay lag passes ``compact_lag``, and — when configured — the shared
cache is GC'd (:func:`repro.fleet.gc.run_gc`) on startup and every
``gc_interval_s`` thereafter.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union
from urllib.parse import parse_qs, urlparse

from .. import __version__, scenarios
from ..fleet.cache import ResultCache
from ..fleet.compare import compare_paths
from ..fleet.gc import cache_usage, run_gc
from ..fleet.sweep import RunSpec, SweepSpec
from .broker import BrokerBusy, FleetBroker
from .contracts import ContractError, Health, ResultSubmission
from .journal import FleetJournal

__all__ = ["ReproService"]

#: NDJSON line written on an idle ``follow`` stream so a vanished
#: client turns into a send error instead of a thread leak.
HEARTBEAT = {"event": "heartbeat"}


class _BadRequest(Exception):
    """Maps to a 400 with its message."""


class ReproService:
    """One service instance: broker + cache + journal + HTTP front-end.

    ``port=0`` binds an ephemeral port (tests); ``url`` reports the
    bound address either way.  ``start()`` serves from a daemon
    thread, ``serve_forever()`` serves in the caller's thread (the
    CLI); ``stop()`` shuts both down, ``drain()`` is the graceful
    path (SIGTERM): stop granting leases, let checked-out work ack,
    sync the journal.

    The journal lives at ``root/journal`` unless ``journal_dir`` says
    otherwise; ``journal_fsync=True`` (the CLI's ``--state`` mode)
    makes each append durable against power loss.  Any journaled state
    from a previous life is recovered before the socket opens —
    ``recovery`` holds the counters.
    """

    def __init__(self, root: Union[str, Path], *,
                 host: str = "127.0.0.1", port: int = 0,
                 cache_dir: Optional[Union[str, Path]] = None,
                 lease_ttl_s: float = 60.0,
                 journal_dir: Optional[Union[str, Path]] = None,
                 journal_fsync: bool = False,
                 max_fleets: Optional[int] = None,
                 max_pending: Optional[int] = None,
                 lease_rate_per_s: Optional[float] = None,
                 stream_heartbeat_s: float = 10.0,
                 compact_lag: int = 256,
                 gc_max_bytes: Optional[int] = None,
                 gc_max_age_s: Optional[float] = None,
                 gc_interval_s: float = 300.0,
                 fault_hook: Optional[
                     Callable[[str], None]] = None) -> None:
        self.root = Path(root)
        self.cache_dir = (Path(cache_dir) if cache_dir is not None
                          else self.root / "cache")
        self.cache = ResultCache(self.cache_dir)
        self.journal = FleetJournal(
            journal_dir if journal_dir is not None
            else self.root / "journal",
            fsync=journal_fsync)
        self.broker = FleetBroker(self.root / "fleets", cache=self.cache,
                                  lease_ttl_s=lease_ttl_s,
                                  journal=self.journal,
                                  max_fleets=max_fleets,
                                  max_pending=max_pending,
                                  lease_rate_per_s=lease_rate_per_s,
                                  fault_hook=fault_hook)
        self.stream_heartbeat_s = stream_heartbeat_s
        self.compact_lag = compact_lag
        self.gc_max_bytes = gc_max_bytes
        self.gc_max_age_s = gc_max_age_s
        self.gc_interval_s = gc_interval_s
        self.started = time.monotonic()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._streams_lock = threading.Lock()
        self._streams = 0
        # Resume whatever the previous process had accepted, then
        # reclaim a crashed writer's staging files (and apply any
        # configured limits) before accepting traffic.
        self.recovery = self.broker.recover()
        self.last_gc = run_gc(self.cache_dir,
                              max_bytes=gc_max_bytes,
                              max_age_s=gc_max_age_s)
        self.httpd = _ServiceHTTPServer((host, port), _Handler)
        self.httpd.service = self

    # -- lifecycle --------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started

    def start(self) -> "ReproService":
        """Serve from daemon threads; returns self for chaining."""
        for target in (self.httpd.serve_forever, self._chores):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def serve_forever(self) -> None:
        """Serve in the calling thread (the CLI foreground mode)."""
        chores = threading.Thread(target=self._chores, daemon=True)
        chores.start()
        self._threads.append(chores)
        try:
            self.httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        self._stop.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def drain(self, *, wait_s: float = 30.0,
              poll_s: float = 0.05) -> bool:
        """Graceful degradation (the SIGTERM path): stop granting
        leases and refuse new fleets, keep accepting results for the
        leases already out, then compact and fsync the journal.
        Returns ``True`` when every lease resolved in time — the
        caller can then :meth:`stop` and exit 0.
        """
        self.broker.drain()
        deadline = time.monotonic() + wait_s
        while self.broker.in_flight() and time.monotonic() < deadline:
            time.sleep(poll_s)
        drained = self.broker.in_flight() == 0
        self.broker.compact_journal(min_lag=1)
        self.broker.sync_journal()
        return drained

    def _chores(self) -> None:
        """Periodic upkeep: lease expiry sweeps, journal compaction,
        and (if configured) cache GC, until stopped."""
        interval = max(1.0, min(self.broker.lease_ttl_s / 2.0,
                                self.gc_interval_s or 60.0))
        elapsed = 0.0
        while not self._stop.wait(interval):
            self.broker.expire_leases()
            self.broker.compact_journal(min_lag=self.compact_lag)
            elapsed += interval
            if (self.gc_interval_s and elapsed >= self.gc_interval_s
                    and (self.gc_max_bytes is not None
                         or self.gc_max_age_s is not None)):
                elapsed = 0.0
                self.last_gc = run_gc(self.cache_dir,
                                      max_bytes=self.gc_max_bytes,
                                      max_age_s=self.gc_max_age_s)

    # -- event-stream accounting ------------------------------------------

    def _stream_opened(self) -> None:
        with self._streams_lock:
            self._streams += 1

    def _stream_closed(self) -> None:
        with self._streams_lock:
            self._streams -= 1

    def active_streams(self) -> int:
        """Live ``/events`` subscriber threads — the reap test's probe."""
        with self._streams_lock:
            return self._streams

    # -- payload builders -------------------------------------------------

    def health(self) -> Health:
        """The readiness probe: everything a load balancer (or the
        backpressure tests) needs to judge this server."""
        cache = cache_usage(self.cache_dir).to_dict()
        cache.update(self.cache.stats.to_dict())
        queue = dict(self.broker.queue_stats())
        queue["requeues"] = self.broker.requeues
        journal = self.journal.stats()
        journal.update({
            "recovered_fleets": self.broker.recovered_fleets,
            "recovered_records": self.broker.recovered_records,
            "recovery_requeued": self.broker.recovery_requeued,
        })
        draining = self.broker.draining()
        return Health(version=__version__, uptime_s=self.uptime_s,
                      fleets=queue["fleets"],
                      running=queue["running"],
                      cache=cache, queue=queue, journal=journal,
                      limits={
                          "max_fleets": self.broker.max_fleets,
                          "max_pending": self.broker.max_pending,
                          "lease_rate_per_s":
                              self.broker.lease_rate_per_s,
                          "lease_ttl_s": self.broker.lease_ttl_s,
                      },
                      draining=draining, ready=not draining)

    def scenario_index(self) -> list[dict[str, Any]]:
        rows = []
        for name in scenarios.names():
            spec = scenarios.get(name)
            rows.append({"name": name,
                         "description": spec.description,
                         "sites": len(spec.radio.sites),
                         "systems": len(spec.systems)})
        return rows

    def submit(self, body: Any) -> tuple[int, dict[str, Any]]:
        """Parse and queue one POST /fleets body."""
        if not isinstance(body, dict):
            raise _BadRequest("fleet submission must be a JSON object")
        key = str(body.get("submission_key", "") or "")
        try:
            if "sweep" in body:
                sweep = SweepSpec.from_dict(body["sweep"])
                ack = self.broker.submit_sweep(sweep,
                                               submission_key=key)
            elif "runs" in body:
                runs = [RunSpec.from_dict(run) for run in body["runs"]]
                ack = self.broker.submit_runs(runs,
                                              submission_key=key)
            else:
                raise _BadRequest(
                    "fleet submission needs a 'sweep' or 'runs' key")
        except (KeyError, TypeError, ValueError) as exc:
            message = exc.args[0] if isinstance(exc, KeyError) else exc
            raise _BadRequest(f"invalid fleet submission: {message}") \
                from None
        return 201, ack.to_dict()

    def compare(self, a: str, b: str) -> dict[str, Any]:
        dirs = []
        for fleet_id in (a, b):
            status = self.broker.status(fleet_id)   # LookupError -> 404
            if not status.complete:
                raise _BadRequest(
                    f"fleet {fleet_id!r} is still running")
            dirs.append(self.broker.fleet_dir(fleet_id))
        try:
            return compare_paths(dirs).to_dict()
        except (FileNotFoundError, KeyError, ValueError) as exc:
            raise _BadRequest(f"cannot compare: {exc}") from None


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: ReproService


class _Handler(BaseHTTPRequestHandler):
    server: _ServiceHTTPServer
    server_version = f"repro-serve/{__version__}"

    def log_message(self, format: str, *args: Any) -> None:
        # Quiet by default: the CLI prints the bound URL; per-request
        # noise would swamp worker polling.
        pass

    @property
    def service(self) -> ReproService:
        return self.server.service

    # -- plumbing ---------------------------------------------------------

    def _json(self, status: int, payload: Any, *,
              headers: Optional[Mapping[str, str]] = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def _read_json(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            return json.loads(raw or b"null")
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from None

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)
        try:
            handled = self._route(method, parts, query)
        except _BadRequest as exc:
            self._error(400, str(exc))
        except ContractError as exc:
            self._error(400, str(exc))
        except LookupError as exc:
            self._error(404, str(exc))
        except BrokerBusy as exc:
            # Backpressure: tell the client when to come back — the
            # retry policy reads both the header and the JSON field.
            retry_after = max(0.0, exc.retry_after_s)
            self._json(429, {"error": str(exc),
                             "retry_after_s": retry_after},
                       headers={"Retry-After": f"{retry_after:.3f}"})
        except ValueError as exc:
            # The broker's content-verification rejection.
            self._error(409, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass                  # client went away mid-stream
        else:
            if not handled:
                self._error(404, f"no route {method} {url.path}")

    def do_GET(self) -> None:      # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:     # noqa: N802 (http.server API)
        self._dispatch("POST")

    # -- routing ----------------------------------------------------------

    def _route(self, method: str, parts: list[str],
               query: dict[str, list[str]]) -> bool:
        service = self.service
        if method == "GET":
            if parts == ["healthz"]:
                self._json(200, service.health().to_dict())
            elif parts == ["scenarios"]:
                self._json(200, {"scenarios": service.scenario_index()})
            elif len(parts) == 2 and parts[0] == "scenarios":
                try:
                    spec = scenarios.get(parts[1])
                except KeyError:
                    raise LookupError(
                        f"unknown scenario {parts[1]!r}") from None
                self._json(200, spec.to_dict())
            elif parts == ["fleets"]:
                self._json(200, {"fleets": [
                    status.to_dict()
                    for status in service.broker.statuses()]})
            elif len(parts) == 2 and parts[0] == "fleets":
                self._json(200,
                           service.broker.status(parts[1]).to_dict())
            elif (len(parts) == 3 and parts[0] == "fleets"
                    and parts[2] == "events"):
                self._stream_events(
                    parts[1], follow=query.get("follow", ["0"])[0]
                    not in ("0", "", "false"))
            elif (len(parts) == 3 and parts[0] == "fleets"
                    and parts[2] == "records"):
                try:
                    since = int(query.get("since", ["0"])[0])
                except ValueError:
                    raise _BadRequest("since must be an integer") \
                        from None
                slots, complete = service.broker.slots(parts[1],
                                                       since=since)
                self._json(200, {"fleet_id": parts[1], "since": since,
                                 "complete": complete, "slots": slots})
            elif (len(parts) == 4 and parts[0] == "fleets"
                    and parts[2] == "records"):
                record = service.broker.record(parts[1], parts[3])
                self._json(200, record.to_dict())
            elif parts == ["compare"]:
                a = query.get("a", [""])[0]
                b = query.get("b", [""])[0]
                if not a or not b:
                    raise _BadRequest("compare needs ?a=<id>&b=<id>")
                self._json(200, service.compare(a, b))
            else:
                return False
            return True
        if method == "POST":
            if parts == ["fleets"]:
                status, payload = service.submit(self._read_json())
                self._json(status, payload)
            elif parts == ["lease"]:
                body = self._read_json()
                if not isinstance(body, dict):
                    raise _BadRequest("lease body must be an object")
                worker = str(body.get("worker_id", "")) or "anonymous"
                grant = service.broker.lease(worker)
                if grant is None:
                    self._json(200, {"run": None})
                else:
                    self._json(200, grant.to_dict())
            elif parts == ["results"]:
                body = self._read_json()
                if not isinstance(body, dict):
                    raise _BadRequest("result body must be an object")
                submission = ResultSubmission.from_dict(body)
                ack = self.service.broker.submit_result(submission)
                self._json(200, ack.to_dict())
            else:
                return False
            return True
        return False

    def _stream_events(self, fleet_id: str, *, follow: bool) -> None:
        # Touch the fleet first so an unknown id is a clean 404, not a
        # half-started stream.
        service = self.service
        service.broker.status(fleet_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        service._stream_opened()
        try:
            index = 0
            wait_s = service.stream_heartbeat_s if follow else 0.0
            while True:
                events, complete = service.broker.events_since(
                    fleet_id, index, wait_s=wait_s)
                for event in events:
                    self.wfile.write(
                        (json.dumps(event, sort_keys=True)
                         + "\n").encode())
                if follow and not events and not complete:
                    # Idle heartbeat: the only thing that turns a
                    # vanished client into a send error — without it
                    # this loop held its thread for the fleet's whole
                    # lifetime after the subscriber died.
                    self.wfile.write(
                        (json.dumps(HEARTBEAT, sort_keys=True)
                         + "\n").encode())
                self.wfile.flush()
                index += len(events)
                if not follow or (complete and not events):
                    break
        finally:
            service._stream_closed()
