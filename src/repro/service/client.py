"""HTTP client for the fleet service — ``urllib`` plus the contracts.

One small class wraps every route the server exposes, translating
HTTP errors into :class:`ServiceError` (which keeps the status code)
and payloads into the typed contracts.  It deliberately imports
nothing from the fleet layer: a worker host needs this module,
:mod:`repro.service.contracts`, and the evaluation stack — not the
whole orchestration surface.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from .contracts import (
    FleetStatus,
    Health,
    LeaseGrant,
    ResultAck,
    ResultSubmission,
    SubmitAck,
)

__all__ = ["ServiceClient", "ServiceError", "ServiceUnavailable"]


class ServiceError(Exception):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceUnavailable(Exception):
    """The server could not be reached at all."""


class ServiceClient:
    """Typed access to one ``repro serve`` instance."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict[str, Any]] = None) -> Any:
        body = (json.dumps(payload).encode()
                if payload is not None else None)
        request = Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {})
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read() or b"null")
        except HTTPError as exc:
            detail = ""
            try:
                detail = str(json.loads(exc.read()).get("error", ""))
            except (OSError, TypeError, ValueError, AttributeError):
                pass
            raise ServiceError(exc.code, detail or exc.reason) from None
        except URLError as exc:
            raise ServiceUnavailable(
                f"cannot reach {self.base_url}: {exc.reason}") from None

    def _get(self, path: str) -> Any:
        return self._request("GET", path)

    def _post(self, path: str, payload: dict[str, Any]) -> Any:
        return self._request("POST", path, payload)

    # -- control plane ----------------------------------------------------

    def health(self) -> Health:
        return Health.from_dict(self._get("/healthz"))

    def scenario_index(self) -> list[dict[str, Any]]:
        return list(self._get("/scenarios")["scenarios"])

    def scenario(self, name: str) -> dict[str, Any]:
        return dict(self._get(f"/scenarios/{name}"))

    def submit_sweep(self, sweep: dict[str, Any]) -> SubmitAck:
        """Submit a :class:`~repro.fleet.sweep.SweepSpec` dict."""
        return SubmitAck.from_dict(self._post("/fleets",
                                              {"sweep": sweep}))

    def submit_runs(self, runs: list[dict[str, Any]]) -> SubmitAck:
        """Submit already-expanded :class:`RunSpec` dicts."""
        return SubmitAck.from_dict(self._post("/fleets",
                                              {"runs": runs}))

    def fleets(self) -> list[FleetStatus]:
        return [FleetStatus.from_dict(entry)
                for entry in self._get("/fleets")["fleets"]]

    def status(self, fleet_id: str) -> FleetStatus:
        return FleetStatus.from_dict(self._get(f"/fleets/{fleet_id}"))

    def slots(self, fleet_id: str, *,
              since: int = 0) -> tuple[list[dict[str, Any]], bool]:
        """Slot snapshots from ``since`` on, plus the complete flag."""
        payload = self._get(f"/fleets/{fleet_id}/records?since={since}")
        return list(payload["slots"]), bool(payload["complete"])

    def record(self, fleet_id: str, run_id: str) -> dict[str, Any]:
        return dict(self._get(f"/fleets/{fleet_id}/records/{run_id}"))

    def events(self, fleet_id: str, *,
               follow: bool = False) -> Iterator[dict[str, Any]]:
        """The fleet's NDJSON event stream, decoded line by line."""
        suffix = "?follow=1" if follow else ""
        request = Request(
            self.base_url + f"/fleets/{fleet_id}/events{suffix}")
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                if response.status != 200:
                    raise ServiceError(response.status, "event stream")
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except HTTPError as exc:
            raise ServiceError(exc.code, exc.reason) from None
        except URLError as exc:
            raise ServiceUnavailable(
                f"cannot reach {self.base_url}: {exc.reason}") from None

    def compare(self, a: str, b: str) -> dict[str, Any]:
        return dict(self._get(f"/compare?a={a}&b={b}"))

    # -- worker plane -----------------------------------------------------

    def lease(self, worker_id: str) -> Optional[LeaseGrant]:
        """Check out the next pending run; ``None`` = queue empty."""
        payload = self._post("/lease", {"worker_id": worker_id})
        if payload.get("run") is None:
            return None
        return LeaseGrant.from_dict(payload)

    def post_result(self, lease_id: str, record: dict[str, Any], *,
                    wall_s: float = 0.0) -> ResultAck:
        submission = ResultSubmission(lease_id=lease_id, record=record,
                                      wall_s=wall_s)
        return ResultAck.from_dict(self._post("/results",
                                              submission.to_dict()))

    def post_failure(self, lease_id: str, error: str) -> ResultAck:
        """Report a failed run so it re-queues without waiting out the
        lease."""
        submission = ResultSubmission(lease_id=lease_id, error=error)
        return ResultAck.from_dict(self._post("/results",
                                              submission.to_dict()))
