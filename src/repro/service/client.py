"""HTTP client for the fleet service — ``urllib`` plus the contracts.

One small class wraps every route the server exposes, translating
HTTP errors into :class:`ServiceError` (which keeps the status code
and the server's ``Retry-After`` hint) and payloads into the typed
contracts.  It deliberately imports nothing from the fleet layer: a
worker host needs this module, :mod:`repro.service.contracts`,
:mod:`repro.service.retry`, and the evaluation stack — not the whole
orchestration surface.

Fault tolerance: every request can run under a shared
:class:`~repro.service.retry.RetryPolicy` (pass ``retry=``).  The
whole API is safe to retry blind — every route is idempotent by
construction:

* fleet submission carries a client-generated ``submission_key``; a
  retried submit of the same key returns the *original* fleet
  (``SubmitAck.duplicate``) instead of a second copy,
* result submission is deduplicated by ``run_key`` content identity,
* a lease grant lost on the wire simply expires back into the queue.

Connection failures (:class:`ServiceUnavailable`) and 429/5xx answers
are retried; 4xx contract errors are not.  The optional ``fault_hook``
is the test harness's seam (:mod:`repro.testing.faults`): called once
per attempt, it may sleep (delay), or return ``"drop-request"`` /
``"drop-response"`` / ``"duplicate"`` to simulate the matching network
fault deterministically.
"""

from __future__ import annotations

import json
import uuid
from typing import Any, Callable, Iterator, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from .contracts import (
    FleetStatus,
    Health,
    LeaseGrant,
    ResultAck,
    ResultSubmission,
    SubmitAck,
)
from .retry import RetryExhausted, RetryPolicy, call_with_retry

__all__ = ["ServiceClient", "ServiceError", "ServiceUnavailable",
           "RETRYABLE_STATUSES"]

#: Statuses worth retrying: backpressure and transient server trouble.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


class ServiceError(Exception):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str, *,
                 retry_after_s: float = 0.0) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


class ServiceUnavailable(Exception):
    """The server could not be reached at all."""


class ServiceClient:
    """Typed access to one ``repro serve`` instance.

    ``retry=None`` keeps the historical try-once behavior; pass a
    :class:`RetryPolicy` to make every call survive transient faults.
    ``sleep`` is injectable so retry tests never actually wait.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 30.0,
                 retry: Optional[RetryPolicy] = None,
                 sleep: Optional[Callable[[float], None]] = None,
                 fault_hook: Optional[
                     Callable[[str], Optional[str]]] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy.none()
        self._sleep = sleep
        self._fault = fault_hook

    # -- plumbing ---------------------------------------------------------

    def _http(self, method: str, path: str,
              body: Optional[bytes]) -> Any:
        request = Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {})
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read() or b"null")
        except HTTPError as exc:
            detail = ""
            retry_after = 0.0
            try:
                payload = json.loads(exc.read())
                detail = str(payload.get("error", ""))
                retry_after = float(payload.get("retry_after_s", 0.0))
            except (OSError, TypeError, ValueError, AttributeError):
                pass
            header = (exc.headers.get("Retry-After")
                      if exc.headers is not None else None)
            if header is not None:
                try:
                    retry_after = max(retry_after, float(header))
                except ValueError:
                    pass
            raise ServiceError(exc.code, detail or exc.reason,
                               retry_after_s=retry_after) from None
        except URLError as exc:
            raise ServiceUnavailable(
                f"cannot reach {self.base_url}: {exc.reason}") from None

    def _attempt(self, method: str, path: str,
                 body: Optional[bytes]) -> Any:
        """One attempt, with the fault-injection seam around it."""
        op = f"{method} {path}"
        verb = self._fault(op) if self._fault is not None else None
        if verb == "drop-request":
            raise ServiceUnavailable(
                f"cannot reach {self.base_url}: "
                f"injected drop of {op}")
        result = self._http(method, path, body)
        if verb == "duplicate":
            # The network delivered the request twice; the server's
            # idempotency makes the echo harmless.
            try:
                self._http(method, path, body)
            except (ServiceError, ServiceUnavailable):
                pass
        if verb == "drop-response":
            # The server processed the request but the answer was
            # lost — the ambiguous failure idempotency exists for.
            raise ServiceUnavailable(
                f"cannot reach {self.base_url}: "
                f"injected loss of response to {op}")
        return result

    @staticmethod
    def _classify(exc: BaseException) -> Optional[float]:
        if isinstance(exc, ServiceUnavailable):
            return 0.0
        if (isinstance(exc, ServiceError)
                and exc.status in RETRYABLE_STATUSES):
            return exc.retry_after_s
        return None

    def _request(self, method: str, path: str,
                 payload: Optional[dict[str, Any]] = None) -> Any:
        body = (json.dumps(payload).encode()
                if payload is not None else None)
        kwargs: dict[str, Any] = {}
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        try:
            return call_with_retry(
                lambda: self._attempt(method, path, body),
                policy=self.retry, classify=self._classify,
                key=f"{method} {path}", **kwargs)
        except RetryExhausted as exc:
            # Callers keep the historical contract: they see the
            # underlying ServiceError/ServiceUnavailable, not the
            # retry wrapper.
            raise exc.last from None

    def _get(self, path: str) -> Any:
        return self._request("GET", path)

    def _post(self, path: str, payload: dict[str, Any]) -> Any:
        return self._request("POST", path, payload)

    # -- control plane ----------------------------------------------------

    def health(self) -> Health:
        return Health.from_dict(self._get("/healthz"))

    def scenario_index(self) -> list[dict[str, Any]]:
        return list(self._get("/scenarios")["scenarios"])

    def scenario(self, name: str) -> dict[str, Any]:
        return dict(self._get(f"/scenarios/{name}"))

    def submit_sweep(self, sweep: dict[str, Any], *,
                     submission_key: Optional[str] = None) -> SubmitAck:
        """Submit a :class:`~repro.fleet.sweep.SweepSpec` dict.

        A fresh idempotency key is generated per call (so resubmitting
        the same sweep intentionally still creates a new fleet), and
        the *same* key rides every retry of this submission — an
        ambiguous failure can never double-submit.
        """
        return SubmitAck.from_dict(self._post("/fleets", {
            "sweep": sweep,
            "submission_key": submission_key or uuid.uuid4().hex}))

    def submit_runs(self, runs: list[dict[str, Any]], *,
                    submission_key: Optional[str] = None) -> SubmitAck:
        """Submit already-expanded :class:`RunSpec` dicts."""
        return SubmitAck.from_dict(self._post("/fleets", {
            "runs": runs,
            "submission_key": submission_key or uuid.uuid4().hex}))

    def fleets(self) -> list[FleetStatus]:
        return [FleetStatus.from_dict(entry)
                for entry in self._get("/fleets")["fleets"]]

    def status(self, fleet_id: str) -> FleetStatus:
        return FleetStatus.from_dict(self._get(f"/fleets/{fleet_id}"))

    def slots(self, fleet_id: str, *,
              since: int = 0) -> tuple[list[dict[str, Any]], bool]:
        """Slot snapshots from ``since`` on, plus the complete flag."""
        payload = self._get(f"/fleets/{fleet_id}/records?since={since}")
        return list(payload["slots"]), bool(payload["complete"])

    def record(self, fleet_id: str, run_id: str) -> dict[str, Any]:
        return dict(self._get(f"/fleets/{fleet_id}/records/{run_id}"))

    def events(self, fleet_id: str, *, follow: bool = False,
               heartbeats: bool = False) -> Iterator[dict[str, Any]]:
        """The fleet's NDJSON event stream, decoded line by line.

        The server's keep-alive ``heartbeat`` lines are filtered out
        unless ``heartbeats=True`` — they carry no fleet progress,
        they only prove the stream is alive.
        """
        suffix = "?follow=1" if follow else ""
        request = Request(
            self.base_url + f"/fleets/{fleet_id}/events{suffix}")
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                if response.status != 200:
                    raise ServiceError(response.status, "event stream")
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    if (not heartbeats and isinstance(event, dict)
                            and event.get("event") == "heartbeat"):
                        continue
                    yield event
        except HTTPError as exc:
            raise ServiceError(exc.code, exc.reason) from None
        except URLError as exc:
            raise ServiceUnavailable(
                f"cannot reach {self.base_url}: {exc.reason}") from None

    def compare(self, a: str, b: str) -> dict[str, Any]:
        return dict(self._get(f"/compare?a={a}&b={b}"))

    # -- worker plane -----------------------------------------------------

    def lease(self, worker_id: str) -> Optional[LeaseGrant]:
        """Check out the next pending run; ``None`` = queue empty.

        Safe to retry: a grant lost on the wire is never posted
        against, so its lease simply expires back into the queue.
        """
        payload = self._post("/lease", {"worker_id": worker_id})
        if payload.get("run") is None:
            return None
        return LeaseGrant.from_dict(payload)

    def post_result(self, lease_id: str, record: dict[str, Any], *,
                    wall_s: float = 0.0) -> ResultAck:
        submission = ResultSubmission(lease_id=lease_id, record=record,
                                      wall_s=wall_s)
        return ResultAck.from_dict(self._post("/results",
                                              submission.to_dict()))

    def post_failure(self, lease_id: str, error: str) -> ResultAck:
        """Report a failed run so it re-queues without waiting out the
        lease."""
        submission = ResultSubmission(lease_id=lease_id, error=error)
        return ResultAck.from_dict(self._post("/results",
                                              submission.to_dict()))
