"""Fleet service: the HTTP control plane and its remote workers.

The distributed face of :mod:`repro.fleet` — everything the fleet
layer runs in one process tree, this package runs across machines:

* :class:`ReproService` / ``python -m repro serve`` — a stdlib-only
  HTTP server exposing the scenario registry, fleet submission,
  progress streaming (NDJSON), record retrieval, compare reports, a
  ``/healthz`` probe, and the worker lease/result plane, all backed
  by one :class:`~repro.service.broker.FleetBroker` and one shared
  :class:`~repro.fleet.cache.ResultCache` (GC'd on a period via
  :mod:`repro.fleet.gc`).
* :func:`run_worker` / ``python -m repro worker`` — a pull-loop
  worker leasing expanded :class:`~repro.fleet.sweep.RunSpec`\\ s and
  evaluating them through the compiled/batch path.  Dead workers are
  tolerated by lease expiry + content-identity dedup: their runs
  simply return to the queue, and no run is ever counted twice.
* :class:`ServiceClient` — typed ``urllib`` access to every route,
  also the transport behind the ``remote`` executor backend
  (:class:`repro.fleet.executors.RemoteExecutor`).
* :mod:`~repro.service.contracts` — the versioned request/response
  dataclasses every payload round-trips through.

Quickstart::

    python -m repro serve --root service-root --port 8750 &
    python -m repro worker --server http://127.0.0.1:8750 &
    python -m repro worker --server http://127.0.0.1:8750 &
    python -m repro sweep --scenario klagenfurt \\
        --set campaign.handover_interruption_s=0.03,0.06 \\
        --backend remote --server http://127.0.0.1:8750 --out fleet-out

The broker is deterministic and in-process-testable: records coming
back through serve + workers are bit-identical to a serial
:func:`~repro.fleet.runner.run_sweep` of the same sweep.

Fault tolerance (see the README's "Fault tolerance & durability"):
broker state is journaled (:class:`~repro.service.journal.FleetJournal`)
so a restarted server recovers every accepted fleet without
re-evaluating acked runs; every network caller shares one
:class:`~repro.service.retry.RetryPolicy` (exponential backoff,
deterministic jitter, ``Retry-After`` aware); and overload answers
429 (:class:`~repro.service.broker.BrokerBusy`) instead of queueing
unboundedly.
"""

from __future__ import annotations

from .broker import BrokerBusy, FleetBroker
from .client import ServiceClient, ServiceError, ServiceUnavailable
from .contracts import (
    API_VERSION,
    ContractError,
    FleetStatus,
    Health,
    LeaseGrant,
    ResultAck,
    ResultSubmission,
    SubmitAck,
)
from .journal import FleetJournal
from .retry import RetryExhausted, RetryPolicy, call_with_retry
from .server import ReproService
from .worker import run_worker

__all__ = [
    "API_VERSION",
    "BrokerBusy",
    "ContractError",
    "FleetBroker",
    "FleetJournal",
    "FleetStatus",
    "Health",
    "LeaseGrant",
    "ReproService",
    "ResultAck",
    "ResultSubmission",
    "RetryExhausted",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "SubmitAck",
    "call_with_retry",
    "run_worker",
]
