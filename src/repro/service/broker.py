"""The fleet broker: a deterministic, lease-based run queue.

One broker instance backs one ``repro serve`` process.  Clients submit
fleets (a :class:`~repro.fleet.sweep.SweepSpec`, or an already-expanded
run list from :class:`~repro.fleet.executors.RemoteExecutor`); workers
lease runs one at a time and post :class:`~repro.fleet.sweep.RunRecord`
results back.  Queue state lives in memory guarded by one lock — the
durable artifacts are the fleet directories under ``root`` (written
through :class:`~repro.fleet.store.FleetStore`, so a completed service
fleet is byte-compatible with a locally-run one), the shared
:class:`~repro.fleet.cache.ResultCache`, and, when configured, the
append-only :class:`~repro.service.journal.FleetJournal` that lets a
restarted server :meth:`recover` every fleet it had accepted.

Fault model (the reason leases and the journal exist):

* A worker that dies mid-run simply never posts its result.  Its
  lease expires after ``lease_ttl_s`` and the run returns to the
  queue — the next ``lease()`` call from any worker picks it up.
* Results are deduplicated by content identity: a run is *done* the
  first time a verifying record lands, and every later submission for
  it (a raced worker, a zombie finishing after its lease expired, a
  client retrying an ambiguous failure) is acknowledged as a duplicate
  and discarded.  No run is ever counted twice, and a record that does
  not verify against the leased run's ``run_key`` is rejected outright.
* A *server* that dies is recovered from the journal: submissions are
  replayed, completed runs are re-verified against the records already
  in the fleet store (never re-evaluated), and in-flight leases are
  simply not restored — the runs return to the queue.
* Backpressure is explicit: submission limits and the per-worker lease
  rate cap refuse with :class:`BrokerBusy` (HTTP 429 + ``Retry-After``)
  instead of queueing unboundedly, and :meth:`drain` stops grants so
  the server can exit with nothing checked out.
* Leasing order is deterministic — fleets in submission order, runs
  in expansion order — so a drained queue always yields records
  bit-identical to a serial :func:`~repro.fleet.runner.run_sweep` of
  the same sweep, crashes and retries included.

Time is injected (``clock``) so lease expiry is unit-testable without
sleeping.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from ..fleet.cache import ResultCache, rebind_record
from ..fleet.progress import ProgressEvent
from ..fleet.store import FleetResult, FleetStore
from ..sim.sync import WatchedCondition, guarded_by
from ..fleet.sweep import (
    RunRecord,
    RunSpec,
    SweepSpec,
    record_matches_spec,
)
from .contracts import (
    ContractError,
    FleetStatus,
    LeaseGrant,
    ResultAck,
    ResultSubmission,
    SubmitAck,
)
from .journal import FleetJournal

__all__ = ["BrokerBusy", "FleetBroker", "RUNS_JOB_MANIFEST"]

PENDING = "pending"
LEASED = "leased"
DONE = "done"

#: Manifest name for fleets submitted as raw run lists (no SweepSpec
#: to re-expand, so they get this lightweight job file instead of a
#: ``FleetStore`` manifest).
RUNS_JOB_MANIFEST = "job.json"


class BrokerBusy(RuntimeError):
    """Backpressure: the broker refused the request *for now*.

    Carries the ``Retry-After`` hint the HTTP layer serializes with a
    429 — the retry policy on the other side honors it, so a loaded or
    draining server slows its clients down instead of failing them.
    """

    def __init__(self, message: str, *,
                 retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class _Slot:
    """One run's live state inside the broker."""

    __slots__ = ("run", "state", "attempt", "worker_id", "deadline",
                 "record", "wall_s", "cached")

    def __init__(self, run: RunSpec) -> None:
        self.run = run
        self.state = PENDING
        self.attempt = 0          # lease generation counter
        self.worker_id = ""
        self.deadline = 0.0
        self.record: Optional[RunRecord] = None
        self.wall_s = 0.0
        self.cached = False

    def to_dict(self, *, with_record: bool = True) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "run_id": self.run.run_id, "state": self.state,
            "cached": self.cached, "wall_s": self.wall_s,
        }
        if with_record:
            payload["record"] = (self.record.to_dict()
                                 if self.record is not None else None)
        return payload


class _Fleet:
    """One submitted fleet: its slots, store, and event log."""

    def __init__(self, fleet_id: str, slots: list[_Slot],
                 store: FleetStore, sweep: Optional[SweepSpec],
                 created: float) -> None:
        self.fleet_id = fleet_id
        self.slots = slots
        self.store = store
        self.sweep = sweep
        self.created = created
        self.finished = 0.0
        self.complete = False
        self.workers: set[str] = set()
        self.events: list[dict[str, Any]] = []
        self.submission_key = ""
        self.submitted_cached = 0

    def done_count(self) -> int:
        return sum(1 for slot in self.slots if slot.state == DONE)

    def submit_entry(self) -> dict[str, Any]:
        """The journal entry that re-creates this fleet on replay."""
        entry: dict[str, Any] = {"type": "submit",
                                 "fleet_id": self.fleet_id,
                                 "submission_key": self.submission_key}
        if self.sweep is not None:
            entry["sweep"] = self.sweep.to_dict()
        else:
            entry["runs"] = [slot.run.to_dict() for slot in self.slots]
        return entry


class FleetBroker:
    """In-memory queue + on-disk fleet stores behind the service.

    Thread-safety contract (checked by ``repro lint`` REP101 and the
    runtime watchdog): all queue state is ``guarded_by`` the single
    condition ``_cond``; helpers called with it held carry a
    ``# lint: holds(_cond)`` marker.  The bare counters (``requeues``
    and the ``recovered_*`` trio) are ``writes_only`` — tests, the
    readiness probe, and metrics read them lock-free by design.
    """

    _fleets: dict[str, _Fleet] = guarded_by("_cond")
    _counter: int = guarded_by("_cond")
    _submissions: dict[str, str] = guarded_by("_cond")
    _last_grant: dict[str, float] = guarded_by("_cond")
    _draining: bool = guarded_by("_cond", writes_only=True)
    requeues: int = guarded_by("_cond", writes_only=True)
    recovered_fleets: int = guarded_by("_cond", writes_only=True)
    recovered_records: int = guarded_by("_cond", writes_only=True)
    recovery_requeued: int = guarded_by("_cond", writes_only=True)

    def __init__(self, root: Union[str, Path], *,
                 cache: Optional[ResultCache] = None,
                 lease_ttl_s: float = 60.0,
                 clock: Callable[[], float] = time.monotonic,
                 journal: Optional[FleetJournal] = None,
                 max_fleets: Optional[int] = None,
                 max_pending: Optional[int] = None,
                 lease_rate_per_s: Optional[float] = None,
                 busy_retry_s: float = 1.0,
                 fault_hook: Optional[
                     Callable[[str], None]] = None) -> None:
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if max_fleets is not None and max_fleets < 1:
            raise ValueError("max_fleets must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if lease_rate_per_s is not None and lease_rate_per_s <= 0:
            raise ValueError("lease_rate_per_s must be positive")
        self.root = Path(root)
        self.cache = cache
        self.lease_ttl_s = lease_ttl_s
        self.clock = clock
        self.journal = journal
        self.max_fleets = max_fleets
        self.max_pending = max_pending
        self.lease_rate_per_s = lease_rate_per_s
        self.busy_retry_s = busy_retry_s
        self._fault = fault_hook or (lambda op: None)
        self._cond = WatchedCondition("broker")
        self.requeues = 0          #: lifetime count of expired leases
        self.recovered_fleets = 0
        self.recovered_records = 0
        self.recovery_requeued = 0
        self._fleets = {}
        self._counter = 0
        self._submissions = {}
        self._last_grant = {}
        self._draining = False

    def _journal(self, entry: dict[str, Any]) -> None:  # lint: holds(_cond)
        """Append one entry when durability is on.  Caller holds the
        lock — journal writes must be ordered with the state changes
        they record."""
        if self.journal is not None:
            self.journal.append(entry)

    # -- submission -------------------------------------------------------

    def submit_sweep(self, sweep: SweepSpec, *,
                     submission_key: str = "") -> SubmitAck:
        """Queue every run of ``sweep``; its directory becomes a full
        fleet store (manifest + records + CSV once complete)."""
        return self._submit(list(sweep.expand()), sweep,
                            submission_key)

    def submit_runs(self, runs: Sequence[RunSpec], *,
                    submission_key: str = "") -> SubmitAck:
        """Queue already-expanded runs (the :class:`RemoteExecutor`
        path).  Records persist per-run; without a sweep to re-expand
        there is no manifest, just a lightweight job file."""
        if not runs:
            raise ValueError("fleet needs at least one run")
        ids = [run.run_id for run in runs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate run ids in submitted fleet")
        return self._submit(list(runs), None, submission_key)

    def _check_capacity(self, incoming: int) -> None:  # lint: holds(_cond)
        """Refuse the submission when it would exceed a limit.  Caller
        holds the lock."""
        if self._draining:
            raise BrokerBusy("server is draining; not accepting fleets",
                             retry_after_s=self.busy_retry_s)
        if self.max_fleets is not None:
            running = sum(1 for f in self._fleets.values()
                          if not f.complete)
            if running >= self.max_fleets:
                raise BrokerBusy(
                    f"at max in-flight fleets ({self.max_fleets})",
                    retry_after_s=self.busy_retry_s)
        if self.max_pending is not None:
            backlog = sum(1 for f in self._fleets.values()
                          for s in f.slots if s.state != DONE)
            if backlog + incoming > self.max_pending:
                raise BrokerBusy(
                    f"submission queue full ({backlog} queued, "
                    f"limit {self.max_pending})",
                    retry_after_s=self.busy_retry_s)

    def _submit(self, runs: list[RunSpec], sweep: Optional[SweepSpec],
                submission_key: str) -> SubmitAck:
        with self._cond:
            if submission_key and submission_key in self._submissions:
                # Idempotent replay: a client retrying an ambiguous
                # submission failure gets the original fleet back, not
                # a second copy of it.
                prior = self._fleets[self._submissions[submission_key]]
                return SubmitAck(fleet_id=prior.fleet_id,
                                 total=len(prior.slots),
                                 cached=prior.submitted_cached,
                                 duplicate=True)
            self._check_capacity(len(runs))
            self._counter += 1
            fleet_id = f"fleet-{self._counter:04d}"
            store = FleetStore(self.root / fleet_id)
            fleet = _Fleet(fleet_id, [_Slot(run) for run in runs],
                           store, sweep, self.clock())
            fleet.submission_key = submission_key
            # Journal before the fleet directory exists: recovery then
            # always knows about any fleet id with a directory, so a
            # restart can never re-issue an id that has stale state.
            self._journal(fleet.submit_entry())
            if sweep is not None:
                store.begin(sweep, jobs=1, backend="service")
            self._fleets[fleet_id] = fleet
            if submission_key:
                self._submissions[submission_key] = fleet_id
            cached = 0
            if self.cache is not None:
                # Warm-cache prefill: a run the shared cache has
                # already seen never reaches the queue.
                for slot in fleet.slots:
                    key = slot.run.spec_key()
                    record = self.cache.get(key)
                    if record is None:
                        continue
                    slot.record = rebind_record(record, slot.run, key)
                    slot.state = DONE
                    slot.cached = True
                    cached += 1
                    store.write_record(slot.record)
            fleet.submitted_cached = cached
            fleet.events.append({"event": "submitted",
                                 "fleet_id": fleet_id,
                                 "total": len(fleet.slots),
                                 "cached": cached})
            done = 0
            for slot in fleet.slots:
                if slot.state == DONE and slot.record is not None:
                    done += 1
                    self._emit_run(fleet, done, slot)
            if done == len(fleet.slots):
                self._finalize(fleet)
            self._cond.notify_all()
            return SubmitAck(fleet_id=fleet_id, total=len(fleet.slots),
                             cached=cached)

    # -- leasing ----------------------------------------------------------

    def lease(self, worker_id: str) -> Optional[LeaseGrant]:
        """Check the next pending run out to ``worker_id``, or
        ``None`` when the queue is empty (or the broker is draining).
        Expired leases are swept first, so a dead worker's runs are
        offered again here.  Raises :class:`BrokerBusy` when the
        per-worker lease rate cap refuses a grant that work exists
        for — the worker should wait ``retry_after_s`` and come back.
        """
        now = self.clock()
        with self._cond:
            if self._draining:
                return None
            self._expire(now)
            for fleet in self._fleets.values():
                if fleet.complete:
                    continue
                for index, slot in enumerate(fleet.slots):
                    if slot.state != PENDING:
                        continue
                    self._check_lease_rate(worker_id, now)
                    slot.state = LEASED
                    slot.attempt += 1
                    slot.worker_id = worker_id
                    slot.deadline = now + self.lease_ttl_s
                    self._last_grant[worker_id] = now
                    lease_id = (f"{fleet.fleet_id}:{index}:"
                                f"{slot.attempt}")
                    self._journal({"type": "lease",
                                   "fleet_id": fleet.fleet_id,
                                   "run_id": slot.run.run_id,
                                   "lease_id": lease_id,
                                   "worker_id": worker_id})
                    return LeaseGrant(lease_id=lease_id,
                                      fleet_id=fleet.fleet_id,
                                      run=slot.run.to_dict(),
                                      ttl_s=self.lease_ttl_s)
        return None

    def _check_lease_rate(self, worker_id: str,  # lint: holds(_cond)
                          now: float) -> None:
        """Enforce the per-worker grant rate.  Only consulted when a
        grant is about to happen — an idle poll against an empty queue
        is never rate-limited.  Caller holds the lock."""
        if self.lease_rate_per_s is None:
            return
        interval = 1.0 / self.lease_rate_per_s
        last = self._last_grant.get(worker_id)
        if last is None:
            return
        wait = interval - (now - last)
        if wait > 0:
            raise BrokerBusy(
                f"lease rate cap ({self.lease_rate_per_s:g}/s) for "
                f"worker {worker_id!r}", retry_after_s=wait)

    def _expire(self, now: float) -> int:  # lint: holds(_cond)
        """Re-queue every lease whose deadline has passed.  Caller
        holds the lock."""
        expired = 0
        for fleet in self._fleets.values():
            for slot in fleet.slots:
                if slot.state == LEASED and now > slot.deadline:
                    slot.state = PENDING
                    expired += 1
                    fleet.events.append({
                        "event": "requeued",
                        "fleet_id": fleet.fleet_id,
                        "run_id": slot.run.run_id,
                        "worker_id": slot.worker_id,
                        "attempt": slot.attempt,
                    })
        if expired:
            self.requeues += expired
            self._cond.notify_all()
        return expired

    def expire_leases(self) -> int:
        """Public sweep (the server calls this periodically); returns
        how many leases were returned to the queue."""
        with self._cond:
            return self._expire(self.clock())

    # -- results ----------------------------------------------------------

    def submit_result(self, submission: ResultSubmission) -> ResultAck:
        """Land one worker's result (or failure) for a leased run.

        Dedup contract: the first *verifying* record wins; anything
        after it — including a zombie worker finishing a run that was
        re-queued and completed by someone else — is a duplicate, not
        an error, and changes nothing.
        """
        with self._cond:
            # Lease resolution reads _fleets, so it must happen inside
            # the lock — resolving first and locking after raced with
            # concurrent submissions mutating the fleet table.
            fleet, index, _ = self._parse_lease(submission.lease_id)
            slot = fleet.slots[index]
            if submission.error:
                if slot.state == LEASED:
                    # Fast requeue: don't wait out the lease for a run
                    # the worker already knows it failed.
                    slot.state = PENDING
                    fleet.events.append({
                        "event": "requeued",
                        "fleet_id": fleet.fleet_id,
                        "run_id": slot.run.run_id,
                        "worker_id": slot.worker_id,
                        "attempt": slot.attempt,
                        "error": submission.error,
                    })
                    self._cond.notify_all()
                    return ResultAck(accepted=False, requeued=True)
                return ResultAck(accepted=False,
                                 duplicate=slot.state == DONE)
            if slot.state == DONE:
                return ResultAck(accepted=False, duplicate=True)
            assert submission.record is not None  # contract-validated
            try:
                record = RunRecord.from_dict(submission.record)
            except (KeyError, TypeError, ValueError) as exc:
                raise ContractError(
                    f"result record does not parse: {exc}") from None
            if not record_matches_spec(record, slot.run):
                raise ValueError(
                    f"record for {slot.run.run_id} does not verify "
                    f"against the leased run's content identity")
            slot.record = record
            slot.state = DONE
            slot.wall_s = submission.wall_s
            slot.cached = False
            fleet.workers.add(slot.worker_id)
            if self.cache is not None:
                self.cache.put(slot.run.spec_key(), record)
            fleet.store.write_record(record)
            self._journal({"type": "ack",
                           "fleet_id": fleet.fleet_id,
                           "run_id": slot.run.run_id,
                           "worker_id": slot.worker_id,
                           "wall_s": slot.wall_s,
                           "cached": slot.cached})
            # The named crash window: the journal (and the record) are
            # durable but the worker has not seen the ack yet.  A fault
            # schedule crashes here; the retried submission dedups.
            self._fault("broker.ack")
            self._emit_run(fleet, fleet.done_count(), slot)
            if fleet.done_count() == len(fleet.slots):
                self._finalize(fleet)
            self._cond.notify_all()
            return ResultAck(accepted=True)

    def _parse_lease(  # lint: holds(_cond)
            self, lease_id: str) -> tuple[_Fleet, int, int]:
        try:
            fleet_id, index_s, attempt_s = lease_id.rsplit(":", 2)
            fleet = self._fleets[fleet_id]
            index, attempt = int(index_s), int(attempt_s)
            fleet.slots[index]
        except (KeyError, IndexError, ValueError):
            raise LookupError(f"unknown lease {lease_id!r}") from None
        return fleet, index, attempt

    # -- completion -------------------------------------------------------

    def _emit_run(self, fleet: _Fleet, done: int,  # lint: holds(_cond)
                  slot: _Slot) -> None:
        assert slot.record is not None
        event = ProgressEvent.from_record(
            done, len(fleet.slots), slot.record,
            cached=slot.cached, wall_s=slot.wall_s).to_dict()
        event["event"] = "run"
        event["fleet_id"] = fleet.fleet_id
        fleet.events.append(event)

    def _finalize(self, fleet: _Fleet) -> None:  # lint: holds(_cond)
        """Mark complete and write the durable artifacts.  Caller
        holds the lock; every slot is DONE."""
        fleet.finished = self.clock()
        fleet.complete = True
        records = tuple(slot.record for slot in fleet.slots
                        if slot.record is not None)
        if fleet.sweep is not None:
            result = FleetResult(
                sweep=fleet.sweep, records=records,
                run_wall_s=tuple(s.wall_s for s in fleet.slots),
                wall_s=fleet.finished - fleet.created,
                jobs=max(1, len(fleet.workers)),
                backend="service",
                cached=tuple(s.cached for s in fleet.slots))
            fleet.store.save(result, rewrite_records=False)
        else:
            job = {"kind": "runs", "fleet_id": fleet.fleet_id,
                   "complete": True,
                   "run_ids": [s.run.run_id for s in fleet.slots],
                   "wall_s": fleet.finished - fleet.created}
            (fleet.store.directory / RUNS_JOB_MANIFEST).write_text(
                json.dumps(job, indent=2) + "\n")
        self._journal({"type": "complete",
                       "fleet_id": fleet.fleet_id})
        fleet.events.append({"event": "complete",
                             "fleet_id": fleet.fleet_id,
                             "total": len(fleet.slots),
                             "wall_s": fleet.finished - fleet.created})

    # -- durability -------------------------------------------------------

    def recover(self) -> dict[str, int]:
        """Rebuild broker state by replaying the journal.

        Called once, before the server starts taking requests.  For
        every journaled submission the fleet is re-created; each slot
        is then resolved through the content-identity resume path:

        * a store record that verifies against the run's ``run_key``
          marks the slot DONE — an acked run is **never** re-evaluated
          (its ack metadata, when journaled, is restored too);
        * otherwise a shared-cache hit prefills it;
        * otherwise the run returns to the queue — including the case
          where an ack was journaled but the record was lost, which is
          counted as ``requeued`` (content identity guarantees the
          re-evaluated record is bit-identical anyway).

        Journaled leases are deliberately *not* restored: whoever held
        them must retry, and the lease they get is a fresh one.  Ends
        by compacting the journal to a snapshot of the restored state.
        Returns counters (also kept on the broker for the readiness
        probe): recovered ``fleets``/``records``, cache ``prefilled``,
        and acked-but-lost ``requeued`` runs.
        """
        stats = {"fleets": 0, "records": 0, "prefilled": 0,
                 "requeued": 0}
        if self.journal is None:
            return stats
        submits: list[dict[str, Any]] = []
        acks: dict[str, dict[str, dict[str, Any]]] = {}
        for entry in self.journal.replay():
            kind = entry.get("type")
            if kind == "submit":
                submits.append(entry)
            elif kind == "ack":
                acks.setdefault(str(entry.get("fleet_id")), {})[
                    str(entry.get("run_id"))] = entry
            # "lease" entries are ignored: an in-flight lease from the
            # previous life is exactly what must go back to the queue.
        built: list[_Fleet] = []
        counter = 0
        # Store I/O happens out here on fleets no other thread can see
        # yet; only the final installation below takes the lock.
        for entry in submits:
            fleet = self._rebuild_fleet(entry, acks, stats)
            if fleet is None:
                continue
            try:
                counter = max(counter,
                              int(fleet.fleet_id.rsplit("-", 1)[1]))
            except (IndexError, ValueError):
                pass
            built.append(fleet)
        with self._cond:
            for fleet in built:
                self._fleets[fleet.fleet_id] = fleet
                if fleet.submission_key:
                    self._submissions[fleet.submission_key] = \
                        fleet.fleet_id
                done = 0
                for slot in fleet.slots:
                    if slot.state == DONE and slot.record is not None:
                        done += 1
                        self._emit_run(fleet, done, slot)
                if done == len(fleet.slots):
                    self._finalize(fleet)
            self._counter = max(self._counter, counter)
            self.recovered_fleets = stats["fleets"]
            self.recovered_records = stats["records"]
            self.recovery_requeued = stats["requeued"]
            self._cond.notify_all()
            # Re-seed the journal with one snapshot of the restored
            # state — replay lag drops to zero and stale segments go.
            self.journal.compact(self._snapshot_entries())
        return stats

    def _rebuild_fleet(self, entry: dict[str, Any],
                       acks: dict[str, dict[str, dict[str, Any]]],
                       stats: dict[str, int]) -> Optional[_Fleet]:
        """One fleet from its journaled submission; no lock held (the
        fleet is local until :meth:`recover` installs it)."""
        fleet_id = str(entry.get("fleet_id", ""))
        if not fleet_id:
            return None
        sweep_data = entry.get("sweep")
        try:
            if sweep_data is not None:
                sweep: Optional[SweepSpec] = SweepSpec.from_dict(
                    sweep_data)
                runs = list(sweep.expand())
            else:
                sweep = None
                runs = [RunSpec.from_dict(d)
                        for d in entry.get("runs") or []]
        except (KeyError, TypeError, ValueError):
            return None
        if not runs:
            return None
        store = FleetStore(self.root / fleet_id)
        if sweep is not None and not store.manifest_path.exists():
            # The crash landed between the journal append and the
            # manifest write: re-create the skeleton.
            store.begin(sweep, jobs=1, backend="service")
        existing = store.existing_records()
        fleet = _Fleet(fleet_id, [_Slot(run) for run in runs], store,
                       sweep, self.clock())
        fleet.submission_key = str(entry.get("submission_key") or "")
        fleet_acks = acks.get(fleet_id, {})
        for slot in fleet.slots:
            record = existing.get(slot.run.run_id)
            ack = fleet_acks.get(slot.run.run_id)
            if record is not None and record_matches_spec(
                    record, slot.run):
                slot.record = record
                slot.state = DONE
                if ack is not None:
                    slot.cached = bool(ack.get("cached", False))
                    slot.wall_s = float(ack.get("wall_s", 0.0))
                    worker = str(ack.get("worker_id") or "")
                    if worker:
                        fleet.workers.add(worker)
                else:
                    # On disk but never acked: a prefill (or an ack
                    # lost to a torn journal tail) — count it reused.
                    slot.cached = True
                stats["records"] += 1
                continue
            if self.cache is not None:
                key = slot.run.spec_key()
                hit = self.cache.get(key)
                if hit is not None:
                    slot.record = rebind_record(hit, slot.run, key)
                    slot.state = DONE
                    slot.cached = True
                    store.write_record(slot.record)
                    stats["prefilled"] += 1
                    continue
            if ack is not None:
                stats["requeued"] += 1
        fleet.submitted_cached = sum(1 for s in fleet.slots if s.cached)
        fleet.events.append({"event": "recovered",
                             "fleet_id": fleet_id,
                             "total": len(fleet.slots),
                             "done": fleet.done_count(),
                             "requeued": (len(fleet.slots)
                                          - fleet.done_count())})
        stats["fleets"] += 1
        return fleet

    def _snapshot_entries(self) -> list[dict[str, Any]]:  # lint: holds(_cond)
        """The journal entries that reproduce current state — what a
        compaction writes behind its snapshot marker."""
        entries: list[dict[str, Any]] = []
        for fleet in self._fleets.values():
            entries.append(fleet.submit_entry())
            for slot in fleet.slots:
                if slot.state == DONE:
                    entries.append({"type": "ack",
                                    "fleet_id": fleet.fleet_id,
                                    "run_id": slot.run.run_id,
                                    "worker_id": slot.worker_id,
                                    "wall_s": slot.wall_s,
                                    "cached": slot.cached})
            if fleet.complete:
                entries.append({"type": "complete",
                                "fleet_id": fleet.fleet_id})
        return entries

    def compact_journal(self, *, min_lag: int = 1) -> bool:
        """Compact when at least ``min_lag`` entries accumulated since
        the last snapshot; returns whether a compaction ran.  The
        server's chore thread calls this periodically."""
        with self._cond:
            if (self.journal is None
                    or self.journal.appended_since_compact < min_lag):
                return False
            self.journal.compact(self._snapshot_entries())
            return True

    def sync_journal(self) -> None:
        """Force journaled state to disk — the drain path's last step
        before a clean exit."""
        with self._cond:
            if self.journal is not None:
                self.journal.sync()

    # -- drain ------------------------------------------------------------

    def drain(self) -> None:
        """Stop granting leases and refuse new fleets; results for
        already-granted leases are still accepted and acked."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def draining(self) -> bool:
        with self._cond:
            return bool(self._draining)

    def in_flight(self) -> int:
        """Leases currently checked out — what drain waits to hit 0."""
        with self._cond:
            return sum(1 for f in self._fleets.values()
                       for s in f.slots if s.state == LEASED)

    # -- introspection ----------------------------------------------------

    def _fleet(self, fleet_id: str) -> _Fleet:  # lint: holds(_cond)
        try:
            return self._fleets[fleet_id]
        except KeyError:
            raise LookupError(f"unknown fleet {fleet_id!r}") from None

    def fleet_dir(self, fleet_id: str) -> Path:
        with self._cond:
            return self._fleet(fleet_id).store.directory

    def fleet_ids(self) -> list[str]:
        with self._cond:
            return list(self._fleets)

    def status(self, fleet_id: str) -> FleetStatus:
        with self._cond:
            fleet = self._fleet(fleet_id)
            done = fleet.done_count()
            leased = sum(1 for s in fleet.slots if s.state == LEASED)
            wall = ((fleet.finished if fleet.complete else self.clock())
                    - fleet.created)
            return FleetStatus(
                fleet_id=fleet_id,
                state="complete" if fleet.complete else "running",
                total=len(fleet.slots), done=done, leased=leased,
                pending=len(fleet.slots) - done - leased,
                cached=sum(1 for s in fleet.slots if s.cached),
                workers=len(fleet.workers), wall_s=wall)

    def statuses(self) -> list[FleetStatus]:
        with self._cond:
            ids = list(self._fleets)
        return [self.status(fleet_id) for fleet_id in ids]

    def running_count(self) -> int:
        with self._cond:
            return sum(1 for f in self._fleets.values()
                       if not f.complete)

    def queue_stats(self) -> dict[str, int]:
        """Queue depth for the readiness probe: pending and leased
        runs plus fleet counts, in one consistent snapshot."""
        with self._cond:
            pending = leased = 0
            running = 0
            for fleet in self._fleets.values():
                if not fleet.complete:
                    running += 1
                for slot in fleet.slots:
                    if slot.state == PENDING:
                        pending += 1
                    elif slot.state == LEASED:
                        leased += 1
            return {"fleets": len(self._fleets), "running": running,
                    "pending": pending, "leased": leased}

    def slots(self, fleet_id: str, *,
              since: int = 0) -> tuple[list[dict[str, Any]], bool]:
        """Slot snapshots from index ``since`` on, plus the complete
        flag — the polling surface ``RemoteExecutor`` streams from."""
        with self._cond:
            fleet = self._fleet(fleet_id)
            return ([slot.to_dict() for slot in fleet.slots[since:]],
                    fleet.complete)

    def record(self, fleet_id: str, run_id: str) -> RunRecord:
        with self._cond:
            fleet = self._fleet(fleet_id)
            for slot in fleet.slots:
                if slot.run.run_id == run_id:
                    if slot.record is None:
                        raise LookupError(
                            f"run {run_id!r} has no record yet")
                    return slot.record
        raise LookupError(f"unknown run {run_id!r} in {fleet_id!r}")

    def events_since(self, fleet_id: str, index: int, *,
                     wait_s: float = 0.0
                     ) -> tuple[list[dict[str, Any]], bool]:
        """Events from ``index`` on; with ``wait_s`` blocks until a
        new event arrives, the fleet completes, or the wait times out
        — the NDJSON streaming loop."""
        deadline = time.monotonic() + wait_s
        with self._cond:
            fleet = self._fleet(fleet_id)
            while (len(fleet.events) <= index and not fleet.complete):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(remaining, 0.5))
            return list(fleet.events[index:]), fleet.complete
