"""The fleet broker: a deterministic, lease-based run queue.

One broker instance backs one ``repro serve`` process.  Clients submit
fleets (a :class:`~repro.fleet.sweep.SweepSpec`, or an already-expanded
run list from :class:`~repro.fleet.executors.RemoteExecutor`); workers
lease runs one at a time and post :class:`~repro.fleet.sweep.RunRecord`
results back.  All state is in memory and guarded by one lock — the
durable artifacts are the fleet directories under ``root`` (written
through :class:`~repro.fleet.store.FleetStore`, so a completed service
fleet is byte-compatible with a locally-run one) and the shared
:class:`~repro.fleet.cache.ResultCache`.

Fault model (the reason leases exist):

* A worker that dies mid-run simply never posts its result.  Its
  lease expires after ``lease_ttl_s`` and the run returns to the
  queue — the next ``lease()`` call from any worker picks it up.
* Results are deduplicated by content identity: a run is *done* the
  first time a verifying record lands, and every later submission for
  it (a raced worker, a zombie finishing after its lease expired) is
  acknowledged as a duplicate and discarded.  No run is ever counted
  twice, and a record that does not verify against the leased run's
  ``run_key`` is rejected outright.
* Leasing order is deterministic — fleets in submission order, runs
  in expansion order — so a drained queue always yields records
  bit-identical to a serial :func:`~repro.fleet.runner.run_sweep` of
  the same sweep.

Time is injected (``clock``) so lease expiry is unit-testable without
sleeping.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from ..fleet.cache import ResultCache, rebind_record
from ..fleet.progress import ProgressEvent
from ..fleet.store import FleetResult, FleetStore
from ..sim.sync import WatchedCondition, guarded_by
from ..fleet.sweep import (
    RunRecord,
    RunSpec,
    SweepSpec,
    record_matches_spec,
)
from .contracts import (
    ContractError,
    FleetStatus,
    LeaseGrant,
    ResultAck,
    ResultSubmission,
    SubmitAck,
)

__all__ = ["FleetBroker", "RUNS_JOB_MANIFEST"]

PENDING = "pending"
LEASED = "leased"
DONE = "done"

#: Manifest name for fleets submitted as raw run lists (no SweepSpec
#: to re-expand, so they get this lightweight job file instead of a
#: ``FleetStore`` manifest).
RUNS_JOB_MANIFEST = "job.json"


class _Slot:
    """One run's live state inside the broker."""

    __slots__ = ("run", "state", "attempt", "worker_id", "deadline",
                 "record", "wall_s", "cached")

    def __init__(self, run: RunSpec) -> None:
        self.run = run
        self.state = PENDING
        self.attempt = 0          # lease generation counter
        self.worker_id = ""
        self.deadline = 0.0
        self.record: Optional[RunRecord] = None
        self.wall_s = 0.0
        self.cached = False

    def to_dict(self, *, with_record: bool = True) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "run_id": self.run.run_id, "state": self.state,
            "cached": self.cached, "wall_s": self.wall_s,
        }
        if with_record:
            payload["record"] = (self.record.to_dict()
                                 if self.record is not None else None)
        return payload


class _Fleet:
    """One submitted fleet: its slots, store, and event log."""

    def __init__(self, fleet_id: str, slots: list[_Slot],
                 store: FleetStore, sweep: Optional[SweepSpec],
                 created: float) -> None:
        self.fleet_id = fleet_id
        self.slots = slots
        self.store = store
        self.sweep = sweep
        self.created = created
        self.finished = 0.0
        self.complete = False
        self.workers: set[str] = set()
        self.events: list[dict[str, Any]] = []

    def done_count(self) -> int:
        return sum(1 for slot in self.slots if slot.state == DONE)


class FleetBroker:
    """In-memory queue + on-disk fleet stores behind the service.

    Thread-safety contract (checked by ``repro lint`` REP101 and the
    runtime watchdog): all queue state is ``guarded_by`` the single
    condition ``_cond``; helpers called with it held carry a
    ``# lint: holds(_cond)`` marker.  ``requeues`` is ``writes_only``
    — tests and metrics read the counter lock-free by design.
    """

    _fleets: dict[str, _Fleet] = guarded_by("_cond")
    _counter: int = guarded_by("_cond")
    requeues: int = guarded_by("_cond", writes_only=True)

    def __init__(self, root: Union[str, Path], *,
                 cache: Optional[ResultCache] = None,
                 lease_ttl_s: float = 60.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        self.root = Path(root)
        self.cache = cache
        self.lease_ttl_s = lease_ttl_s
        self.clock = clock
        self._cond = WatchedCondition("broker")
        self.requeues = 0          #: lifetime count of expired leases
        self._fleets = {}
        self._counter = 0

    # -- submission -------------------------------------------------------

    def submit_sweep(self, sweep: SweepSpec) -> SubmitAck:
        """Queue every run of ``sweep``; its directory becomes a full
        fleet store (manifest + records + CSV once complete)."""
        return self._submit(list(sweep.expand()), sweep)

    def submit_runs(self, runs: Sequence[RunSpec]) -> SubmitAck:
        """Queue already-expanded runs (the :class:`RemoteExecutor`
        path).  Records persist per-run; without a sweep to re-expand
        there is no manifest, just a lightweight job file."""
        if not runs:
            raise ValueError("fleet needs at least one run")
        ids = [run.run_id for run in runs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate run ids in submitted fleet")
        return self._submit(list(runs), None)

    def _submit(self, runs: list[RunSpec],
                sweep: Optional[SweepSpec]) -> SubmitAck:
        with self._cond:
            self._counter += 1
            fleet_id = f"fleet-{self._counter:04d}"
            store = FleetStore(self.root / fleet_id)
            fleet = _Fleet(fleet_id, [_Slot(run) for run in runs],
                           store, sweep, self.clock())
            if sweep is not None:
                store.begin(sweep, jobs=1, backend="service")
            self._fleets[fleet_id] = fleet
            cached = 0
            if self.cache is not None:
                # Warm-cache prefill: a run the shared cache has
                # already seen never reaches the queue.
                for slot in fleet.slots:
                    key = slot.run.spec_key()
                    record = self.cache.get(key)
                    if record is None:
                        continue
                    slot.record = rebind_record(record, slot.run, key)
                    slot.state = DONE
                    slot.cached = True
                    cached += 1
                    store.write_record(slot.record)
            fleet.events.append({"event": "submitted",
                                 "fleet_id": fleet_id,
                                 "total": len(fleet.slots),
                                 "cached": cached})
            done = 0
            for slot in fleet.slots:
                if slot.state == DONE and slot.record is not None:
                    done += 1
                    self._emit_run(fleet, done, slot)
            if done == len(fleet.slots):
                self._finalize(fleet)
            self._cond.notify_all()
            return SubmitAck(fleet_id=fleet_id, total=len(fleet.slots),
                             cached=cached)

    # -- leasing ----------------------------------------------------------

    def lease(self, worker_id: str) -> Optional[LeaseGrant]:
        """Check the next pending run out to ``worker_id``, or
        ``None`` when the queue is empty.  Expired leases are swept
        first, so a dead worker's runs are offered again here."""
        now = self.clock()
        with self._cond:
            self._expire(now)
            for fleet in self._fleets.values():
                if fleet.complete:
                    continue
                for index, slot in enumerate(fleet.slots):
                    if slot.state != PENDING:
                        continue
                    slot.state = LEASED
                    slot.attempt += 1
                    slot.worker_id = worker_id
                    slot.deadline = now + self.lease_ttl_s
                    lease_id = (f"{fleet.fleet_id}:{index}:"
                                f"{slot.attempt}")
                    return LeaseGrant(lease_id=lease_id,
                                      fleet_id=fleet.fleet_id,
                                      run=slot.run.to_dict(),
                                      ttl_s=self.lease_ttl_s)
        return None

    def _expire(self, now: float) -> int:  # lint: holds(_cond)
        """Re-queue every lease whose deadline has passed.  Caller
        holds the lock."""
        expired = 0
        for fleet in self._fleets.values():
            for slot in fleet.slots:
                if slot.state == LEASED and now > slot.deadline:
                    slot.state = PENDING
                    expired += 1
                    fleet.events.append({
                        "event": "requeued",
                        "fleet_id": fleet.fleet_id,
                        "run_id": slot.run.run_id,
                        "worker_id": slot.worker_id,
                        "attempt": slot.attempt,
                    })
        if expired:
            self.requeues += expired
            self._cond.notify_all()
        return expired

    def expire_leases(self) -> int:
        """Public sweep (the server calls this periodically); returns
        how many leases were returned to the queue."""
        with self._cond:
            return self._expire(self.clock())

    # -- results ----------------------------------------------------------

    def submit_result(self, submission: ResultSubmission) -> ResultAck:
        """Land one worker's result (or failure) for a leased run.

        Dedup contract: the first *verifying* record wins; anything
        after it — including a zombie worker finishing a run that was
        re-queued and completed by someone else — is a duplicate, not
        an error, and changes nothing.
        """
        with self._cond:
            # Lease resolution reads _fleets, so it must happen inside
            # the lock — resolving first and locking after raced with
            # concurrent submissions mutating the fleet table.
            fleet, index, _ = self._parse_lease(submission.lease_id)
            slot = fleet.slots[index]
            if submission.error:
                if slot.state == LEASED:
                    # Fast requeue: don't wait out the lease for a run
                    # the worker already knows it failed.
                    slot.state = PENDING
                    fleet.events.append({
                        "event": "requeued",
                        "fleet_id": fleet.fleet_id,
                        "run_id": slot.run.run_id,
                        "worker_id": slot.worker_id,
                        "attempt": slot.attempt,
                        "error": submission.error,
                    })
                    self._cond.notify_all()
                    return ResultAck(accepted=False, requeued=True)
                return ResultAck(accepted=False,
                                 duplicate=slot.state == DONE)
            if slot.state == DONE:
                return ResultAck(accepted=False, duplicate=True)
            assert submission.record is not None  # contract-validated
            try:
                record = RunRecord.from_dict(submission.record)
            except (KeyError, TypeError, ValueError) as exc:
                raise ContractError(
                    f"result record does not parse: {exc}") from None
            if not record_matches_spec(record, slot.run):
                raise ValueError(
                    f"record for {slot.run.run_id} does not verify "
                    f"against the leased run's content identity")
            slot.record = record
            slot.state = DONE
            slot.wall_s = submission.wall_s
            slot.cached = False
            fleet.workers.add(slot.worker_id)
            if self.cache is not None:
                self.cache.put(slot.run.spec_key(), record)
            fleet.store.write_record(record)
            self._emit_run(fleet, fleet.done_count(), slot)
            if fleet.done_count() == len(fleet.slots):
                self._finalize(fleet)
            self._cond.notify_all()
            return ResultAck(accepted=True)

    def _parse_lease(  # lint: holds(_cond)
            self, lease_id: str) -> tuple[_Fleet, int, int]:
        try:
            fleet_id, index_s, attempt_s = lease_id.rsplit(":", 2)
            fleet = self._fleets[fleet_id]
            index, attempt = int(index_s), int(attempt_s)
            fleet.slots[index]
        except (KeyError, IndexError, ValueError):
            raise LookupError(f"unknown lease {lease_id!r}") from None
        return fleet, index, attempt

    # -- completion -------------------------------------------------------

    def _emit_run(self, fleet: _Fleet, done: int,  # lint: holds(_cond)
                  slot: _Slot) -> None:
        assert slot.record is not None
        event = ProgressEvent.from_record(
            done, len(fleet.slots), slot.record,
            cached=slot.cached, wall_s=slot.wall_s).to_dict()
        event["event"] = "run"
        event["fleet_id"] = fleet.fleet_id
        fleet.events.append(event)

    def _finalize(self, fleet: _Fleet) -> None:  # lint: holds(_cond)
        """Mark complete and write the durable artifacts.  Caller
        holds the lock; every slot is DONE."""
        fleet.finished = self.clock()
        fleet.complete = True
        records = tuple(slot.record for slot in fleet.slots
                        if slot.record is not None)
        if fleet.sweep is not None:
            result = FleetResult(
                sweep=fleet.sweep, records=records,
                run_wall_s=tuple(s.wall_s for s in fleet.slots),
                wall_s=fleet.finished - fleet.created,
                jobs=max(1, len(fleet.workers)),
                backend="service",
                cached=tuple(s.cached for s in fleet.slots))
            fleet.store.save(result, rewrite_records=False)
        else:
            job = {"kind": "runs", "fleet_id": fleet.fleet_id,
                   "complete": True,
                   "run_ids": [s.run.run_id for s in fleet.slots],
                   "wall_s": fleet.finished - fleet.created}
            (fleet.store.directory / RUNS_JOB_MANIFEST).write_text(
                json.dumps(job, indent=2) + "\n")
        fleet.events.append({"event": "complete",
                             "fleet_id": fleet.fleet_id,
                             "total": len(fleet.slots),
                             "wall_s": fleet.finished - fleet.created})

    # -- introspection ----------------------------------------------------

    def _fleet(self, fleet_id: str) -> _Fleet:  # lint: holds(_cond)
        try:
            return self._fleets[fleet_id]
        except KeyError:
            raise LookupError(f"unknown fleet {fleet_id!r}") from None

    def fleet_dir(self, fleet_id: str) -> Path:
        with self._cond:
            return self._fleet(fleet_id).store.directory

    def fleet_ids(self) -> list[str]:
        with self._cond:
            return list(self._fleets)

    def status(self, fleet_id: str) -> FleetStatus:
        with self._cond:
            fleet = self._fleet(fleet_id)
            done = fleet.done_count()
            leased = sum(1 for s in fleet.slots if s.state == LEASED)
            wall = ((fleet.finished if fleet.complete else self.clock())
                    - fleet.created)
            return FleetStatus(
                fleet_id=fleet_id,
                state="complete" if fleet.complete else "running",
                total=len(fleet.slots), done=done, leased=leased,
                pending=len(fleet.slots) - done - leased,
                cached=sum(1 for s in fleet.slots if s.cached),
                workers=len(fleet.workers), wall_s=wall)

    def statuses(self) -> list[FleetStatus]:
        with self._cond:
            ids = list(self._fleets)
        return [self.status(fleet_id) for fleet_id in ids]

    def running_count(self) -> int:
        with self._cond:
            return sum(1 for f in self._fleets.values()
                       if not f.complete)

    def slots(self, fleet_id: str, *,
              since: int = 0) -> tuple[list[dict[str, Any]], bool]:
        """Slot snapshots from index ``since`` on, plus the complete
        flag — the polling surface ``RemoteExecutor`` streams from."""
        with self._cond:
            fleet = self._fleet(fleet_id)
            return ([slot.to_dict() for slot in fleet.slots[since:]],
                    fleet.complete)

    def record(self, fleet_id: str, run_id: str) -> RunRecord:
        with self._cond:
            fleet = self._fleet(fleet_id)
            for slot in fleet.slots:
                if slot.run.run_id == run_id:
                    if slot.record is None:
                        raise LookupError(
                            f"run {run_id!r} has no record yet")
                    return slot.record
        raise LookupError(f"unknown run {run_id!r} in {fleet_id!r}")

    def events_since(self, fleet_id: str, index: int, *,
                     wait_s: float = 0.0
                     ) -> tuple[list[dict[str, Any]], bool]:
        """Events from ``index`` on; with ``wait_s`` blocks until a
        new event arrives, the fleet completes, or the wait times out
        — the NDJSON streaming loop."""
        deadline = time.monotonic() + wait_s
        with self._cond:
            fleet = self._fleet(fleet_id)
            while (len(fleet.events) <= index and not fleet.complete):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(remaining, 0.5))
            return list(fleet.events[index:]), fleet.complete
