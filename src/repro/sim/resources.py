"""Shared-resource primitives for the simulation kernel.

Three primitives cover everything the network models need:

* :class:`Resource` — ``capacity`` interchangeable slots with a FIFO (or
  priority) wait queue.  Models radio scheduler grants, UPF worker cores,
  control-plane threads.
* :class:`Store` — an unbounded (or bounded) FIFO buffer of Python
  objects.  Models packet queues and message buses.
* :class:`Container` — a continuous quantity with put/get.  Models link
  byte budgets and slice resource pools.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "PriorityResource", "Store", "Container"]


class Request(Event):
    """Pending claim on a :class:`Resource` slot.

    Fires when the slot is granted.  Must be released via
    :meth:`Resource.release` (or used through :meth:`Resource.acquire`,
    which packages request/release as a context-manager-ish generator).
    """

    __slots__ = ("resource", "priority", "order")

    def __init__(self, resource: "Resource", priority: float, order: int):
        super().__init__(resource.sim, name=f"request({resource.name})")
        self.resource = resource
        self.priority = priority
        self.order = order

    def __lt__(self, other: "Request") -> bool:
        return (self.priority, self.order) < (other.priority, other.order)


class Resource:
    """``capacity`` identical slots with a FIFO wait queue."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._users: set[Request] = set()
        self._queue: list[Request] = []
        self._order = itertools.count()

    # -- introspection ------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    # -- operations ---------------------------------------------------------

    def request(self, priority: float = 0.0) -> Request:
        """Claim a slot; the returned event fires when granted.

        ``priority`` is only meaningful for :class:`PriorityResource`;
        the base class ignores it (pure FIFO).
        """
        req = Request(self, priority, next(self._order))
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot and wake the next waiter."""
        if request in self._users:
            self._users.remove(request)
            nxt = self._dequeue()
            if nxt is not None:
                self._users.add(nxt)
                nxt.succeed(nxt)
        elif self._remove_queued(request):
            pass  # cancelled while waiting: nothing held, nothing to wake
        else:
            raise SimulationError(
                f"release() of a request not issued by {self.name!r}")

    def acquire(self, hold: float, priority: float = 0.0
                ) -> Generator[Event, Any, None]:
        """Generator helper: request, hold for ``hold`` seconds, release."""
        req = self.request(priority)
        try:
            yield req
            yield self.sim.timeout(hold)
        finally:
            self.release(req)

    # -- queue policy (FIFO base) ---------------------------------------

    def _enqueue(self, req: Request) -> None:
        self._queue.append(req)

    def _dequeue(self) -> Optional[Request]:
        return self._queue.pop(0) if self._queue else None

    def _remove_queued(self, req: Request) -> bool:
        try:
            self._queue.remove(req)
            return True
        except ValueError:
            return False


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-``priority`` value first.

    Ties (equal priority) are FIFO by arrival order.  Used by the MAC
    scheduler (QoS classes) and the context-aware QoS rule engine.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        super().__init__(sim, capacity, name or "priority_resource")
        self._pqueue: list[Request] = []

    def _enqueue(self, req: Request) -> None:
        heapq.heappush(self._pqueue, req)

    def _dequeue(self) -> Optional[Request]:
        return heapq.heappop(self._pqueue) if self._pqueue else None

    def _remove_queued(self, req: Request) -> bool:
        try:
            self._pqueue.remove(req)
            heapq.heapify(self._pqueue)
            return True
        except ValueError:
            return False

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)


class Store:
    """FIFO buffer of arbitrary items with optional capacity bound.

    ``put`` blocks (as an event) when full; ``get`` blocks when empty.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "store"
        self._items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, Any]] = []

    @property
    def size(self) -> int:
        """Number of items currently buffered."""
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; event fires once the item is accepted."""
        ev = Event(self.sim, name=f"put({self.name})")
        if self._getters:
            # Hand directly to the longest-waiting getter.
            getter = self._getters.pop(0)
            getter.succeed(item)
            ev.succeed(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Remove the oldest item; event fires with the item as value."""
        ev = Event(self.sim, name=f"get({self.name})")
        if self._items:
            item = self._items.pop(0)
            ev.succeed(item)
            if self._putters:
                pev, pitem = self._putters.pop(0)
                self._items.append(pitem)
                pev.succeed(None)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.pop(0)
            if self._putters:
                pev, pitem = self._putters.pop(0)
                self._items.append(pitem)
                pev.succeed(None)
            return True, item
        return False, None


class Container:
    """A continuous quantity (tokens, bytes, PRBs) with blocking put/get."""

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 init: float = 0.0, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self.name = name or "container"
        self._getters: list[tuple[Event, float]] = []
        self._putters: list[tuple[Event, float]] = []

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would overflow capacity."""
        if amount < 0:
            raise ValueError("put amount must be non-negative")
        ev = Event(self.sim, name=f"put({self.name})")
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount < 0:
            raise ValueError("get amount must be non-negative")
        ev = Event(self.sim, name=f"get({self.name})")
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        moved = True
        while moved:
            moved = False
            if self._putters:
                ev, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.pop(0)
                    self.level += amount
                    ev.succeed(None)
                    moved = True
            if self._getters:
                ev, amount = self._getters[0]
                if amount <= self.level:
                    self._getters.pop(0)
                    self.level -= amount
                    ev.succeed(amount)
                    moved = True
