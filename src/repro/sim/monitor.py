"""Measurement collection during simulation runs.

Two collectors cover the evaluation's needs:

* :class:`SeriesMonitor` — point samples ``(t, value)`` with summary
  statistics (used for RTT samples, per-packet latencies).
* :class:`TimeWeightedMonitor` — piecewise-constant signals (queue
  lengths, utilisation) summarised with *time-weighted* statistics, which
  is what queueing metrics require (an instantaneous spike should not
  count as much as a sustained plateau).

Both are intentionally NumPy-backed: a drive-test campaign produces
hundreds of thousands of samples, and summary statistics over Python
lists would dominate the run time (see the profiling-first guidance in
the project coding notes).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["SeriesMonitor", "TimeWeightedMonitor", "SummaryStats"]


class SummaryStats:
    """Immutable bag of summary statistics."""

    __slots__ = ("count", "mean", "std", "minimum", "maximum",
                 "p50", "p95", "p99")

    def __init__(self, count: int, mean: float, std: float, minimum: float,
                 maximum: float, p50: float, p95: float, p99: float):
        self.count = count
        self.mean = mean
        self.std = std
        self.minimum = minimum
        self.maximum = maximum
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99

    @classmethod
    def empty(cls) -> "SummaryStats":
        nan = float("nan")
        return cls(0, nan, nan, nan, nan, nan, nan, nan)

    def as_dict(self) -> dict:
        """All statistics as a plain dict."""
        return {k: getattr(self, k) for k in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover
        if self.count == 0:
            return "SummaryStats(empty)"
        return (f"SummaryStats(n={self.count}, mean={self.mean:.6g}, "
                f"std={self.std:.6g}, min={self.minimum:.6g}, "
                f"max={self.maximum:.6g})")


class SeriesMonitor:
    """Append-only store of ``(time, value)`` samples.

    Uses geometric array growth (amortised O(1) appends) rather than a
    Python list so that summaries are zero-copy NumPy reductions.
    """

    _INITIAL = 256

    def __init__(self, name: str = ""):
        self.name = name or "series"
        self._times = np.empty(self._INITIAL, dtype=np.float64)
        self._values = np.empty(self._INITIAL, dtype=np.float64)
        self._n = 0

    def record(self, time: float, value: float) -> None:
        """Append one sample."""
        if self._n == self._times.shape[0]:
            self._grow()
        self._times[self._n] = time
        self._values[self._n] = value
        self._n += 1

    def extend(self, times: np.ndarray, values: np.ndarray) -> None:
        """Append a batch of samples (vectorised fast path)."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise ValueError("times and values must have identical shape")
        need = self._n + times.size
        while need > self._times.shape[0]:
            self._grow()
        self._times[self._n:need] = times
        self._values[self._n:need] = values
        self._n = need

    def _grow(self) -> None:
        cap = max(self._INITIAL, self._times.shape[0] * 2)
        self._times = np.resize(self._times, cap)
        self._values = np.resize(self._values, cap)

    # -- views ----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._n

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (read-only view, no copy)."""
        view = self._times[:self._n]
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Sample values (read-only view, no copy)."""
        view = self._values[:self._n]
        view.flags.writeable = False
        return view

    # -- statistics ---------------------------------------------------------

    def summary(self) -> SummaryStats:
        """Summary statistics over all recorded values."""
        if self._n == 0:
            return SummaryStats.empty()
        v = self._values[:self._n]
        p50, p95, p99 = np.percentile(v, [50.0, 95.0, 99.0])
        return SummaryStats(
            count=self._n,
            mean=float(v.mean()),
            std=float(v.std(ddof=1)) if self._n > 1 else 0.0,
            minimum=float(v.min()),
            maximum=float(v.max()),
            p50=float(p50), p95=float(p95), p99=float(p99),
        )

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold``.

        Used to reproduce the Fezeu-style PHY latency CDF checkpoints
        ("4.4% of packets in under 1 ms").
        """
        if self._n == 0:
            raise ValueError("no samples recorded")
        return float((self._values[:self._n] < threshold).mean())


class TimeWeightedMonitor:
    """Piecewise-constant signal with time-weighted statistics."""

    def __init__(self, initial: float = 0.0, start_time: float = 0.0,
                 name: str = ""):
        self.name = name or "level"
        self._last_time = start_time
        self._last_value = float(initial)
        self._area = 0.0          # integral of value dt
        self._area2 = 0.0         # integral of value^2 dt
        self._elapsed = 0.0
        self._minimum = float(initial)
        self._maximum = float(initial)

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}")
        dt = time - self._last_time
        self._area += self._last_value * dt
        self._area2 += self._last_value * self._last_value * dt
        self._elapsed += dt
        self._last_time = time
        self._last_value = float(value)
        self._minimum = min(self._minimum, float(value))
        self._maximum = max(self._maximum, float(value))

    @property
    def current(self) -> float:
        return self._last_value

    def mean(self, until: Optional[float] = None) -> float:
        """Time-weighted mean up to ``until`` (default: last update)."""
        area, elapsed = self._area, self._elapsed
        if until is not None:
            if until < self._last_time:
                raise ValueError("until precedes the last update")
            extra = until - self._last_time
            area += self._last_value * extra
            elapsed += extra
        if elapsed == 0.0:
            return self._last_value
        return area / elapsed

    def std(self, until: Optional[float] = None) -> float:
        """Time-weighted standard deviation."""
        area, area2, elapsed = self._area, self._area2, self._elapsed
        if until is not None:
            extra = until - self._last_time
            if extra < 0:
                raise ValueError("until precedes the last update")
            area += self._last_value * extra
            area2 += self._last_value ** 2 * extra
            elapsed += extra
        if elapsed == 0.0:
            return 0.0
        mean = area / elapsed
        var = max(area2 / elapsed - mean * mean, 0.0)
        return math.sqrt(var)

    @property
    def minimum(self) -> float:
        return self._minimum

    @property
    def maximum(self) -> float:
        return self._maximum
