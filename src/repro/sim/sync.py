"""Thread-safety contracts: guarded attributes + watched locks.

The concurrency analogue of :mod:`repro.sim.rng`'s determinism
contracts: this module is where a class *declares* its locking
discipline, so both the static linter (``repro lint`` REP101..REP106)
and a runtime watchdog can enforce it.

Two halves:

* :func:`guarded_by` — a class-level declaration that an attribute may
  only be touched while holding a named lock attribute of the same
  object.  The declaration is what REP101 reads; at runtime it is a
  data descriptor that, in *assert mode*, raises
  :class:`GuardViolation` on any access without the lock held.
* :class:`WatchedLock` / :class:`WatchedCondition` — drop-in
  ``RLock``/``Condition`` wrappers that track ownership (so
  ``held_by_current_thread`` is answerable) and, in assert mode, feed
  a process-global lock-acquisition-order graph.  Acquiring lock B
  while holding lock A adds the edge ``A -> B``; an acquisition that
  would close a cycle raises :class:`LockOrderError` *before*
  blocking — a sanitizer-style potential-deadlock detector, the
  dynamic twin of the static REP105 lock-order rule.

Assert mode is off by default (the wrappers then cost one extra
method call per acquire) and is enabled for tests and the service
end-to-end smoke via the ``REPRO_SYNC_ASSERT=1`` environment variable
or :func:`set_assert_mode`.

Conventions the static rules rely on:

* declare ``attr: <type> = guarded_by("_lock")`` at class level, and
  assign the real value in ``__init__`` (the first assignment is
  always allowed — the object is not shared yet);
* ``writes_only=True`` relaxes only the *runtime* read check, for
  attributes whose binding is effectively immutable after ``__init__``
  and which external observers may read without the lock (stats
  counters); the static rule still requires in-class accesses to hold
  the lock;
* helpers documented as "caller holds the lock" carry a
  ``# lint: holds(<lock>)`` comment on their ``def`` line, which both
  documents and (statically) enforces the convention.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Optional

__all__ = [
    "GuardViolation",
    "GuardedAttribute",
    "LockOrderError",
    "SyncContractError",
    "WatchedCondition",
    "WatchedLock",
    "assert_mode",
    "declared_guards",
    "guarded_by",
    "reset_watchdog",
    "set_assert_mode",
]

#: environment variable that switches assert mode on at import time
ASSERT_ENV = "REPRO_SYNC_ASSERT"


class SyncContractError(RuntimeError):
    """A declared thread-safety contract was violated at runtime."""


class GuardViolation(SyncContractError):
    """A guarded attribute was touched without its lock held."""


class LockOrderError(SyncContractError):
    """A lock acquisition would close a cycle in the order graph."""


def _env_assert() -> bool:
    return os.environ.get(ASSERT_ENV, "").strip().lower() not in (
        "", "0", "false", "no")


_assert_mode: bool = _env_assert()


def assert_mode() -> bool:
    """Whether runtime contract checking is currently enabled."""
    return _assert_mode


def set_assert_mode(enabled: bool) -> bool:
    """Enable/disable runtime checking; returns the previous mode.

    Tests toggle this in-process instead of re-importing with the
    environment variable set.
    """
    global _assert_mode
    previous = _assert_mode
    _assert_mode = bool(enabled)
    return previous


# ---------------------------------------------------------------------------
# Lock-order watchdog: a process-global graph of observed acquisition
# order, keyed by lock *name* (every "broker" lock is one node), plus a
# per-thread stack of currently held names.
# ---------------------------------------------------------------------------

_graph_lock = threading.Lock()
#: lock name -> names acquired at least once while it was held
_order_edges: dict[str, set[str]] = {}
_held_local = threading.local()


def _held_stack() -> list[str]:
    stack = getattr(_held_local, "stack", None)
    if stack is None:
        stack = []
        _held_local.stack = stack
    return stack


def reset_watchdog() -> None:
    """Forget all recorded acquisition-order edges (test isolation)."""
    with _graph_lock:
        _order_edges.clear()


def _path_between(src: str, dst: str) -> Optional[list[str]]:
    """A path ``src -> .. -> dst`` through the order graph, if any.

    Caller holds ``_graph_lock``.
    """
    frontier = [(src, [src])]
    seen = {src}
    while frontier:
        node, path = frontier.pop()
        for successor in sorted(_order_edges.get(node, ())):
            if successor == dst:
                return path + [dst]
            if successor not in seen:
                seen.add(successor)
                frontier.append((successor, path + [successor]))
    return None


def _check_order(name: str) -> None:
    """Record held->name edges; raise before a cycle-closing acquire."""
    held = [h for h in dict.fromkeys(_held_stack()) if h != name]
    if not held:
        return
    with _graph_lock:
        # Detect before recording: a refused acquisition must not leave
        # its cycle-closing edge behind, or the *valid* ordering would
        # trip the watchdog forever after.
        for outer in held:
            path = _path_between(name, outer)
            if path is not None:
                chain = " -> ".join([outer] + path)
                raise LockOrderError(
                    f"acquiring '{name}' while holding '{outer}' closes "
                    f"the lock-order cycle {chain}; this ordering can "
                    f"deadlock")
        for outer in held:
            _order_edges.setdefault(outer, set()).add(name)


def _note_acquired(name: str) -> None:
    _held_stack().append(name)


def _note_released(name: str) -> None:
    stack = _held_stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index] == name:
            del stack[index]
            return


# ---------------------------------------------------------------------------
# Watched locks
# ---------------------------------------------------------------------------

class WatchedLock:
    """A reentrant lock that knows who holds it.

    Semantics of :class:`threading.RLock`, plus
    :meth:`held_by_current_thread` (which the :func:`guarded_by`
    runtime check uses) and, in assert mode, participation in the
    lock-order watchdog.
    """

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self._lock = threading.RLock()
        self._owner: Optional[int] = None
        self._count = 0

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        if _assert_mode and self._owner != threading.get_ident():
            _check_order(self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._count += 1
            _note_acquired(self.name)
        return acquired

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise RuntimeError(
                f"release of WatchedLock '{self.name}' by a thread "
                f"that does not hold it")
        self._count -= 1
        if self._count == 0:
            self._owner = None
        _note_released(self.name)
        self._lock.release()

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    # threading.Condition compatibility (also lets a WatchedLock back a
    # plain stdlib Condition if ever needed)
    def _is_owned(self) -> bool:
        return self.held_by_current_thread()

    def __enter__(self) -> "WatchedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = self._owner if self._owner is not None else "nobody"
        return f"<WatchedLock {self.name!r} held by {owner}>"


class WatchedCondition:
    """A condition variable over a watched (reentrant) lock.

    The subset of :class:`threading.Condition` the repository uses —
    ``acquire``/``release``/context manager, ``wait``, ``notify``,
    ``notify_all`` — with ownership tracking that stays correct across
    ``wait()`` (which releases the lock while blocked).
    """

    def __init__(self, name: str = "condition") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._owner: Optional[int] = None
        self._count = 0

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        if _assert_mode and self._owner != threading.get_ident():
            _check_order(self.name)
        acquired = self._cond.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._count += 1
            _note_acquired(self.name)
        return acquired

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise RuntimeError(
                f"release of WatchedCondition '{self.name}' by a "
                f"thread that does not hold it")
        self._count -= 1
        if self._count == 0:
            self._owner = None
        _note_released(self.name)
        self._cond.release()

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    def _is_owned(self) -> bool:
        return self.held_by_current_thread()

    def wait(self, timeout: Optional[float] = None) -> bool:
        if self._owner != threading.get_ident():
            raise RuntimeError(
                f"wait() on WatchedCondition '{self.name}' without "
                f"holding it")
        owner, count = self._owner, self._count
        # The underlying Condition releases every recursion level while
        # blocked; mirror that in the ownership bookkeeping first (we
        # still hold the lock here, so no other thread can race these
        # writes).
        self._owner, self._count = None, 0
        for _ in range(count):
            _note_released(self.name)
        try:
            return self._cond.wait(timeout)
        finally:
            self._owner, self._count = owner, count
            for _ in range(count):
                _note_acquired(self.name)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __enter__(self) -> "WatchedCondition":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = self._owner if self._owner is not None else "nobody"
        return f"<WatchedCondition {self.name!r} held by {owner}>"


# ---------------------------------------------------------------------------
# Guarded attributes
# ---------------------------------------------------------------------------

class GuardedAttribute:
    """Class-level marker + runtime check for a lock-guarded attribute.

    A data descriptor storing the value in the instance ``__dict__``
    under its own name.  Outside assert mode it is a transparent
    proxy; in assert mode every access (every write for
    ``writes_only``) verifies the declared lock is held by the calling
    thread.  The very first assignment — construction — is exempt: the
    object cannot be shared before its initializer returns it.
    """

    __slots__ = ("lock_attr", "writes_only", "name")

    def __init__(self, lock_attr: str, *,
                 writes_only: bool = False) -> None:
        self.lock_attr = lock_attr
        self.writes_only = writes_only
        self.name = ""

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def _check(self, obj: Any, op: str) -> None:
        lock = getattr(obj, self.lock_attr, None)
        if lock is None:
            return  # object still under construction, lock not built
        probe = getattr(lock, "held_by_current_thread", None)
        if probe is None:
            probe = getattr(lock, "_is_owned", None)  # stdlib RLock
            if probe is None:
                return  # a plain Lock: ownership is unknowable
        if not probe():
            raise GuardViolation(
                f"{type(obj).__name__}.{self.name} {op} without "
                f"holding self.{self.lock_attr} (declared "
                f"guarded_by({self.lock_attr!r}))")

    def __get__(self, obj: Any, objtype: Optional[type] = None) -> Any:
        if obj is None:
            return self
        if _assert_mode and not self.writes_only:
            self._check(obj, "read")
        try:
            return obj.__dict__[self.name]
        except KeyError:
            raise AttributeError(
                f"{type(obj).__name__!r} object has no attribute "
                f"{self.name!r}") from None

    def __set__(self, obj: Any, value: Any) -> None:
        if _assert_mode and self.name in obj.__dict__:
            self._check(obj, "write")
        obj.__dict__[self.name] = value

    def __delete__(self, obj: Any) -> None:
        if _assert_mode:
            self._check(obj, "delete")
        try:
            del obj.__dict__[self.name]
        except KeyError:
            raise AttributeError(
                f"{type(obj).__name__!r} object has no attribute "
                f"{self.name!r}") from None


def guarded_by(lock_attr: str, *, writes_only: bool = False) -> Any:
    """Declare that this attribute is only touched under a lock.

    Use at class level, normally with the type annotation carrying the
    real value type::

        class Broker:
            _fleets: dict[str, Fleet] = guarded_by("_cond")

    Returns :class:`GuardedAttribute` (typed ``Any`` so the annotation
    above typechecks).  ``writes_only=True`` keeps the runtime check
    for rebinding writes but allows lock-free reads — for counters and
    stats objects whose binding never changes after ``__init__`` and
    which outside observers may read racily by design.
    """
    return GuardedAttribute(lock_attr, writes_only=writes_only)


def declared_guards(cls: type) -> dict[str, str]:
    """``{attribute: lock attribute}`` declared across a class's MRO."""
    guards: dict[str, str] = {}
    for klass in reversed(cls.__mro__):
        for key, value in vars(klass).items():
            if isinstance(value, GuardedAttribute):
                guards[key] = value.lock_attr
    return guards
