"""Discrete-event simulation kernel.

A from-scratch, dependency-free replacement for the subset of ``simpy``
this project needs.  The design is the classic event-heap + generator
coroutine pattern:

* :class:`Simulator` owns the clock and a binary heap of scheduled events.
* :class:`Event` is a one-shot signal with callbacks; :class:`Timeout`
  is an event scheduled at ``now + delay``.
* :class:`Process` wraps a Python generator.  The generator *yields*
  events; when a yielded event fires, the process resumes with the event's
  value (or the event's exception is thrown into it).

Determinism: ties in the heap are broken by insertion order (a
monotonically increasing sequence number), so two runs of the same model
with the same seeds produce identical event orderings.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, bad yields, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a handover event preempting an in-flight request).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* -> (*succeed* | *fail*) -> callbacks run exactly
    once, in registration order.  Late subscribers to an already-processed
    event are invoked immediately at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "name")

    #: Sentinel for "not yet triggered".
    _PENDING = object()

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._processed = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event payload (or exception, if it failed)."""
        if self._value is Event._PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._schedule_now(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on this event will have ``exception`` thrown
        into it at its yield point.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = exception
        self._ok = False
        self.sim._schedule_now(self)
        return self

    # -- internal -----------------------------------------------------------

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; fires immediately if processed."""
        if self._processed:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        self._value = value
        self._ok = True
        sim._schedule_at(sim.now + delay, self)


class Process(Event):
    """A running coroutine; also an event that fires when it terminates.

    The wrapped generator yields :class:`Event` instances.  The process's
    own event payload is the generator's return value (``StopIteration``
    value).  If the generator raises, the process *fails* with that
    exception, propagating to any process waiting on it.
    """

    __slots__ = ("generator", "_target", "_interrupts")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=name or getattr(
            generator, "__name__", "process"))
        self.generator = generator
        self._target: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        # Bootstrap: resume on the next scheduling round.
        init = Event(sim, name=f"init({self.name})")
        init.subscribe(self._resume)
        init._value = None
        init._ok = True
        sim._schedule_now(init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process is an error; interrupting a process
        that is waiting detaches it from its wait target (the target event
        may still fire later; the process just no longer listens).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        self._interrupts.append(Interrupt(cause))
        wake = Event(self.sim, name=f"interrupt({self.name})")
        wake.subscribe(self._resume)
        wake._value = None
        wake._ok = True
        self.sim._schedule_now(wake)

    # -- coroutine driving ----------------------------------------------

    def _resume(self, trigger: Event) -> None:
        if self.triggered:          # already terminated (e.g. interrupted)
            return
        # An event we stopped listening to (due to interrupt) may still
        # call back; ignore stale wakeups.
        if self._target is not None and trigger is not self._target \
                and not self._interrupts:
            return
        self._target = None
        while True:
            try:
                if self._interrupts:
                    exc = self._interrupts.pop(0)
                    target = self.generator.throw(exc)
                elif not trigger._ok:
                    target = self.generator.throw(trigger.value)
                else:
                    target = self.generator.send(
                        None if trigger is None else trigger.value)
            except StopIteration as stop:
                self._value = stop.value
                self._ok = True
                self.sim._schedule_now(self)
                return
            except Interrupt as exc:
                # Generator did not catch the interrupt: treat as failure.
                self._value = exc
                self._ok = False
                self.sim._schedule_now(self)
                return
            except BaseException as exc:
                self._value = exc
                self._ok = False
                self.sim._schedule_now(self)
                return
            if not isinstance(target, Event):
                err = SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event instances")
                self.generator.close()
                self._value = err
                self._ok = False
                self.sim._schedule_now(self)
                return
            if target.sim is not self.sim:
                raise SimulationError(
                    "process yielded an event from a different Simulator")
            if target._processed:
                # Already fired: loop immediately with its value.
                trigger = target
                continue
            self._target = target
            target.subscribe(self._resume)
            return


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError(
                    "condition mixes events from different simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
        else:
            for ev in self.events:
                ev.subscribe(self._check)

    def _check(self, ev: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* constituent events have fired.

    Payload: ``{event: value}`` for every constituent.  Fails fast if any
    constituent fails.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="all_of")

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})


class AnyOf(_Condition):
    """Fires when the *first* constituent event fires (value or failure)."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="any_of")

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev.value)
        else:
            self.succeed({ev: ev.value})


class Simulator:
    """Event loop: a clock plus a time-ordered heap of pending events."""

    def __init__(self, start_time: float = 0.0):
        self.now: float = float(start_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0          # insertion counter for deterministic ties
        self._event_count = 0  # total events processed (introspection)

    # -- scheduling -----------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < {self.now})")
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event))

    def _schedule_now(self, event: Event) -> None:
        self._schedule_at(self.now, event)

    # -- public factory helpers ------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Start a coroutine process; returns its completion event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first given event fires."""
        return AnyOf(self, events)

    # -- execution --------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Number of events processed since construction."""
        return self._event_count

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _, event = heapq.heappop(self._heap)
        self.now = when
        self._event_count += 1
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule empties or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if no event fires there, mirroring simpy semantics.
        """
        if until is not None:
            if until < self.now:
                raise SimulationError(
                    f"run(until={until}) is in the past (now={self.now})")
            while self._heap and self._heap[0][0] <= until:
                self.step()
            self.now = until
        else:
            while self._heap:
                self.step()

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: str = "") -> Any:
        """Convenience: start ``generator``, run to completion, return its value.

        Re-raises the process's exception if it failed.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} never finished (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
