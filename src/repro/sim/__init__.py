"""Discrete-event simulation kernel (simpy-like, dependency-free).

Public surface:

* :class:`~repro.sim.engine.Simulator` and the event/process machinery,
* :mod:`~repro.sim.resources` shared-resource primitives,
* :class:`~repro.sim.rng.RngRegistry` deterministic random streams,
* :mod:`~repro.sim.monitor` measurement collectors.
"""


from __future__ import annotations

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .monitor import SeriesMonitor, SummaryStats, TimeWeightedMonitor
from .resources import Container, PriorityResource, Request, Resource, Store
from .rng import RngRegistry, stable_seed

__all__ = [
    "Simulator", "Event", "Timeout", "Process", "AllOf", "AnyOf",
    "Interrupt", "SimulationError",
    "Resource", "PriorityResource", "Request", "Store", "Container",
    "RngRegistry", "stable_seed",
    "SeriesMonitor", "TimeWeightedMonitor", "SummaryStats",
]
