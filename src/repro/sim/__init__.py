"""Discrete-event simulation kernel (simpy-like, dependency-free).

Public surface:

* :class:`~repro.sim.engine.Simulator` and the event/process machinery,
* :mod:`~repro.sim.resources` shared-resource primitives,
* :class:`~repro.sim.rng.RngRegistry` deterministic random streams,
* :mod:`~repro.sim.monitor` measurement collectors,
* :mod:`~repro.sim.sync` thread-safety contracts (guarded attributes,
  watched locks, lock-order watchdog).
"""


from __future__ import annotations

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .monitor import SeriesMonitor, SummaryStats, TimeWeightedMonitor
from .resources import Container, PriorityResource, Request, Resource, Store
from .rng import RngRegistry, stable_seed
from .sync import (
    GuardViolation,
    LockOrderError,
    SyncContractError,
    WatchedCondition,
    WatchedLock,
    guarded_by,
)

__all__ = [
    "Simulator", "Event", "Timeout", "Process", "AllOf", "AnyOf",
    "Interrupt", "SimulationError",
    "Resource", "PriorityResource", "Request", "Store", "Container",
    "RngRegistry", "stable_seed",
    "SeriesMonitor", "TimeWeightedMonitor", "SummaryStats",
    "guarded_by", "WatchedLock", "WatchedCondition",
    "SyncContractError", "GuardViolation", "LockOrderError",
]
