"""Deterministic random-number streams.

Every stochastic model component (radio channel, scheduler jitter, router
queueing, mobility, ...) draws from its *own named stream*, derived from a
single root seed via :class:`numpy.random.SeedSequence` spawning.  This
gives two properties the evaluation depends on:

* **Bit-reproducibility** — the same root seed reproduces the entire
  measurement campaign exactly (required to assert on Fig. 2/3 values in
  tests).
* **Insensitivity to call ordering across components** — adding an extra
  draw in the mobility model does not shift the channel model's stream,
  so calibrated per-cell anchors stay put while unrelated code evolves.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator

import numpy as np

__all__ = ["RngRegistry", "stable_seed"]


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from arbitrary labelled parts, stably.

    Python's ``hash`` is salted per-process for strings, so it cannot be
    used for reproducible seeding; this uses blake2b instead.
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    >>> rng = RngRegistry(seed=42)
    >>> chan = rng.stream("ran.channel", "cell", "C1")
    >>> chan.normal()  # doctest: +SKIP

    The same ``(root seed, name parts)`` pair always yields a generator
    producing the same sequence, independent of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[tuple[str, ...], np.random.Generator] = {}

    def stream(self, *name_parts: object) -> np.random.Generator:
        """Return the (cached) generator for the given hierarchical name."""
        if not name_parts:
            raise ValueError("stream name must be non-empty")
        key = tuple(str(p) for p in name_parts)
        gen = self._streams.get(key)
        if gen is None:
            child_seed = stable_seed(self.seed, *key)
            gen = np.random.Generator(np.random.PCG64(child_seed))
            self._streams[key] = gen
        return gen

    def fresh(self, *name_parts: object) -> np.random.Generator:
        """Like :meth:`stream` but always returns a *rewound* generator.

        Useful in tests to compare two identical sequences.
        """
        key = tuple(str(p) for p in name_parts)
        child_seed = stable_seed(self.seed, *key)
        return np.random.Generator(np.random.PCG64(child_seed))

    def spawn(self, *name_parts: object) -> "RngRegistry":
        """Derive a child registry with an independent seed namespace."""
        return RngRegistry(stable_seed(self.seed, "spawn", *name_parts))

    def __iter__(self) -> Iterator[tuple[str, ...]]:
        return iter(sorted(self._streams))

    def __len__(self) -> int:
        return len(self._streams)

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngRegistry(seed={self.seed}, streams={len(self)})"
