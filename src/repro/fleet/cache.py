"""Content-addressed result cache + the caching executor wrapper.

A :class:`~repro.fleet.sweep.RunRecord` is a pure function of
``(spec, seed, density)``, so those inputs *are* the cache key:
:func:`run_key` hashes their canonical JSON (sorted keys, compact
separators — see :func:`canonical_dumps`) into a SHA-256 digest, and
:class:`ResultCache` stores one record per digest on disk::

    <cache>/
      objects/
        <key[:2]>/
          <key>.json   # {"key", "payload_sha256", "record"}

Each entry carries a second digest over the record payload itself, so
a corrupted or half-written entry is detected on read, dropped, and
transparently recomputed.  :class:`CachingExecutor` wraps any
:class:`~repro.fleet.executors.Executor` with read-through/write-back
semantics: hits return in zero compute, misses flow to the inner
backend and are stored on the way out.  Because the key ignores
sweep-local metadata (``run_id``, variant labels), records cached by
one sweep serve any other sweep that reaches the same
``(spec, seed, density)``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from concurrent.futures import Future
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from ..sim.sync import WatchedLock, guarded_by
from .executors import Executor, RunOutcome
# canonical_dumps/run_key moved to .sweep (they define run identity,
# not just cache addressing); re-exported here for compatibility.
from .sweep import RunRecord, RunSpec, canonical_dumps, run_key

__all__ = [
    "CacheStats",
    "CachingExecutor",
    "ResultCache",
    "canonical_dumps",
    "rebind_record",
    "run_key",
]

OBJECTS_DIR = "objects"

#: Staging files older than this are considered abandoned by a crashed
#: writer and swept opportunistically on the next ``put`` nearby.
ORPHAN_TMP_TTL_S = 3600.0


def _payload_sha256(record_dict: Mapping[str, Any]) -> str:
    return hashlib.sha256(canonical_dumps(record_dict).encode()).hexdigest()


def rebind_record(record: RunRecord, run: RunSpec, key: str) -> RunRecord:
    """A cached record re-labelled for one sweep's bookkeeping.

    The summary is content-addressed; ``run_id`` and variant labels
    are sweep-local metadata, so a record cached by one sweep slots
    into any other that reaches the same key.  Entries written by
    pre-``spec_key`` caches get the digest stamped on the way out —
    it *is* the key they were stored under.
    """
    if (record.run_id == run.run_id and record.variant == run.variant
            and record.spec_key == key):
        return record
    return replace(record, run_id=run.run_id, variant=run.variant,
                   spec_key=key)


@dataclass
class CacheStats:
    """Live counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def to_dict(self) -> dict[str, int]:
        """Plain counters — what the service's ``/healthz`` embeds."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt}


class ResultCache:
    """One on-disk content-addressed store of run records.

    Thread-safe: every entry is written via a unique staging file and
    an atomic rename, so readers on other threads (or processes) see
    whole entries or nothing; the in-process stats counters are the
    only shared mutable state and are lock-guarded (external readers
    may read them lock-free — ``writes_only`` — a racy stats snapshot
    is by design).
    """

    stats: CacheStats = guarded_by("_lock", writes_only=True)

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._lock = WatchedLock("result-cache")
        self.stats = CacheStats()

    def key_for(self, run: RunSpec) -> str:
        return run.spec_key()

    def path_for(self, key: str) -> Path:
        return self.directory / OBJECTS_DIR / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunRecord]:
        """The cached record, or ``None`` on miss *or* corruption.

        A corrupt entry (unparseable, wrong shape, or payload digest
        mismatch) is deleted so the caller's recompute can overwrite it
        cleanly.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
            if _payload_sha256(entry["record"]) != entry["payload_sha256"]:
                raise ValueError("payload digest mismatch")
            record = RunRecord.from_dict(entry["record"])
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except (KeyError, TypeError, ValueError):
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        with self._lock:
            self.stats.hits += 1
        return record

    def put(self, key: str, record: RunRecord) -> Path:
        """Store one record under its key; atomic against readers.

        The staging name is unique per writer (pid + random suffix),
        so concurrent processes sharing one cache never interleave
        writes into the same temp file — last rename wins with a whole
        entry either way.  Staging files abandoned by a crashed writer
        are swept from the shard opportunistically once they age past
        :data:`ORPHAN_TMP_TTL_S`.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record_dict = record.to_dict()
        entry = {"key": key,
                 "payload_sha256": _payload_sha256(record_dict),
                 "record": record_dict}
        staging = path.parent / (
            f".{path.name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp")
        staging.write_text(json.dumps(entry, indent=2) + "\n")
        staging.replace(path)
        with self._lock:
            self.stats.stores += 1
        self.sweep_orphans(directory=path.parent)
        return path

    def sweep_orphans(self, *, max_age_s: float = ORPHAN_TMP_TTL_S,
                      directory: Optional[Path] = None) -> int:
        """Delete staging files older than ``max_age_s``; returns the
        count removed.

        ``directory`` limits the sweep to one shard (the cheap,
        opportunistic form ``put`` uses); by default the whole object
        tree is walked.  Races with live writers are harmless: a
        missing file is simply skipped.
        """
        root = (directory if directory is not None
                else self.directory / OBJECTS_DIR)
        if not root.is_dir():
            return 0
        now = time.time()
        removed = 0
        for staging in root.rglob("*.tmp"):
            try:
                if now - staging.stat().st_mtime >= max_age_s:
                    staging.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def iter_records(self) -> Iterator[RunRecord]:
        """Every intact record in the store, in digest order.

        Corrupt entries are skipped (not deleted — unlike :meth:`get`,
        iteration has no recompute to hand them to).
        """
        objects = self.directory / OBJECTS_DIR
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.json")):
            try:
                entry = json.loads(path.read_text())
                if _payload_sha256(entry["record"]) != \
                        entry["payload_sha256"]:
                    continue
                yield RunRecord.from_dict(entry["record"])
            except (KeyError, OSError, TypeError, ValueError):
                continue

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        objects = self.directory / OBJECTS_DIR
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))


class CachingExecutor:
    """Read-through, write-back cache over any executor backend."""

    def __init__(self, inner: Executor,
                 cache: Union[ResultCache, str, Path]) -> None:
        self.inner = inner
        self.cache = (cache if isinstance(cache, ResultCache)
                      else ResultCache(cache))

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def jobs(self) -> int:
        return getattr(self.inner, "jobs", 1)

    #: shared with the fleet service broker, which prefills submitted
    #: fleets from the same cache
    _rebind = staticmethod(rebind_record)

    def submit(self, run: RunSpec) -> "Future[RunOutcome]":
        key = self.cache.key_for(run)
        record = self.cache.get(key)
        if record is not None:
            future: "Future[RunOutcome]" = Future()
            future.set_result(
                RunOutcome(record=self._rebind(record, run, key),
                           wall_s=0.0, cached=True))
            return future
        inner_future = self.inner.submit(run)
        outer: "Future[RunOutcome]" = Future()

        def _store(done: "Future[RunOutcome]") -> None:
            # Any failure here — the run's own error, cancellation, an
            # unwritable cache — must land on the outer future, or
            # callers of ``result()`` would block forever.
            try:
                outcome = done.result()
                self.cache.put(key, outcome.record)
                outer.set_result(outcome)
            except BaseException as exc:
                outer.set_exception(exc)

        inner_future.add_done_callback(_store)
        return outer

    def map(self, runs: Sequence[RunSpec]) -> Iterator[RunOutcome]:
        runs = list(runs)
        keys = [self.cache.key_for(run) for run in runs]
        hits: dict[int, RunRecord] = {}
        miss_indices: list[int] = []
        for index, key in enumerate(keys):
            record = self.cache.get(key)
            if record is None:
                miss_indices.append(index)
            else:
                hits[index] = record
        fresh = (self.inner.map([runs[i] for i in miss_indices])
                 if miss_indices else iter(()))
        # Miss indices are increasing and the inner backend yields in
        # submission order, so one forward walk streams both sources
        # back into expansion order.
        for index, run in enumerate(runs):
            if index in hits:
                yield RunOutcome(
                    record=self._rebind(hits[index], run, keys[index]),
                    wall_s=0.0, cached=True)
            else:
                outcome = next(fresh)
                self.cache.put(keys[index], outcome.record)
                yield outcome

    def close(self, *, cancel: bool = False) -> None:
        self.inner.close(cancel=cancel)

    def __enter__(self) -> "CachingExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
