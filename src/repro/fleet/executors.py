"""Pluggable execution backends: the seam distributed fleets plug into.

The :class:`Executor` protocol is deliberately tiny — ``submit`` one
:class:`~repro.fleet.sweep.RunSpec` for a future, ``map`` many for an
ordered stream of :class:`RunOutcome` values, ``close`` when done — so
any backend that can move a JSON-sized payload can implement it: the
three shipped here (in-process serial, process pool, thread pool), a
result cache wrapping any of them
(:class:`~repro.fleet.cache.CachingExecutor`), or a future remote
worker fleet.

The unit of work is :func:`run_one` — a pure, top-level, picklable
function from ``(spec JSON, seed, density)`` to a
:class:`~repro.fleet.sweep.RunRecord`.  Nothing heavyweight crosses an
executor boundary: workers receive a plain ``RunSpec`` dict and return
a plain outcome dict, so the pool backends ship only JSON-sized
payloads while the compiled world and raw dataset die with the worker.

Determinism contract: a record is a function of ``(spec, seed,
density)`` alone (the scenario compiler draws every stochastic value
from per-seed named streams), so every backend yields bit-identical
records in expansion order; :mod:`tests.test_fleet_executors` pins
this.  Execution metadata (wall time, cache provenance) rides on the
:class:`RunOutcome` envelope, never on the record itself.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor as _StdlibExecutor
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..core.evaluation import InfrastructureEvaluation
from ..scenarios.spec import ScenarioSpec
from .compiled import CompiledScenarioCache
from .sweep import RunRecord, RunSpec, run_key

if TYPE_CHECKING:   # import cycle: repro.service imports the fleet layer
    from ..service.retry import RetryPolicy

__all__ = [
    "BACKENDS",
    "BatchExecutor",
    "Executor",
    "ProcessPoolBackend",
    "RemoteExecutor",
    "RunOutcome",
    "SerialExecutor",
    "ThreadedExecutor",
    "execute_run",
    "make_executor",
    "run_one",
]


def run_one(spec_json: str, seed: int, density: float = 6.0, *,
            run_id: str = "",
            variant: Sequence[tuple[str, Any]] = ()) -> RunRecord:
    """Evaluate one scenario at one seed; return its summary record.

    Top-level and argument-pure so it pickles into worker processes:
    the spec travels as JSON, the result as plain values.  The record
    is stamped with the :func:`~repro.fleet.sweep.run_key` digest of
    its inputs (``spec_key``) — the content identity that resume and
    cross-fleet comparison verify against; the fallback ``run_id``
    embeds its prefix so two variants that share a scenario name and
    seed (differing only in overrides) never collide.
    """
    spec = ScenarioSpec.from_json(spec_json)
    spec_key = run_key(spec, seed, density)
    if not run_id:
        run_id = f"{spec.name}-s{seed}-{spec_key[:8]}"
    result = InfrastructureEvaluation(
        seed=seed, mean_positions_per_cell=density, scenario=spec).run()
    return RunRecord(
        run_id=run_id,
        scenario=spec.name,
        seed=seed,
        density=density,
        variant=tuple(variant),
        summary=result.summary(),
        spec_key=spec_key,
    )


@dataclass(frozen=True)
class RunOutcome:
    """One finished run plus execution metadata.

    ``wall_s`` and ``cached`` describe *this* execution, so they live
    here on the envelope — the :class:`RunRecord` stays a pure function
    of ``(spec, seed, density)`` and compares bit-identical across
    backends, reruns, and cache hits.
    """

    record: RunRecord
    wall_s: float
    cached: bool = False


def execute_run(run_dict: Mapping[str, Any]) -> dict[str, Any]:
    """Worker entry point: RunSpec dict in, timed outcome dict out."""
    run = RunSpec.from_dict(run_dict)
    started = time.perf_counter()
    record = run_one(run.scenario.to_json(indent=0), run.seed,
                     run.density, run_id=run.run_id, variant=run.variant)
    return {"record": record.to_dict(),
            "wall_s": time.perf_counter() - started}


def _outcome(payload: Mapping[str, Any]) -> RunOutcome:
    return RunOutcome(record=RunRecord.from_dict(payload["record"]),
                      wall_s=payload["wall_s"],
                      cached=bool(payload.get("cached", False)))


@runtime_checkable
class Executor(Protocol):
    """What :func:`~repro.fleet.runner.run_sweep` needs from a backend.

    ``map`` must yield outcomes in the order the runs were given —
    callers rely on expansion order for progress, persistence, and
    bit-identical record lists across backends.
    """

    name: str

    def submit(self, run: RunSpec) -> "Future[RunOutcome]":
        """Schedule one run; the future resolves to its outcome."""
        ...

    def map(self, runs: Sequence[RunSpec]) -> Iterator[RunOutcome]:
        """Execute every run, yielding outcomes in input order."""
        ...

    def close(self, *, cancel: bool = False) -> None:
        """Release workers; ``cancel`` drops runs not yet started."""
        ...


class SerialExecutor:
    """In-process, one run at a time — the ``jobs=1`` behavior."""

    name = "serial"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = 1  # serial by definition; ``jobs`` accepted for symmetry

    def submit(self, run: RunSpec) -> "Future[RunOutcome]":
        future: "Future[RunOutcome]" = Future()
        try:
            future.set_result(_outcome(execute_run(run.to_dict())))
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def map(self, runs: Sequence[RunSpec]) -> Iterator[RunOutcome]:
        for run in runs:
            yield _outcome(execute_run(run.to_dict()))

    def close(self, *, cancel: bool = False) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class BatchExecutor:
    """In-process execution through the compiled-scenario cache.

    The two-phase backend (and the ``jobs=1`` default): runs are
    grouped by :meth:`~repro.fleet.sweep.RunSpec.build_key`, each group
    compiles its world once (or pulls it from the cache), and every
    member replays only the sampling phase — sharing bit-identical
    per-cell RTT blocks through one per-group block cache.  A
    campaign-only sweep of any width performs exactly one build.

    Records are bit-identical to :class:`SerialExecutor` output (the
    compiled-scenario equivalence suite pins this), and ``map`` still
    yields them in input order: outcomes are computed group by group
    and buffered until their turn.

    The compiled cache may be shared — it is internally synchronized
    (see :class:`~repro.fleet.compiled.CompiledScenarioCache`), which
    is how the fleet service points many broker threads and the GC
    chore at one instance.
    """

    name = "batch"

    def __init__(self, jobs: int = 1, *,
                 compiled: Optional[CompiledScenarioCache] = None) -> None:
        self.jobs = 1  # in-process; ``jobs`` accepted for symmetry
        self.compiled = compiled if compiled is not None \
            else CompiledScenarioCache()

    def _evaluate(self, run: RunSpec, compiled: Any,
                  block_cache: dict[Any, Any]) -> RunOutcome:
        started = time.perf_counter()
        summary = compiled.evaluate(run.scenario, block_cache=block_cache,
                                    check_key=False)
        record = RunRecord(
            run_id=run.run_id,
            scenario=run.scenario.name,
            seed=run.seed,
            density=run.density,
            variant=run.variant,
            summary=summary,
            spec_key=run.spec_key(),
        )
        return RunOutcome(record=record,
                          wall_s=time.perf_counter() - started)

    def submit(self, run: RunSpec) -> "Future[RunOutcome]":
        future: "Future[RunOutcome]" = Future()
        try:
            outcome, = self.map([run])
            future.set_result(outcome)
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def map(self, runs: Sequence[RunSpec]) -> Iterator[RunOutcome]:
        runs = list(runs)
        # Group in first-encounter order; seeds iterate innermost in
        # sweep expansion, so groups interleave and outcomes must be
        # buffered to preserve input order.
        group_order: list[str] = []
        groups: dict[str, list[tuple[int, RunSpec]]] = {}
        for index, run in enumerate(runs):
            key = run.build_key()
            members = groups.get(key)
            if members is None:
                members = groups[key] = []
                group_order.append(key)
            members.append((index, run))
        pending: dict[int, RunOutcome] = {}
        next_index = 0
        for key in group_order:
            block_cache: dict[Any, Any] = {}
            for index, run in groups[key]:
                # Per-run lookup so the cache counters tell the true
                # story (1 build + N-1 reuses for an N-run group); all
                # but the first are in-memory hits.
                compiled = self.compiled.get(
                    run.scenario, run.seed, run.density, key=key)
                pending[index] = self._evaluate(run, compiled, block_cache)
                while next_index in pending:
                    yield pending.pop(next_index)
                    next_index += 1

    def close(self, *, cancel: bool = False) -> None:
        # Drop the live compiled worlds; the disk tier (if any) stays.
        self.compiled.clear()

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _PoolBackend:
    """Shared submit/map plumbing over a ``concurrent.futures`` pool.

    The pool is created lazily at first use — sized to the work for
    ``map``, to ``jobs`` for ``submit`` — and torn down by ``close``.
    """

    name = "pool"

    def __init__(self, jobs: int = 2) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: Optional[_StdlibExecutor] = None

    def _make_pool(self, width: int) -> _StdlibExecutor:
        raise NotImplementedError

    def _ensure_pool(self) -> _StdlibExecutor:
        # Always sized to ``jobs``: both pool kinds start workers on
        # demand, so a small first sweep costs nothing extra and a big
        # later one still gets the full width.
        if self._pool is None:
            self._pool = self._make_pool(self.jobs)
        return self._pool

    def submit(self, run: RunSpec) -> "Future[RunOutcome]":
        inner = self._ensure_pool().submit(execute_run, run.to_dict())
        outer: "Future[RunOutcome]" = Future()

        def _transfer(done: "Future[dict[str, Any]]") -> None:
            # Everything — the run's own error, cancellation, a decode
            # failure — must land on the outer future, or callers of
            # ``result()`` would block forever.
            try:
                outer.set_result(_outcome(done.result()))
            except BaseException as exc:
                outer.set_exception(exc)

        inner.add_done_callback(_transfer)
        return outer

    def map(self, runs: Sequence[RunSpec]) -> Iterator[RunOutcome]:
        runs = list(runs)
        if not runs:
            return
        for payload in self._ensure_pool().map(
                execute_run, [run.to_dict() for run in runs]):
            yield _outcome(payload)

    def close(self, *, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=cancel)
            self._pool = None

    def __enter__(self) -> "_PoolBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ProcessPoolBackend(_PoolBackend):
    """Fan out over worker processes — the ``jobs=N`` behavior.

    Payloads cross the boundary as plain dicts, so records are
    bit-identical to :class:`SerialExecutor` output.
    """

    name = "process"

    def _make_pool(self, width: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=width)


class ThreadedExecutor(_PoolBackend):
    """Fan out over threads, sharing the interpreter.

    Right for IO-light sweeps and remote-worker shims where runs spend
    their time waiting, and as the cheap-startup option when process
    spawn cost would dominate a small fleet.  Safe because ``run_one``
    shares no mutable state between runs.
    """

    name = "thread"

    def _make_pool(self, width: int) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=width)


class RemoteExecutor:
    """Ship runs to a ``repro serve`` fleet service over HTTP.

    The distributed backend: ``map`` submits the expanded runs as one
    fleet (``POST /fleets`` with a run list), remote ``repro worker``
    processes lease and evaluate them, and outcomes stream back — in
    input order — by polling the fleet's record endpoint.  Worker
    loss is invisible here: the broker re-queues expired leases and
    deduplicates results by content identity, so this side only ever
    sees each run finish once.  Records are bit-identical to local
    backends (the worker runs the same compiled/batch path), and the
    server's shared cache means a run any client ever submitted is
    returned without recompute.

    Fault tolerance: every request runs under the shared service
    retry policy, so a server restart or transient connection loss
    mid-campaign is absorbed by backoff instead of aborting the sweep
    — the submission carries an idempotency key (retrying it can
    never double-submit) and the polling loop picks up exactly where
    the recovered server's journal left the fleet.

    ``jobs`` is advisory — real parallelism is however many workers
    are attached to the server.
    """

    name = "remote"

    def __init__(self, jobs: int = 1, *, server: str = "",
                 poll_s: float = 0.2, timeout_s: float = 60.0,
                 retry: Optional["RetryPolicy"] = None) -> None:
        if not server:
            raise ValueError(
                "remote backend needs server='http://host:port' "
                "(a running `python -m repro serve`)")
        # Deferred import: repro.service imports the fleet layer, so
        # a module-level import here would be a cycle.
        from ..service.client import ServiceClient
        from ..service.retry import RetryPolicy

        self.jobs = max(1, jobs)
        self.server = server
        self.poll_s = poll_s
        if retry is None:
            retry = RetryPolicy(max_attempts=8, base_delay_s=0.2,
                                max_delay_s=5.0, timeout_s=timeout_s)
        self._client = ServiceClient(server, timeout_s=timeout_s,
                                     retry=retry)

    def submit(self, run: RunSpec) -> "Future[RunOutcome]":
        future: "Future[RunOutcome]" = Future()
        try:
            outcome, = self.map([run])
            future.set_result(outcome)
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def map(self, runs: Sequence[RunSpec]) -> Iterator[RunOutcome]:
        runs = list(runs)
        if not runs:
            return
        ack = self._client.submit_runs([run.to_dict() for run in runs])
        next_index = 0
        while next_index < len(runs):
            slots, _ = self._client.slots(ack.fleet_id,
                                          since=next_index)
            yielded = 0
            for slot in slots:
                # Outcomes must stream in input order, so only the
                # done-prefix is consumed; later finishers wait.
                if slot["state"] != "done" or slot["record"] is None:
                    break
                yield RunOutcome(
                    record=RunRecord.from_dict(slot["record"]),
                    wall_s=float(slot["wall_s"]),
                    cached=bool(slot["cached"]))
                yielded += 1
            next_index += yielded
            if next_index < len(runs) and yielded == 0:
                time.sleep(self.poll_s)

    def close(self, *, cancel: bool = False) -> None:
        # Leases self-expire server-side; nothing to release here.
        pass

    def __enter__(self) -> "RemoteExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Backend registry keyed by CLI name
#: (``--backend serial|batch|process|thread|remote``).
BACKENDS: dict[str, Callable[..., "Executor"]] = {
    SerialExecutor.name: SerialExecutor,
    BatchExecutor.name: BatchExecutor,
    ProcessPoolBackend.name: ProcessPoolBackend,
    ThreadedExecutor.name: ThreadedExecutor,
    RemoteExecutor.name: RemoteExecutor,
}


def make_executor(backend: str, *, jobs: int = 1,
                  **options: Any) -> "Executor":
    """Instantiate a registered backend by name.

    ``options`` pass through to the backend constructor — the
    ``remote`` backend needs ``server="http://host:port"``; the
    in-process backends take none.
    """
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        ) from None
    try:
        return factory(jobs=jobs, **options)
    except TypeError as exc:
        raise ValueError(
            f"bad options for backend {backend!r}: {exc}") from None
