"""Fleet execution: expand a sweep and run it, serially or in parallel.

The unit of work is :func:`run_one` — a pure, top-level, picklable
function from ``(spec JSON, seed, density)`` to a
:class:`~repro.fleet.sweep.RunRecord`.  Nothing heavyweight crosses a
process boundary: workers receive a plain ``RunSpec`` dict and return a
plain ``RunRecord`` dict, so the ``ProcessPoolExecutor`` path ships
only JSON-sized payloads while the compiled world and raw dataset die
with the worker.

Determinism contract: a record is a function of ``(spec, seed,
density)`` alone (the scenario compiler draws every stochastic value
from per-seed named streams), so ``jobs=1`` and ``jobs=N`` executions
of the same sweep are bit-identical; :mod:`tests.test_fleet` pins this.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional

from ..core.evaluation import InfrastructureEvaluation
from ..scenarios.spec import ScenarioSpec
from .store import FleetResult, FleetStore
from .sweep import RunRecord, RunSpec, SweepSpec

__all__ = ["run_one", "run_sweep"]

#: Progress callback: ``(finished_count, total, record)``.
ProgressFn = Callable[[int, int, RunRecord], None]


def run_one(spec_json: str, seed: int, density: float = 6.0, *,
            run_id: str = "", variant: tuple = ()) -> RunRecord:
    """Evaluate one scenario at one seed; return its summary record.

    Top-level and argument-pure so it pickles into worker processes:
    the spec travels as JSON, the result as plain values.
    """
    spec = ScenarioSpec.from_json(spec_json)
    result = InfrastructureEvaluation(
        seed=seed, mean_positions_per_cell=density, scenario=spec).run()
    return RunRecord(
        run_id=run_id or f"{spec.name}-s{seed}",
        scenario=spec.name,
        seed=seed,
        density=density,
        variant=tuple(variant),
        summary=result.summary(),
    )


def _execute(run_dict: dict) -> dict:
    """Worker entry point: RunSpec dict in, timed RunRecord dict out."""
    run = RunSpec.from_dict(run_dict)
    started = time.perf_counter()
    record = run_one(run.scenario.to_json(indent=0), run.seed,
                     run.density, run_id=run.run_id, variant=run.variant)
    return {"record": record.to_dict(),
            "wall_s": time.perf_counter() - started}


def run_sweep(sweep: SweepSpec, *, jobs: int = 1,
              out: Optional[str] = None,
              progress: Optional[ProgressFn] = None) -> FleetResult:
    """Execute every run of ``sweep``; optionally persist to ``out``.

    ``jobs <= 1`` runs in-process; ``jobs > 1`` fans out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Results come
    back in expansion order either way.
    """
    runs = sweep.expand()
    payloads = [run.to_dict() for run in runs]
    total = len(payloads)
    records: list[RunRecord] = []
    run_wall_s: list[float] = []

    started = time.perf_counter()
    if jobs <= 1:
        outcomes = map(_execute, payloads)
    else:
        pool = ProcessPoolExecutor(max_workers=min(jobs, total))
        outcomes = pool.map(_execute, payloads)
    try:
        for outcome in outcomes:
            record = RunRecord.from_dict(outcome["record"])
            records.append(record)
            run_wall_s.append(outcome["wall_s"])
            if progress is not None:
                progress(len(records), total, record)
    finally:
        if jobs > 1:
            # Don't let queued runs burn CPU after a failure surfaces.
            pool.shutdown(cancel_futures=True)
    wall_s = time.perf_counter() - started

    result = FleetResult(sweep=sweep, records=tuple(records),
                         run_wall_s=tuple(run_wall_s),
                         wall_s=wall_s, jobs=jobs)
    if out:
        FleetStore(out).save(result)
    return result
