"""Fleet execution: expand a sweep and drive it through an executor.

:func:`run_sweep` is the orchestration loop: expand the
:class:`~repro.fleet.sweep.SweepSpec`, resolve an
:class:`~repro.fleet.executors.Executor` (by instance, by registered
backend name, or from ``jobs`` alone), optionally wrap it in a
:class:`~repro.fleet.cache.CachingExecutor`, then stream outcomes —
in expansion order — into the result, the progress callback, and the
on-disk store.  Records land on disk as they finish, so a sweep killed
halfway leaves a directory :func:`resume_sweep` (or
:meth:`~repro.fleet.store.FleetStore.resume`) completes by re-running
only the missing runs.

Determinism contract: a record is a function of ``(spec, seed,
density)`` alone, so every backend — and any mix of cold runs, cache
hits, and resumed records — produces bit-identical record lists;
:mod:`tests.test_fleet` and :mod:`tests.test_fleet_cache` pin this.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Optional, Union

from .cache import CachingExecutor, ResultCache
from .compiled import COMPILED_DIR, CompiledScenarioCache
from .executors import (
    BatchExecutor,
    Executor,
    ProcessPoolBackend,
    RunOutcome,
    make_executor,
    run_one,
)
from .store import FleetResult, FleetStore
from .sweep import RunRecord, SweepSpec, record_matches_spec

__all__ = ["ProgressFn", "resume_sweep", "run_one", "run_sweep"]

#: Progress callback: ``(finished_count, total, record)``.
ProgressFn = Callable[[int, int, RunRecord], None]

#: What ``run_sweep`` accepts as an executor: a live instance, a
#: registered backend name, or ``None`` to derive one from ``jobs``.
ExecutorLike = Union[Executor, str, None]

#: What ``run_sweep`` accepts as a cache: a live store, a directory
#: path, or ``None`` for no caching.
CacheLike = Union[ResultCache, str, Path, None]


def _compiled_cache(cache: CacheLike) -> Optional[CompiledScenarioCache]:
    """A compiled-scenario cache living next to the result cache.

    Compiled worlds land under ``<cache>/compiled/`` so one ``--cache``
    directory carries both reuse tiers; without a cache directory the
    batch executor still shares builds in-process, just not across
    invocations."""
    if cache is None:
        return None
    directory = cache.directory if isinstance(cache, ResultCache) \
        else Path(cache)
    return CompiledScenarioCache(directory / COMPILED_DIR)


def _resolve_executor(executor: ExecutorLike, jobs: int,
                      cache: CacheLike) -> tuple[Executor, bool]:
    """The concrete (possibly cache-wrapped) executor, plus whether the
    caller owns it and must close it."""
    if executor is None:
        resolved: Executor = (
            BatchExecutor(compiled=_compiled_cache(cache)) if jobs <= 1
            else ProcessPoolBackend(jobs=jobs))
        owned = True
    elif isinstance(executor, str):
        resolved = make_executor(executor, jobs=jobs)
        if isinstance(resolved, BatchExecutor):
            compiled = _compiled_cache(cache)
            if compiled is not None:
                resolved.compiled = compiled
        owned = True
    else:
        resolved = executor
        owned = False
    if cache is not None:
        resolved = CachingExecutor(resolved, cache)
    return resolved, owned


def _stats_snapshot(resolved: Executor) -> dict[str, int]:
    """Current counters of every reuse tier behind ``resolved``."""
    stats: dict[str, int] = {}
    inner = resolved.inner if isinstance(resolved, CachingExecutor) \
        else resolved
    if isinstance(resolved, CachingExecutor):
        stats["result_cache_hits"] = resolved.cache.stats.hits
        stats["result_cache_misses"] = resolved.cache.stats.misses
        # Corrupt entries detected (dropped + recomputed) — nonzero
        # means the cache healed itself; records stay bit-identical
        # either way, which the chaos suite pins.
        stats["result_cache_corrupt"] = resolved.cache.stats.corrupt
    if isinstance(inner, BatchExecutor):
        stats["builds_performed"] = inner.compiled.stats.builds
        stats["builds_reused"] = inner.compiled.stats.hits
    return stats


def _stats_delta(before: dict[str, int],
                 after: dict[str, int]) -> dict[str, int]:
    """What one sweep contributed (caches outlive sweeps)."""
    return {key: after[key] - before.get(key, 0)
            for key in sorted(after)}


def run_sweep(sweep: SweepSpec, *, jobs: int = 1,
              executor: ExecutorLike = None,
              cache: CacheLike = None,
              out: Optional[str] = None,
              progress: Optional[ProgressFn] = None) -> FleetResult:
    """Execute every run of ``sweep``; optionally persist to ``out``.

    ``executor`` selects the backend: a registered name (``"serial"``,
    ``"batch"``, ``"process"``, ``"thread"``), a live :class:`Executor`
    instance (left open for reuse), or ``None`` to pick from ``jobs`` —
    the batched two-phase executor when ``jobs <= 1``, a process pool
    otherwise.  ``cache``
    (a directory or :class:`ResultCache`) wraps the backend in a
    :class:`CachingExecutor` so already-computed runs return without
    recompute.  Results come back in expansion order either way.
    """
    runs = sweep.expand()
    total = len(runs)
    resolved, owned = _resolve_executor(executor, jobs, cache)
    stats_before = _stats_snapshot(resolved)
    store = FleetStore(out) if out else None
    if store is not None:
        store.begin(sweep, jobs=getattr(resolved, "jobs", jobs),
                    backend=resolved.name)

    records: list[RunRecord] = []
    run_wall_s: list[float] = []
    cached: list[bool] = []
    started = time.perf_counter()
    try:
        for outcome in resolved.map(runs):
            records.append(outcome.record)
            run_wall_s.append(outcome.wall_s)
            cached.append(outcome.cached)
            if store is not None:
                store.write_record(outcome.record)
            if progress is not None:
                progress(len(records), total, outcome.record)
    finally:
        if owned:
            # Don't let queued runs burn CPU after a failure surfaces.
            resolved.close(cancel=True)
    wall_s = time.perf_counter() - started

    result = FleetResult(sweep=sweep, records=tuple(records),
                         run_wall_s=tuple(run_wall_s),
                         wall_s=wall_s,
                         jobs=getattr(resolved, "jobs", jobs),
                         backend=resolved.name,
                         cached=tuple(cached),
                         exec_stats=_stats_delta(stats_before,
                                                 _stats_snapshot(resolved)))
    if store is not None:
        store.save(result, rewrite_records=False)
    return result


def resume_sweep(directory: Union[str, Path], *, jobs: int = 1,
                 executor: ExecutorLike = None,
                 cache: CacheLike = None,
                 progress: Optional[ProgressFn] = None) -> FleetResult:
    """Complete a partially-written fleet directory.

    Re-expands the manifest's sweep, keeps every on-disk record whose
    content identity verifies against its expanded run (flagged
    ``cached`` in the result, wall time carried over from the prior
    manifest where known), executes the rest, and rewrites the
    directory as a finished fleet.  A record whose ``spec_key`` (or
    legacy metadata, for digest-less v2 records) disagrees with the
    manifest's current spec — say, an axis value edited since the
    original sweep — is stale and recomputed, never silently reused.
    ``progress`` counts the re-run work: ``total`` is the number of
    missing runs.
    """
    store = FleetStore(directory)
    manifest = store.read_manifest()
    sweep = SweepSpec.from_dict(manifest["sweep"])
    runs = sweep.expand()
    existing = store.existing_records()
    prior_wall = {entry["run_id"]: entry.get("wall_s", 0.0)
                  for entry in manifest.get("runs", [])}
    reusable: dict[str, RunRecord] = {}
    missing = []
    for run in runs:
        record = existing.get(run.run_id)
        if record is not None and record_matches_spec(record, run):
            reusable[run.run_id] = record
        else:
            missing.append(run)

    resolved, owned = _resolve_executor(executor, jobs, cache)
    stats_before = _stats_snapshot(resolved)
    fresh: dict[str, RunOutcome] = {}
    started = time.perf_counter()
    try:
        for outcome in resolved.map(missing):
            fresh[outcome.record.run_id] = outcome
            store.write_record(outcome.record)
            if progress is not None:
                progress(len(fresh), len(missing), outcome.record)
    finally:
        if owned:
            resolved.close(cancel=True)
    wall_s = time.perf_counter() - started

    records: list[RunRecord] = []
    run_wall_s: list[float] = []
    cached: list[bool] = []
    for run in runs:
        if run.run_id in fresh:
            outcome = fresh[run.run_id]
            records.append(outcome.record)
            run_wall_s.append(outcome.wall_s)
            cached.append(outcome.cached)
        else:
            records.append(reusable[run.run_id])
            run_wall_s.append(prior_wall.get(run.run_id, 0.0))
            cached.append(True)

    result = FleetResult(sweep=sweep, records=tuple(records),
                         run_wall_s=tuple(run_wall_s),
                         wall_s=wall_s,
                         jobs=getattr(resolved, "jobs", jobs),
                         backend=resolved.name,
                         cached=tuple(cached),
                         exec_stats=_stats_delta(stats_before,
                                                 _stats_snapshot(resolved)))
    # Fresh records were streamed in via write_record and the reused
    # ones never left disk, so only the manifest + CSV need writing.
    store.save(result, rewrite_records=False)
    return result
