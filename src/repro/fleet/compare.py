"""Cross-fleet comparison: align record sets by content identity.

Two fleets answering the same questions should agree; when they don't,
the disagreement *is* the result — an implementation change shifted
the numbers, a base spec was edited between campaigns, or the variant
grids themselves drifted apart.  This module loads two or more record
sets (fleet directories or content-addressed result caches), aligns
them run-by-run on content identity (the ``spec_key`` digest, with the
metadata fallback for digest-less v2 records), and reduces the
differences to a per-variant delta report over the headline metrics:
mobile mean, mobile/wired factor, exceedance, detour.

Alignment is two-stage, mirroring the sweep's own decomposition:
variants pair first by their grid coordinates (scenario + axis/value
pairs), then — for variants one side renamed — by the content identity
of their member runs, so a relabelled axis compares clean instead of
reading as a grid change.  Within a paired variant, runs match by
seed and their identities are verified; ``identical_runs`` counts the
pairs whose inputs are provably the same.  Variants with coordinates
(and content) on only one side are reported as added/removed.

:meth:`FleetComparison.failures` turns the report into a CI gate:
grid drift always fails, and ``(metric, pct)`` thresholds fail any
common variant whose metric moved by more than ``pct`` percent —
``python -m repro compare A B --fail-on mobile_mean_ms:2`` exits
nonzero on regression.
"""

from __future__ import annotations

import csv
import json
import statistics as pystats
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from .cache import OBJECTS_DIR, ResultCache
from .store import MANIFEST_NAME, FleetStore
from .sweep import RunRecord

__all__ = [
    "COMPARE_METRICS",
    "FleetComparison",
    "MetricDelta",
    "RecordSet",
    "VariantDelta",
    "compare_paths",
    "compare_record_sets",
    "parse_fail_on",
    "variant_label",
]

#: The comparable headline metrics: name -> extractor over one record.
COMPARE_METRICS: dict[str, Callable[[RunRecord], float]] = {
    "mobile_mean_ms": lambda r: r.summary.gap.mobile_mean_s * 1e3,
    "mobile_wired_factor": lambda r: r.summary.gap.mobile_wired_factor,
    "exceedance_percent": lambda r: r.summary.gap.exceedance_percent,
    "detour_km": lambda r: r.summary.detour_km,
}

VariantKey = tuple[tuple[str, Any], ...]


def variant_label(key: VariantKey) -> str:
    """One-line human form of a variant key: ``a=1, b=2``."""
    return ", ".join(f"{name}={value}" for name, value in key)


def _same_inputs(a: RunRecord, b: RunRecord) -> bool:
    """Whether two records were computed from identical inputs.

    Digest comparison when both sides are stamped; the shared
    :meth:`~repro.fleet.sweep.RunRecord.legacy_identity` tuple when
    either side predates ``spec_key``, so v2 and v3 fleets of the
    same campaign still align.
    """
    if a.spec_key and b.spec_key:
        return a.spec_key == b.spec_key
    return a.legacy_identity() == b.legacy_identity()


@dataclass(frozen=True)
class RecordSet:
    """A labelled bag of run records — one side of a comparison."""

    label: str
    records: tuple[RunRecord, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def variants(self) -> dict[VariantKey, tuple[RunRecord, ...]]:
        """Records grouped by grid coordinates
        (:meth:`~repro.fleet.sweep.RunRecord.variant_key` — variant
        pairs + scenario + density), in first-seen order."""
        groups: dict[VariantKey, list[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.variant_key(), []).append(record)
        return {key: tuple(records) for key, records in groups.items()}

    @classmethod
    def from_path(cls, path: Union[str, Path], *,
                  label: str = "") -> "RecordSet":
        """Load a fleet directory (``manifest.json``) or a result
        cache (``objects/``) as one record set.

        An interrupted fleet — skeleton manifest, not yet marked
        ``complete`` — contributes the records streamed to ``runs/``
        before the crash, not the manifest's (empty) run list.
        """
        root = Path(path)
        if (root / MANIFEST_NAME).exists():
            store = FleetStore(root)
            if store.read_manifest().get("complete", True):
                records = store.load().records
            else:
                records = tuple(store.existing_records().values())
        elif (root / OBJECTS_DIR).is_dir():
            records = tuple(ResultCache(root).iter_records())
        else:
            raise FileNotFoundError(
                f"{root} is neither a fleet directory "
                f"({MANIFEST_NAME}) nor a result cache ({OBJECTS_DIR}/)")
        return cls(label=label or root.name or str(root),
                   records=records)


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between baseline and candidate."""

    metric: str
    baseline: float
    candidate: float

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def pct(self) -> Optional[float]:
        """Percent change against the baseline; ``None`` when the
        baseline is zero and the values differ (unbounded change)."""
        if self.baseline == 0.0:
            return 0.0 if self.delta == 0.0 else None
        return 100.0 * self.delta / abs(self.baseline)

    def trips(self, threshold_pct: float) -> bool:
        """Whether this delta violates a ``pct`` gate (either
        direction; an unbounded change always trips)."""
        return self.pct is None or abs(self.pct) > threshold_pct

    def to_dict(self) -> dict[str, Any]:
        return {"metric": self.metric, "baseline": self.baseline,
                "candidate": self.candidate, "delta": self.delta,
                "pct": self.pct}


@dataclass(frozen=True)
class VariantDelta:
    """One common variant's full delta row set against the baseline."""

    fleet: str                       #: candidate set label
    variant: VariantKey              #: candidate-side coordinates
    baseline_variant: VariantKey     #: baseline-side coordinates
    baseline_seeds: tuple[int, ...]
    candidate_seeds: tuple[int, ...]
    common_seeds: tuple[int, ...]
    #: Seed-paired runs whose content identities match exactly.
    identical_runs: int
    metrics: tuple[MetricDelta, ...]

    @property
    def label(self) -> str:
        return variant_label(self.variant)

    @property
    def renamed(self) -> bool:
        """Whether content matching paired differently-labelled
        variants (e.g. an axis renamed between sweeps)."""
        return self.variant != self.baseline_variant

    def to_dict(self) -> dict[str, Any]:
        return {
            "fleet": self.fleet,
            "variant": [list(p) for p in self.variant],
            "baseline_variant": [list(p) for p in self.baseline_variant],
            "baseline_seeds": list(self.baseline_seeds),
            "candidate_seeds": list(self.candidate_seeds),
            "common_seeds": list(self.common_seeds),
            "identical_runs": self.identical_runs,
            "metrics": [m.to_dict() for m in self.metrics],
        }


@dataclass(frozen=True)
class FleetComparison:
    """The aligned delta report across one baseline and N candidates."""

    baseline: str
    candidates: tuple[str, ...]
    deltas: tuple[VariantDelta, ...]
    #: ``(fleet, variant)`` present in a candidate but not the baseline.
    added: tuple[tuple[str, VariantKey], ...]
    #: ``(fleet, variant)`` present in the baseline but not a candidate.
    removed: tuple[tuple[str, VariantKey], ...]

    @property
    def identical_runs(self) -> int:
        return sum(d.identical_runs for d in self.deltas)

    @property
    def paired_runs(self) -> int:
        return sum(len(d.common_seeds) for d in self.deltas)

    def failures(self, gates: Sequence[tuple[str, float]] = ()
                 ) -> tuple[str, ...]:
        """Every gate violation, human-readable.

        Grid drift (added/removed variants) always counts — a
        regression gate comparing mismatched grids is vacuous — and
        each ``(metric, pct)`` gate trips on any common variant whose
        metric moved more than ``pct`` percent in either direction.
        """
        messages: list[str] = []
        for fleet, key in self.removed:
            messages.append(f"{fleet}: baseline variant "
                            f"[{variant_label(key)}] has no counterpart")
        for fleet, key in self.added:
            messages.append(f"{fleet}: variant [{variant_label(key)}] "
                            f"not in baseline")
        for delta in self.deltas:
            for metric_delta in delta.metrics:
                for metric, threshold in gates:
                    if metric_delta.metric != metric:
                        continue
                    if metric_delta.trips(threshold):
                        pct = metric_delta.pct
                        moved = ("unbounded" if pct is None
                                 else f"{pct:+.3f}%")
                        messages.append(
                            f"{delta.fleet}: [{delta.label}] {metric} "
                            f"moved {moved} "
                            f"({metric_delta.baseline:g} -> "
                            f"{metric_delta.candidate:g}), "
                            f"gate {threshold:g}%")
        return tuple(messages)

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline,
            "candidates": list(self.candidates),
            "deltas": [d.to_dict() for d in self.deltas],
            "added": [{"fleet": fleet,
                       "variant": [list(p) for p in key]}
                      for fleet, key in self.added],
            "removed": [{"fleet": fleet,
                         "variant": [list(p) for p in key]}
                        for fleet, key in self.removed],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self, path: Union[str, Path]) -> str:
        """Flat delta rows (plus added/removed markers); returns the
        written path."""
        header = ["fleet", "status", "variant", "metric",
                  "baseline", "candidate", "delta", "delta_pct"]
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", newline="") as handle:
            writer = csv.writer(handle, lineterminator="\n")
            writer.writerow(header)
            for delta in self.deltas:
                for m in delta.metrics:
                    writer.writerow([
                        delta.fleet, "common", delta.label, m.metric,
                        f"{m.baseline:.6f}", f"{m.candidate:.6f}",
                        f"{m.delta:.6f}",
                        "" if m.pct is None else f"{m.pct:.6f}"])
            for fleet, key in self.added:
                writer.writerow([fleet, "added", variant_label(key),
                                 "", "", "", "", ""])
            for fleet, key in self.removed:
                writer.writerow([fleet, "removed", variant_label(key),
                                 "", "", "", "", ""])
        return str(target)


class _IdentityIndex:
    """Baseline run identities -> owning variant key, built once per
    candidate set so label-drift rescue stays linear in record count.

    Mirrors :func:`_same_inputs`: digests pair only with digests, the
    legacy metadata tuple bridges any pairing that involves a
    digest-less record.
    """

    def __init__(self, base_variants: dict[VariantKey,
                                           tuple[RunRecord, ...]],
                 keys: Sequence[VariantKey]) -> None:
        self._by_digest: dict[str, VariantKey] = {}
        self._by_meta_unstamped: dict[tuple[Any, ...], VariantKey] = {}
        self._by_meta: dict[tuple[Any, ...], VariantKey] = {}
        for key in keys:
            for record in base_variants[key]:
                if record.spec_key:
                    self._by_digest.setdefault(record.spec_key, key)
                else:
                    self._by_meta_unstamped.setdefault(
                        record.legacy_identity(), key)
                self._by_meta.setdefault(record.legacy_identity(), key)

    def owner(self, record: RunRecord) -> Optional[VariantKey]:
        if record.spec_key:
            key = self._by_digest.get(record.spec_key)
            if key is None:
                key = self._by_meta_unstamped.get(
                    record.legacy_identity())
            return key
        return self._by_meta.get(record.legacy_identity())


def _content_match(index: _IdentityIndex,
                   unmatched_base: Sequence[VariantKey],
                   cand_records: Sequence[RunRecord]
                   ) -> Optional[VariantKey]:
    """The base variant holding this candidate variant's runs, if any.

    Rescues variants whose labels drifted (a renamed axis) but whose
    content did not: a majority of the candidate's runs must match a
    single still-unclaimed base variant's runs by content identity.
    """
    votes: dict[VariantKey, int] = {}
    for record in cand_records:
        key = index.owner(record)
        if key is not None and key in unmatched_base:
            votes[key] = votes.get(key, 0) + 1
    if not votes:
        return None
    best = max(votes, key=lambda key: votes[key])
    return best if votes[best] * 2 > len(cand_records) else None


def compare_record_sets(baseline: RecordSet,
                        candidates: Sequence[RecordSet]
                        ) -> FleetComparison:
    """Align every candidate set against the baseline.

    Variants pair by grid coordinates first, then by run content
    identity for coordinate keys only one side has (label drift);
    whatever still pairs nowhere is reported added (candidate-only) or
    removed (baseline-only).  Within a pair, metrics are averaged over
    the seeds both sides ran.
    """
    base_variants = baseline.variants()
    deltas: list[VariantDelta] = []
    added: list[tuple[str, VariantKey]] = []
    removed: list[tuple[str, VariantKey]] = []

    for candidate in candidates:
        cand_variants = candidate.variants()
        pairs: list[tuple[VariantKey, VariantKey]] = []
        unmatched_base = [key for key in base_variants
                          if key not in cand_variants]
        index = _IdentityIndex(base_variants, unmatched_base)
        for key in cand_variants:
            if key in base_variants:
                pairs.append((key, key))
        for key in cand_variants:
            if key in base_variants:
                continue
            match = _content_match(index, unmatched_base,
                                   cand_variants[key])
            if match is not None:
                pairs.append((key, match))
                unmatched_base.remove(match)
            else:
                added.append((candidate.label, key))
        removed.extend((candidate.label, key)
                       for key in unmatched_base)

        for cand_key, base_key in pairs:
            base_by_seed = {r.seed: r for r in base_variants[base_key]}
            cand_by_seed = {r.seed: r for r in cand_variants[cand_key]}
            common = tuple(sorted(set(base_by_seed) & set(cand_by_seed)))
            # Seed-paired records when the seed sets overlap; each
            # side's full population otherwise (still comparable as
            # across-seed means, just not run-by-run).
            base_side = ([base_by_seed[s] for s in common]
                         or list(base_variants[base_key]))
            cand_side = ([cand_by_seed[s] for s in common]
                         or list(cand_variants[cand_key]))
            metrics = tuple(
                MetricDelta(
                    metric=name,
                    baseline=pystats.fmean(fn(r) for r in base_side),
                    candidate=pystats.fmean(fn(r) for r in cand_side))
                for name, fn in COMPARE_METRICS.items())
            deltas.append(VariantDelta(
                fleet=candidate.label,
                variant=cand_key,
                baseline_variant=base_key,
                baseline_seeds=tuple(sorted(base_by_seed)),
                candidate_seeds=tuple(sorted(cand_by_seed)),
                common_seeds=common,
                identical_runs=sum(
                    1 for s in common
                    if _same_inputs(base_by_seed[s], cand_by_seed[s])),
                metrics=metrics))

    return FleetComparison(
        baseline=baseline.label,
        candidates=tuple(c.label for c in candidates),
        deltas=tuple(deltas),
        added=tuple(added),
        removed=tuple(removed))


def compare_paths(paths: Sequence[Union[str, Path]], *,
                  baseline: Optional[str] = None) -> FleetComparison:
    """Load and compare two or more fleet/cache directories.

    ``baseline`` names the reference set by path or label (directory
    basename); the first path is the default.  Duplicate labels — the
    same directory twice, or same-named directories under different
    parents — are disambiguated with a ``#N`` suffix.
    """
    if len(paths) < 2:
        raise ValueError("compare needs at least two directories")
    sets: list[tuple[str, RecordSet]] = []
    seen: dict[str, int] = {}
    for path in paths:
        loaded = RecordSet.from_path(path)
        count = seen.get(loaded.label, 0) + 1
        seen[loaded.label] = count
        if count > 1:
            loaded = RecordSet(label=f"{loaded.label}#{count}",
                               records=loaded.records)
        sets.append((str(path), loaded))

    index = 0
    if baseline is not None:
        for i, (raw, loaded) in enumerate(sets):
            if baseline in (raw, loaded.label):
                index = i
                break
        else:
            raise ValueError(
                f"baseline {baseline!r} is not among the compared "
                f"paths {[raw for raw, _ in sets]}")
    ordered = [loaded for _, loaded in sets]
    chosen = ordered.pop(index)
    return compare_record_sets(chosen, ordered)


def parse_fail_on(text: str) -> tuple[str, float]:
    """Parse one ``metric:pct`` gate (e.g. ``mobile_mean_ms:2``)."""
    metric, sep, threshold = text.partition(":")
    metric = metric.strip()
    if not sep or metric not in COMPARE_METRICS:
        raise ValueError(
            f"--fail-on wants METRIC:PCT with METRIC one of "
            f"{sorted(COMPARE_METRICS)}, got {text!r}")
    try:
        value = float(threshold)
    except ValueError:
        raise ValueError(
            f"--fail-on threshold must be a number, got "
            f"{threshold!r}") from None
    if value < 0:
        raise ValueError(f"--fail-on threshold must be >= 0, got {value}")
    return metric, value
