"""Content-addressed cache of compiled scenarios.

The fleet analogue of :class:`~repro.fleet.cache.ResultCache`, one
level up the reuse ladder: where the result cache skips a run whose
*full* identity (``run_key``) was seen before, this cache skips the
*build* of a run whose build layers (``build_key``) were — so a sweep
over sampling-only knobs compiles its world once and replays only the
sampling phase per variant.

Two tiers:

* an in-process LRU of live :class:`~repro.core.compiled
  .CompiledScenario` objects (compiles are ~35x a sampling phase, but
  live objects hold the whole precompute — the capacity keeps a small
  working set, enough for a multi-scenario sweep);
* an optional on-disk store next to the result cache, so *sequential*
  fleet invocations (cold CLI calls, CI re-runs) skip the build too.

Disk entries are self-verifying: a JSON header line carrying the
schema version, build key, and the SHA-256 of the pickle blob that
follows.  Any mismatch — truncation, corruption, a stale schema — is
treated as a miss: the entry is deleted, counted, and rebuilt.  Like
the result cache, writes go through a same-directory temp file and an
atomic :func:`os.replace`, so concurrent fleets never observe partial
entries.

The cache is shared between broker threads and the server's GC chore,
so the memory tier and the stats counters are ``guarded_by`` an
internal :class:`~repro.sim.sync.WatchedLock`.  Disk I/O and
compilation deliberately happen *outside* the lock: two threads
missing on the same key build it twice, which is benign (the compiled
scenario is a pure function of the key) and keeps the lock from ever
waiting on a 100ms+ build or a disk read (REP102).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..core.compiled import CompiledScenario
from ..scenarios.identity import build_key as spec_build_key
from ..scenarios.spec import ScenarioSpec
from ..sim.sync import WatchedLock, guarded_by

__all__ = ["COMPILED_DIR", "CompiledCacheStats", "CompiledScenarioCache"]

#: subdirectory of a fleet cache directory holding compiled scenarios
COMPILED_DIR = "compiled"

_HEADER_SCHEMA = 1


@dataclass
class CompiledCacheStats:
    """Counters of one cache's lifetime (process-local)."""

    builds: int = 0        #: scenarios compiled from scratch
    memory_hits: int = 0   #: served from the in-process LRU
    disk_hits: int = 0     #: unpickled from the on-disk store
    stores: int = 0        #: entries written to disk
    corrupt: int = 0       #: disk entries rejected and deleted

    @property
    def hits(self) -> int:
        """Builds avoided, either tier."""
        return self.memory_hits + self.disk_hits


class CompiledScenarioCache:
    """Two-tier (memory + disk) cache of :class:`CompiledScenario`.

    ``directory=None`` disables the disk tier.  Thread-safe: the
    memory LRU and stats are lock-guarded; builds and disk I/O run
    unlocked (duplicate work on a racing miss is benign, the value is
    a pure function of the key).
    """

    _memory: dict[str, CompiledScenario] = guarded_by("_lock")
    stats: CompiledCacheStats = guarded_by("_lock", writes_only=True)

    def __init__(self, directory: Optional[Path | str] = None, *,
                 capacity: int = 4):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.directory = Path(directory) if directory is not None else None
        self.capacity = capacity
        self._lock = WatchedLock("compiled-cache")
        self.stats = CompiledCacheStats()
        self._memory = {}

    # -- lookup ---------------------------------------------------------

    def get(self, spec: ScenarioSpec, seed: int, density: float, *,
            key: Optional[str] = None) -> CompiledScenario:
        """The compiled scenario for ``(spec build layers, seed, density)``.

        Checks memory, then disk, then compiles (and back-fills both
        tiers).  ``key`` skips re-hashing when the caller already
        computed the build key.
        """
        if key is None:
            key = spec_build_key(spec, seed, density)
        with self._lock:
            hit = self._memory.pop(key, None)
            if hit is not None:
                self._memory[key] = hit  # re-insert: most recently used
                self.stats.memory_hits += 1
                return hit
        loaded = self._load(key)
        if loaded is not None:
            with self._lock:
                self.stats.disk_hits += 1
                self._remember(key, loaded)
            return loaded
        compiled = CompiledScenario(spec, seed=seed, density=density)
        with self._lock:
            self.stats.builds += 1
            self._remember(key, compiled)
        self._store(key, compiled)
        return compiled

    def _remember(self, key: str,  # lint: holds(_lock)
                  compiled: CompiledScenario) -> None:
        self._memory[key] = compiled
        while len(self._memory) > self.capacity:
            self._memory.pop(next(iter(self._memory)))

    def clear(self) -> None:
        """Drop the in-process tier (disk entries stay)."""
        with self._lock:
            self._memory.clear()

    # -- disk tier ------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.pkl"

    def _load(self, key: str) -> Optional[CompiledScenario]:
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            head, _, blob = raw.partition(b"\n")
            header = json.loads(head)
            if (header.get("schema") != _HEADER_SCHEMA
                    or header.get("build_key") != key
                    or header.get("blob_sha256")
                    != hashlib.sha256(blob).hexdigest()):
                raise ValueError("compiled entry failed verification")
            compiled = pickle.loads(blob)
            if not isinstance(compiled, CompiledScenario) \
                    or compiled.schema != CompiledScenario.SCHEMA \
                    or compiled.build_key != key:
                raise ValueError("compiled entry failed verification")
        except Exception:
            # Corrupt, truncated, stale-schema, or unpicklable: drop
            # the entry and let the caller recompile.
            with self._lock:
                self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return compiled

    def _store(self, key: str, compiled: CompiledScenario) -> None:
        if self.directory is None:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps({
            "schema": _HEADER_SCHEMA,
            "build_key": key,
            "blob_sha256": hashlib.sha256(blob).hexdigest(),
        }, sort_keys=True, separators=(",", ":")).encode()
        tmp = path.parent / \
            f".{path.name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp"
        try:
            tmp.write_bytes(header + b"\n" + blob)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        with self._lock:
            self.stats.stores += 1
