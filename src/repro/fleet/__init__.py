"""Fleet execution: parameter sweeps and multi-seed campaigns.

Where :mod:`repro.scenarios` makes one city serializable data, this
package makes *many runs* data: a :class:`SweepSpec` (base specs x
override axes x seeds) expands into :class:`RunSpec` units driven by
:func:`run_sweep` through a pluggable :class:`Executor` backend —
the batched two-phase executor (the single-job default), in-process
serial, process pool, or thread pool — each run reducing to
a portable :class:`RunRecord` persisted by :class:`FleetStore`.  A
content-addressed :class:`ResultCache` (keys are SHA-256 digests of
``(spec, seed, density)``) wraps any backend via
:class:`CachingExecutor` so recomputation is never paid twice, a
:class:`CompiledScenarioCache` lets runs differing only in
sampling-layer fields share one compiled world
(:mod:`repro.scenarios.identity`), and an
interrupted sweep's directory resumes with
:meth:`FleetStore.resume` / :func:`resume_sweep`.  Every record is
stamped with its ``run_key`` digest (``spec_key``), giving runs a
content identity that resume verifies (a record computed under an
edited spec is recomputed, never silently reused) and that
:func:`compare_record_sets` / ``python -m repro compare A B`` align
cross-fleet delta reports on.

Quickstart::

    from repro.fleet import SweepAxis, SweepSpec, fleet_summary, run_sweep
    from repro.scenarios import klagenfurt, skopje

    sweep = SweepSpec(
        bases=(klagenfurt(), skopje()),
        axes=(SweepAxis("campaign.handover_interruption_s",
                        (30e-3, 45e-3, 60e-3)),),
        seeds=(42, 43, 44, 45),
    )
    result = run_sweep(sweep, jobs=4, cache="result-cache",
                       out="fleet-out")
    print(fleet_summary(result))

Or from the shell::

    python -m repro sweep --scenario klagenfurt,skopje \\
        --set campaign.handover_interruption_s=0.03,0.045,0.06 \\
        --seeds 42:46 --backend process --jobs 4 \\
        --cache result-cache --out fleet-out
    python -m repro sweep --resume --out fleet-out   # finish a kill -9'd run
    python -m repro compare fleet-out fleet-prev --fail-on mobile_mean_ms:2
"""


from __future__ import annotations

from .cache import (
    CacheStats,
    CachingExecutor,
    ResultCache,
    rebind_record,
    run_key,
)
from .compiled import CompiledCacheStats, CompiledScenarioCache
from .compare import (
    COMPARE_METRICS,
    FleetComparison,
    MetricDelta,
    RecordSet,
    VariantDelta,
    compare_paths,
    compare_record_sets,
    parse_fail_on,
)
from .executors import (
    BACKENDS,
    BatchExecutor,
    Executor,
    ProcessPoolBackend,
    RemoteExecutor,
    RunOutcome,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)
from .gc import CacheUsage, GcReport, TierUsage, cache_usage, run_gc
from .progress import ProgressEvent, print_progress
from .report import comparison_summary, fleet_summary, write_csv
from .runner import resume_sweep, run_one, run_sweep
from .store import FleetResult, FleetStore, SCHEMA_VERSION
from .sweep import (
    RunRecord,
    RunSpec,
    SweepAxis,
    SweepSpec,
    record_matches_spec,
)

__all__ = [
    "BACKENDS", "BatchExecutor", "CacheStats", "CacheUsage",
    "CachingExecutor", "COMPARE_METRICS", "CompiledCacheStats",
    "CompiledScenarioCache", "Executor", "FleetComparison",
    "FleetResult", "FleetStore", "GcReport", "MetricDelta",
    "ProcessPoolBackend", "ProgressEvent", "RecordSet",
    "RemoteExecutor", "ResultCache", "RunOutcome", "RunRecord",
    "RunSpec", "SCHEMA_VERSION", "SerialExecutor", "SweepAxis",
    "SweepSpec", "ThreadedExecutor", "TierUsage", "VariantDelta",
    "cache_usage", "compare_paths", "compare_record_sets",
    "comparison_summary", "fleet_summary", "make_executor",
    "parse_fail_on", "print_progress", "rebind_record",
    "record_matches_spec", "resume_sweep", "run_gc", "run_key",
    "run_one", "run_sweep", "write_csv",
]
