"""Fleet execution: parameter sweeps and multi-seed campaigns.

Where :mod:`repro.scenarios` makes one city serializable data, this
package makes *many runs* data: a :class:`SweepSpec` (base specs x
override axes x seeds) expands into :class:`RunSpec` units executed by
:func:`run_sweep` — serially or across a process pool — each reducing
to a portable :class:`RunRecord` persisted by :class:`FleetStore`.

Quickstart::

    from repro.fleet import SweepAxis, SweepSpec, fleet_summary, run_sweep
    from repro.scenarios import klagenfurt, skopje

    sweep = SweepSpec(
        bases=(klagenfurt(), skopje()),
        axes=(SweepAxis("campaign.handover_interruption_s",
                        (30e-3, 45e-3, 60e-3)),),
        seeds=(42, 43, 44, 45),
    )
    result = run_sweep(sweep, jobs=4, out="fleet-out")
    print(fleet_summary(result))

Or from the shell::

    python -m repro sweep --scenario klagenfurt,skopje \\
        --set campaign.handover_interruption_s=0.03,0.045,0.06 \\
        --seeds 42:46 --jobs 4 --out fleet-out
"""

from .report import fleet_summary, write_csv
from .runner import run_one, run_sweep
from .store import FleetResult, FleetStore
from .sweep import RunRecord, RunSpec, SweepAxis, SweepSpec

__all__ = [
    "FleetResult", "FleetStore",
    "RunRecord", "RunSpec", "SweepAxis", "SweepSpec",
    "fleet_summary", "run_one", "run_sweep", "write_csv",
]
