"""Cache lifecycle management: usage stats + LRU-by-atime eviction.

A shared, long-lived cache directory (the fleet service's backing
store) accumulates two tiers of entries — result records under
``objects/`` (:class:`~repro.fleet.cache.ResultCache`) and compiled
scenarios under ``compiled/``
(:class:`~repro.fleet.compiled.CompiledScenarioCache`) — plus the
occasional staging file abandoned by a crashed writer.  This module is
their janitor:

* :func:`cache_usage` reports per-tier entry counts and byte totals
  (``python -m repro cache stats``);
* :func:`run_gc` sweeps orphaned ``.tmp`` files, expires entries older
  than ``max_age_s``, and then evicts least-recently-*used* entries
  (by ``st_atime``, ties broken by path for determinism) until the
  combined tiers fit ``max_bytes`` (``python -m repro cache gc``).

Both caches are content-addressed and self-verifying, so eviction is
always safe: a future request for a deleted key simply recomputes and
re-stores it.  The fleet service calls :func:`run_gc` on startup and
on a configurable period.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from .cache import OBJECTS_DIR, ORPHAN_TMP_TTL_S, ResultCache
from .compiled import COMPILED_DIR

__all__ = [
    "CacheEntry",
    "CacheUsage",
    "GcReport",
    "TierUsage",
    "cache_usage",
    "run_gc",
]

#: tier name -> (subdirectory, entry glob)
TIERS: dict[str, tuple[str, str]] = {
    "results": (OBJECTS_DIR, "*/*.json"),
    "compiled": (COMPILED_DIR, "*/*.pkl"),
}


@dataclass(frozen=True)
class CacheEntry:
    """One evictable cache file."""

    tier: str
    path: Path
    size: int
    atime: float

    def to_dict(self) -> dict[str, Any]:
        return {"tier": self.tier, "path": str(self.path),
                "size": self.size, "atime": self.atime}


@dataclass(frozen=True)
class TierUsage:
    """Entry count and byte total of one cache tier."""

    tier: str
    entries: int
    size: int

    def to_dict(self) -> dict[str, Any]:
        return {"tier": self.tier, "entries": self.entries,
                "size": self.size}


@dataclass(frozen=True)
class CacheUsage:
    """What one cache directory currently holds, per tier."""

    directory: str
    tiers: tuple[TierUsage, ...]
    staging: int        #: ``.tmp`` files present (of any age)

    @property
    def entries(self) -> int:
        return sum(tier.entries for tier in self.tiers)

    @property
    def size(self) -> int:
        return sum(tier.size for tier in self.tiers)

    def tier(self, name: str) -> TierUsage:
        for tier in self.tiers:
            if tier.tier == name:
                return tier
        raise KeyError(f"unknown cache tier {name!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"directory": self.directory,
                "tiers": [tier.to_dict() for tier in self.tiers],
                "entries": self.entries, "size": self.size,
                "staging": self.staging}

    def summary(self) -> str:
        parts = [f"{tier.entries} {tier.tier} ({tier.size} bytes)"
                 for tier in self.tiers]
        text = (f"cache {self.directory}: " + " + ".join(parts)
                + f" = {self.entries} entries, {self.size} bytes")
        if self.staging:
            text += f"; {self.staging} staging file(s)"
        return text


@dataclass(frozen=True)
class GcReport:
    """What one :func:`run_gc` pass removed and what survived."""

    directory: str
    orphans_removed: int
    expired: tuple[CacheEntry, ...]     #: removed by ``max_age_s``
    evicted: tuple[CacheEntry, ...]     #: removed (LRU) for ``max_bytes``
    kept_entries: int
    kept_size: int

    @property
    def removed_entries(self) -> int:
        return len(self.expired) + len(self.evicted)

    @property
    def removed_size(self) -> int:
        return (sum(entry.size for entry in self.expired)
                + sum(entry.size for entry in self.evicted))

    def to_dict(self) -> dict[str, Any]:
        return {"directory": self.directory,
                "orphans_removed": self.orphans_removed,
                "expired": [entry.to_dict() for entry in self.expired],
                "evicted": [entry.to_dict() for entry in self.evicted],
                "removed_entries": self.removed_entries,
                "removed_size": self.removed_size,
                "kept_entries": self.kept_entries,
                "kept_size": self.kept_size}

    def summary(self) -> str:
        return (f"gc {self.directory}: swept {self.orphans_removed} "
                f"orphan(s), expired {len(self.expired)}, evicted "
                f"{len(self.evicted)} LRU entries "
                f"({self.removed_size} bytes freed); kept "
                f"{self.kept_entries} entries, {self.kept_size} bytes")


def _scan(directory: Path) -> list[CacheEntry]:
    """Every cache entry with its size and last-use time, path-sorted.

    A file that vanishes mid-scan (a concurrent GC or a corrupt-entry
    deletion) is simply skipped.
    """
    entries: list[CacheEntry] = []
    for tier, (subdir, pattern) in sorted(TIERS.items()):
        root = directory / subdir
        if not root.is_dir():
            continue
        for path in sorted(root.glob(pattern)):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append(CacheEntry(tier=tier, path=path,
                                      size=stat.st_size,
                                      atime=stat.st_atime))
    return entries


def _count_staging(directory: Path) -> int:
    return sum(1 for _ in directory.rglob("*.tmp"))


def cache_usage(directory: Union[str, Path]) -> CacheUsage:
    """Per-tier entry counts and byte totals for one cache directory."""
    root = Path(directory)
    entries = _scan(root)
    tiers = tuple(
        TierUsage(tier=tier,
                  entries=sum(1 for e in entries if e.tier == tier),
                  size=sum(e.size for e in entries if e.tier == tier))
        for tier in sorted(TIERS))
    staging = _count_staging(root) if root.is_dir() else 0
    return CacheUsage(directory=str(root), tiers=tiers, staging=staging)


def _remove(entry: CacheEntry) -> bool:
    try:
        entry.path.unlink()
    except OSError:
        return False
    # Content-addressed shards: drop a now-empty <key[:2]>/ directory
    # so eviction doesn't leave a skeleton tree behind.
    try:
        entry.path.parent.rmdir()
    except OSError:
        pass
    return True


def run_gc(directory: Union[str, Path], *,
           max_bytes: Optional[int] = None,
           max_age_s: Optional[float] = None,
           orphan_ttl_s: float = ORPHAN_TMP_TTL_S,
           now: Optional[float] = None) -> GcReport:
    """One GC pass over both cache tiers; returns what was removed.

    Order of operations: orphaned ``.tmp`` staging files older than
    ``orphan_ttl_s`` go first (the whole tree, not just the results
    shards — this is :meth:`ResultCache.sweep_orphans` run eagerly
    instead of piggybacking on a write), then every entry whose last
    use is older than ``max_age_s``, then — oldest ``st_atime`` first
    — however many more entries it takes to bring the combined tiers
    under ``max_bytes``.  Ties in last-use time break by path, so two
    GC passes over identical trees always evict identically.
    """
    root = Path(directory)
    orphans = ResultCache(root).sweep_orphans(
        max_age_s=orphan_ttl_s, directory=root) if root.is_dir() else 0
    entries = _scan(root)
    if now is None:
        now = time.time()

    expired: list[CacheEntry] = []
    survivors: list[CacheEntry] = []
    for entry in entries:
        if max_age_s is not None and now - entry.atime > max_age_s:
            if _remove(entry):
                expired.append(entry)
        else:
            survivors.append(entry)

    evicted: list[CacheEntry] = []
    if max_bytes is not None:
        total = sum(entry.size for entry in survivors)
        # Least recently used first; deterministic under atime ties.
        queue = sorted(survivors, key=lambda e: (e.atime, str(e.path)))
        while total > max_bytes and queue:
            entry = queue.pop(0)
            if _remove(entry):
                evicted.append(entry)
                survivors.remove(entry)
                total -= entry.size

    return GcReport(directory=str(root), orphans_removed=orphans,
                    expired=tuple(expired), evicted=tuple(evicted),
                    kept_entries=len(survivors),
                    kept_size=sum(entry.size for entry in survivors))
