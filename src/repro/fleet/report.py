"""Human-readable digests of fleet results and fleet comparisons.

Consumes the aggregation surfaces of
:class:`~repro.fleet.store.FleetResult` and
:class:`~repro.fleet.compare.FleetComparison` and renders them with
the same table renderer every other study in the repo uses.
"""

from __future__ import annotations

from pathlib import Path

from ..core.report import render_comparison_table
from .compare import FleetComparison, variant_label
from .store import FleetResult

__all__ = ["comparison_summary", "fleet_summary", "write_csv"]


def _cell(value: object, *, identity: bool) -> object:
    if isinstance(value, float):
        # Axis values print exactly (0.045 stays 0.045); measurements
        # round to presentation precision.
        return f"{value:g}" if identity else f"{value:.2f}"
    return value


def fleet_summary(result: FleetResult) -> str:
    """The per-variant summary table plus the execution footer."""
    header, rows = result.summary_rows()
    identity_columns = 1 + len(result.sweep.axes)
    table = render_comparison_table(
        header,
        [[_cell(v, identity=i < identity_columns)
          for i, v in enumerate(row)] for row in rows],
        title=f"Fleet summary — {len(result)} runs "
              f"({result.sweep.variant_count} variants x "
              f"{len(result.sweep.seeds)} seeds)")
    busy = sum(result.run_wall_s)
    footer = (f"wall time {result.wall_s:.2f} s with {result.backend} "
              f"backend, jobs={result.jobs}"
              f" (cumulative run time {busy:.2f} s)")
    if result.cached_count:
        footer += (f"; {result.cached_count}/{len(result)} records "
                   f"reused without recompute")
    return f"{table}\n{footer}"


def write_csv(result: FleetResult, path: str | Path) -> str:
    """Export the flat per-run table; returns the written path."""
    return result.to_csv(path)


def comparison_summary(comparison: FleetComparison) -> str:
    """The per-variant delta table plus the grid-drift footer."""
    header = ["fleet", "variant", "metric", "baseline", "candidate",
              "delta", "delta %"]
    rows: list[list[object]] = []
    for delta in comparison.deltas:
        label = delta.label
        if delta.renamed:
            label += f" [= {variant_label(delta.baseline_variant)}]"
        for m in delta.metrics:
            rows.append([
                delta.fleet, label, m.metric,
                f"{m.baseline:.4f}", f"{m.candidate:.4f}",
                f"{m.delta:+.4f}",
                "n/a" if m.pct is None else f"{m.pct:+.3f}",
            ])
    lines = [render_comparison_table(
        header, rows,
        title=f"Fleet comparison — baseline {comparison.baseline}, "
              f"{len(comparison.deltas)} common variants")]
    for fleet, key in comparison.removed:
        lines.append(f"- {fleet}: baseline variant "
                     f"[{variant_label(key)}] has no counterpart")
    for fleet, key in comparison.added:
        lines.append(f"+ {fleet}: variant [{variant_label(key)}] "
                     f"not in baseline")
    lines.append(
        f"{comparison.paired_runs} run pairs aligned by seed, "
        f"{comparison.identical_runs} content-identical (same spec_key)")
    return "\n".join(lines)
