"""One progress code path for every sweep front-end.

A finished run is announced exactly once, as a :class:`ProgressEvent`
— the CLI renders it as a ``--progress`` line, the fleet service
serializes it onto the ``GET /fleets/<id>/events`` NDJSON stream, and
both views carry the same fields.  Before this module the CLI had its
own print-based formatting; any new front-end (a TUI, a websocket)
should consume :class:`ProgressEvent`, not re-derive it from records.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from ..units import to_ms
from .sweep import RunRecord

__all__ = ["ProgressEvent", "print_progress"]


@dataclass(frozen=True)
class ProgressEvent:
    """One run finished: position in the fleet plus its headline metric."""

    done: int                  #: runs finished so far (this one included)
    total: int                 #: runs in the fleet
    run_id: str
    scenario: str
    seed: int
    mobile_mean_ms: float      #: the record's headline metric
    cached: bool = False       #: served without recompute
    wall_s: float = 0.0        #: this execution's wall time (0 if cached)

    @classmethod
    def from_record(cls, done: int, total: int, record: RunRecord, *,
                    cached: bool = False,
                    wall_s: float = 0.0) -> "ProgressEvent":
        return cls(done=done, total=total, run_id=record.run_id,
                   scenario=record.scenario, seed=record.seed,
                   mobile_mean_ms=to_ms(record.summary.gap.mobile_mean_s),
                   cached=cached, wall_s=wall_s)

    def line(self) -> str:
        """The human-readable ``--progress`` rendering."""
        return (f"  [{self.done}/{self.total}] {self.run_id}: "
                f"{self.mobile_mean_ms:.1f} ms mobile mean")

    def to_dict(self) -> dict[str, Any]:
        return {"done": self.done, "total": self.total,
                "run_id": self.run_id, "scenario": self.scenario,
                "seed": self.seed,
                "mobile_mean_ms": self.mobile_mean_ms,
                "cached": self.cached, "wall_s": self.wall_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProgressEvent":
        """Decode ``to_dict`` output, or a service ``run`` wire event
        (which wraps the same fields in an ``event``/``fleet_id``
        envelope — extra keys are ignored)."""
        known = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in sorted(data.items())
                      if key in known})


def print_progress(done: int, total: int, record: RunRecord) -> None:
    """The stock CLI progress callback (``--progress``)."""
    print(ProgressEvent.from_record(done, total, record).line())
