"""On-disk fleet persistence + in-memory aggregation.

A fleet directory is self-describing::

    <out>/
      manifest.json      # schema version + sweep spec + bookkeeping
      runs/
        <run_id>.json    # one RunRecord per run

``manifest.json`` carries everything needed to re-expand (or resume) a
sweep — the :class:`~repro.fleet.sweep.SweepSpec` itself round-trips
through it — while each run file is an independent, portable record.
The manifest is versioned (``schema``); the runner writes a skeleton
manifest *before* the first run lands (:meth:`FleetStore.begin`) and
streams records in as they finish, so an interrupted sweep leaves a
directory :meth:`FleetStore.resume` can complete by re-running only
the missing runs.  :class:`FleetResult` is the aggregation surface
over a set of records: group by axis, per-variant summary rows across
seeds, flat CSV export.
"""

from __future__ import annotations

import csv
import json
import os
import statistics as pystats
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional

from .sweep import RunRecord, RunSpec, SweepSpec, record_matches_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .runner import CacheLike, ExecutorLike, ProgressFn

__all__ = ["FleetResult", "FleetStore", "SCHEMA_VERSION"]

MANIFEST_NAME = "manifest.json"
RUNS_DIR = "runs"

#: Manifest format version.  v1 (implicit, no ``schema`` field) lacked
#: the backend name, per-run cache flags, and the ``complete`` marker;
#: v3 adds the per-run ``spec_key`` content digest (mirrored from the
#: record) so run identity is verifiable without re-hashing specs.
#: Older manifests — and their digest-less records — still load;
#: identity checks then fall back to ``(scenario, seed, density,
#: variant)``.
SCHEMA_VERSION = 3


@dataclass(frozen=True)
class FleetResult:
    """A completed (or reloaded) fleet: the sweep plus all records."""

    sweep: SweepSpec
    records: tuple[RunRecord, ...]
    run_wall_s: tuple[float, ...] = ()
    wall_s: float = 0.0
    jobs: int = 1
    backend: str = "serial"
    #: Per-record flag: ``True`` when the record was reused (cache hit
    #: or resumed from disk) rather than computed by this execution.
    cached: tuple[bool, ...] = ()
    #: Reuse-tier counters this execution contributed (e.g. ``builds_
    #: performed``/``builds_reused`` from the compiled-scenario cache,
    #: ``result_cache_hits``/``result_cache_misses`` from the result
    #: cache).  Execution metadata like ``wall_s`` — describes one
    #: machine's run, so it stays out of the persisted manifest.
    exec_stats: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))
        object.__setattr__(self, "run_wall_s", tuple(self.run_wall_s))
        object.__setattr__(self, "cached",
                           tuple(bool(flag) for flag in self.cached))
        # Empty metadata tuples mean "unknown" and are padded downstream;
        # a non-empty but wrong-length one would silently zip-truncate
        # the manifest, so it is an error here.
        for name in ("run_wall_s", "cached"):
            values = getattr(self, name)
            if values and len(values) != len(self.records):
                raise ValueError(
                    f"{name} has {len(values)} entries for "
                    f"{len(self.records)} records")

    def __len__(self) -> int:
        return len(self.records)

    @property
    def cached_count(self) -> int:
        """How many records were reused without recompute."""
        return sum(self.cached)

    # -- aggregation ------------------------------------------------------

    def group_by(self, key: str) -> dict[Any, tuple[RunRecord, ...]]:
        """Records bucketed by one axis label (or ``scenario``/``seed``),
        in first-seen order."""
        groups: dict[Any, list[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.axis_value(key), []).append(record)
        return {value: tuple(records)
                for value, records in groups.items()}

    def variants(self) -> dict[tuple[tuple[str, Any], ...],
                               tuple[RunRecord, ...]]:
        """Records grouped per variant (all seeds together), keyed by
        :meth:`~repro.fleet.sweep.RunRecord.variant_key`."""
        groups: dict[tuple[tuple[str, Any], ...], list[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.variant_key(), []).append(record)
        return {key: tuple(records) for key, records in groups.items()}

    def summary_rows(self) -> tuple[list[str], list[list[Any]]]:
        """``(header, rows)`` of the per-variant digest across seeds.

        Means are averaged across the variant's seeds; ``spread`` is
        the across-seed standard deviation of the mobile mean (0 for a
        single seed).
        """
        header = ["scenario"]
        header += [axis.label for axis in self.sweep.axes]
        header += ["seeds", "mobile mean (ms)", "seed spread (ms)",
                   "x wired", "exceedance (%)", "detour (km)"]
        rows: list[list[Any]] = []
        for key, records in self.variants().items():
            values = dict(key)
            means = [r.summary.gap.mobile_mean_s * 1e3 for r in records]
            row: list[Any] = [values.get("scenario", records[0].scenario)]
            row += [values.get(axis.label) for axis in self.sweep.axes]
            row += [
                len(records),
                pystats.fmean(means),
                pystats.stdev(means) if len(means) > 1 else 0.0,
                pystats.fmean(r.summary.gap.mobile_wired_factor
                              for r in records),
                pystats.fmean(r.summary.gap.exceedance_percent
                              for r in records),
                pystats.fmean(r.summary.detour_km for r in records),
            ]
            rows.append(row)
        return header, rows

    def to_csv(self, path: str | Path) -> str:
        """Flat per-run CSV (one row per record); returns the path."""
        header = ["run_id", "scenario", "seed", "density"]
        header += [axis.label for axis in self.sweep.axes]
        header += ["samples", "mobile_mean_ms", "wired_mean_ms",
                   "mobile_wired_factor", "exceedance_percent",
                   "max_cell", "max_cell_mean_ms", "detour_km"]
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", newline="") as handle:
            writer = csv.writer(handle, lineterminator="\n")
            writer.writerow(header)
            for record in self.records:
                gap = record.summary.gap
                row: list[Any] = [record.run_id, record.scenario,
                                  record.seed, record.density]
                row += [record.axis_value(axis.label)
                        for axis in self.sweep.axes]
                row += [record.summary.sample_count,
                        f"{gap.mobile_mean_s * 1e3:.6f}",
                        f"{gap.wired_mean_s * 1e3:.6f}",
                        f"{gap.mobile_wired_factor:.6f}",
                        f"{gap.exceedance_percent:.3f}",
                        gap.max_cell_label,
                        f"{gap.max_cell_mean_s * 1e3:.6f}",
                        f"{record.summary.detour_km:.3f}"]
                writer.writerow(row)
        return str(target)


class FleetStore:
    """Reads and writes one fleet directory.

    All writes go through a unique staging file and an atomic
    :func:`os.replace`, so a reader on another thread or process (the
    service's progress endpoints, a resumed sweep) never observes a
    half-written manifest or record.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @staticmethod
    def _write_text_atomic(path: Path, text: str) -> Path:
        staging = path.parent / (
            f".{path.name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp")
        staging.write_text(text)
        os.replace(staging, path)
        return path

    def read_manifest(self) -> dict[str, Any]:
        """The raw manifest dict, schema-checked."""
        if not self.manifest_path.exists():
            raise FileNotFoundError(
                f"no fleet manifest at {self.manifest_path}")
        manifest = json.loads(self.manifest_path.read_text())
        schema = manifest.get("schema", 1)
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"fleet manifest schema {schema} is newer than the "
                f"supported {SCHEMA_VERSION}")
        return manifest

    def begin(self, sweep: SweepSpec, *, jobs: int = 1,
              backend: str = "serial") -> Path:
        """Write the resumable skeleton manifest before any run lands.

        An interrupted sweep then leaves the sweep spec plus whatever
        run files made it to disk — exactly what :meth:`resume` needs.
        """
        (self.directory / RUNS_DIR).mkdir(parents=True, exist_ok=True)
        manifest = {"schema": SCHEMA_VERSION,
                    "sweep": sweep.to_dict(),
                    "jobs": jobs,
                    "backend": backend,
                    "wall_s": 0.0,
                    "complete": False,
                    "runs": []}
        return self._write_text_atomic(
            self.manifest_path, json.dumps(manifest, indent=2) + "\n")

    def write_record(self, record: RunRecord) -> Path:
        """Persist one run record; idempotent per ``run_id``."""
        path = self.directory / RUNS_DIR / f"{record.run_id}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        return self._write_text_atomic(path, record.to_json() + "\n")

    def existing_records(self) -> dict[str, RunRecord]:
        """Parseable run records already on disk, keyed by run id.

        Corrupt or half-written files are skipped — :meth:`resume`
        recomputes and overwrites them.
        """
        runs_dir = self.directory / RUNS_DIR
        records: dict[str, RunRecord] = {}
        if not runs_dir.is_dir():
            return records
        for path in sorted(runs_dir.glob("*.json")):
            try:
                record = RunRecord.from_json(path.read_text())
            except (KeyError, TypeError, ValueError):
                continue
            records[record.run_id] = record
        return records

    def save(self, result: FleetResult, *,
             rewrite_records: bool = True) -> dict[str, str]:
        """Persist the manifest, every run record, and the flat CSV;
        returns ``{name: path}`` for everything written.

        ``rewrite_records=False`` skips the per-run files — for the
        runner, which already streamed each one via
        :meth:`write_record` as it finished.
        """
        paths: dict[str, str] = {}
        wall = list(result.run_wall_s) or [0.0] * len(result.records)
        flags = list(result.cached) or [False] * len(result.records)
        entries: list[dict[str, Any]] = []
        for record, wall_s, cached in zip(result.records, wall, flags):
            relative = f"{RUNS_DIR}/{record.run_id}.json"
            if rewrite_records:
                self.write_record(record)
            paths[record.run_id] = str(self.directory / relative)
            entries.append({"run_id": record.run_id,
                            "scenario": record.scenario,
                            "seed": record.seed,
                            "spec_key": record.spec_key,
                            "variant": [list(p) for p in record.variant],
                            "file": relative,
                            "wall_s": wall_s,
                            "cached": cached})
        manifest = {"schema": SCHEMA_VERSION,
                    "sweep": result.sweep.to_dict(),
                    "jobs": result.jobs,
                    "backend": result.backend,
                    "wall_s": result.wall_s,
                    "complete": True,
                    "runs": entries}
        self._write_text_atomic(
            self.manifest_path, json.dumps(manifest, indent=2) + "\n")
        paths["manifest"] = str(self.manifest_path)
        paths["summary.csv"] = result.to_csv(
            self.directory / "summary.csv")
        return paths

    def load(self) -> FleetResult:
        """Reconstruct a :class:`FleetResult` from the directory.

        Reads both manifest schemas: v1 entries simply lack the
        backend name and cache flags.
        """
        manifest = self.read_manifest()
        records: list[RunRecord] = []
        run_wall_s: list[float] = []
        cached: list[bool] = []
        for entry in manifest["runs"]:
            text = (self.directory / entry["file"]).read_text()
            records.append(RunRecord.from_json(text))
            run_wall_s.append(entry.get("wall_s", 0.0))
            cached.append(entry.get("cached", False))
        return FleetResult(
            sweep=SweepSpec.from_dict(manifest["sweep"]),
            records=tuple(records),
            run_wall_s=tuple(run_wall_s),
            wall_s=manifest.get("wall_s", 0.0),
            jobs=manifest.get("jobs", 1),
            backend=manifest.get("backend", "serial"),
            cached=tuple(cached),
        )

    def missing_runs(self) -> tuple[RunSpec, ...]:
        """The expansion's runs with no *matching* record on disk.

        A record counts only if its content identity verifies against
        the expanded run (``spec_key``, or the legacy metadata
        fallback) — a record left by an earlier sweep whose manifest
        spec has since been edited is stale, not present.
        """
        manifest = self.read_manifest()
        sweep = SweepSpec.from_dict(manifest["sweep"])
        existing = self.existing_records()
        return tuple(
            run for run in sweep.expand()
            if run.run_id not in existing
            or not record_matches_spec(existing[run.run_id], run))

    def resume(self, *, jobs: int = 1, executor: "ExecutorLike" = None,
               cache: "CacheLike" = None,
               progress: "Optional[ProgressFn]" = None) -> FleetResult:
        """Complete a partially-written fleet directory.

        Re-expands the manifest's sweep, keeps every record already on
        disk (flagged ``cached`` in the result), executes only the
        missing :class:`RunSpec`\\ s, and rewrites the directory as a
        finished fleet.
        """
        from .runner import resume_sweep  # deferred: runner imports us
        return resume_sweep(self.directory, jobs=jobs, executor=executor,
                            cache=cache, progress=progress)
