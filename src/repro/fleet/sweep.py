"""Sweep declarations: a fleet of runs as one serializable value.

A :class:`SweepSpec` is to a campaign what a
:class:`~repro.scenarios.spec.ScenarioSpec` is to a city: plain data.
It composes base scenario specs, named override axes, and a seed list
into a grid of runs, mirroring the two-stage decomposition of
stochastic programs — the first stage fixes the shared world (base
spec + per-variant overrides), the second stage resolves each variant
under every seed.  ``expand()`` flattens the sweep into concrete
:class:`RunSpec` values; each finished run reduces to a
:class:`RunRecord`, the portable result that crosses process
boundaries and lands in the on-disk store.

Run identity is *content-addressed*: :func:`run_key` hashes a run's
complete inputs — canonical ``(spec JSON, seed, density)`` — into a
SHA-256 digest, every finished :class:`RunRecord` is stamped with that
digest (``spec_key``), and :func:`record_matches_spec` verifies a
stored record against the :class:`RunSpec` it claims to answer.  The
positional ``run_id`` (``name-v012-s42``) is display metadata only;
resume, caching, and cross-fleet comparison all align on content.

Every class here round-trips losslessly through ``to_dict``/``from_dict``
and JSON, like the scenario layers they build on.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..core.evaluation import EvaluationSummary
from ..scenarios.identity import build_key as spec_build_key
from ..scenarios.spec import ScenarioSpec

__all__ = [
    "RunRecord",
    "RunSpec",
    "SweepAxis",
    "SweepSpec",
    "canonical_dumps",
    "record_matches_spec",
    "run_key",
]


def canonical_dumps(value: Any) -> str:
    """Digest-stable JSON: sorted keys, compact separators.

    Two structurally equal values always serialize to the same bytes,
    so hashing this text gives a stable content address.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def run_key(spec: ScenarioSpec, seed: int, density: float) -> str:
    """SHA-256 content address of one run's complete inputs."""
    payload = {"spec": spec.to_dict(), "seed": int(seed),
               "density": float(density)}
    return hashlib.sha256(canonical_dumps(payload).encode()).hexdigest()


@dataclass(frozen=True)
class SweepAxis:
    """One named dimension of a sweep: a dotted override path and the
    values it takes."""

    path: str                  #: dotted path for ``with_overrides``
    values: tuple[Any, ...]    #: plain JSON values, one per variant
    name: str = ""             #: display name; defaults to ``path``

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("axis path must be non-empty")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.label!r} has no values")

    @property
    def label(self) -> str:
        return self.name or self.path

    def to_dict(self) -> dict[str, Any]:
        return {"path": self.path, "values": list(self.values),
                "name": self.name}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxis":
        return cls(**data)


@dataclass(frozen=True)
class SweepSpec:
    """A fleet declaration: base specs x override axes x seeds.

    ``mode="cartesian"`` crosses every axis with every other;
    ``mode="zip"`` walks all axes in lockstep (they must share one
    length).  Multiple base specs multiply the variant grid across
    cities.  ``density`` is the drive-test sampling density
    (``mean_positions_per_cell``) shared by every run.
    """

    bases: tuple[ScenarioSpec, ...]
    axes: tuple[SweepAxis, ...] = ()
    seeds: tuple[int, ...] = (42,)
    mode: str = "cartesian"
    density: float = 6.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "bases", tuple(
            b if isinstance(b, ScenarioSpec) else ScenarioSpec.from_dict(b)
            for b in self.bases))
        object.__setattr__(self, "axes", tuple(
            a if isinstance(a, SweepAxis) else SweepAxis.from_dict(a)
            for a in self.axes))
        object.__setattr__(self, "seeds",
                           tuple(int(s) for s in self.seeds))
        if not self.bases:
            raise ValueError("sweep needs at least one base scenario")
        names = [b.name for b in self.bases]
        if len(set(names)) != len(names):
            raise ValueError(f"base scenario names must be unique: {names}")
        labels = [a.label for a in self.axes]
        if len(set(labels)) != len(labels):
            raise ValueError(f"axis labels must be unique: {labels}")
        if not self.seeds:
            raise ValueError("sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(
                f"seeds must be unique (run ids collide): {self.seeds}")
        if self.mode not in ("cartesian", "zip"):
            raise ValueError(f"unknown sweep mode {self.mode!r}")
        if self.mode == "zip":
            lengths = {len(a.values) for a in self.axes}
            if len(lengths) > 1:
                raise ValueError(
                    f"zipped axes must share one length, got {sorted(lengths)}")
        if self.density <= 0:
            raise ValueError("density must be positive")

    # -- expansion --------------------------------------------------------

    def combos(self) -> list[tuple[tuple[SweepAxis, Any], ...]]:
        """Per-variant ``(axis, value)`` combinations, in sweep order."""
        if not self.axes:
            return [()]
        if self.mode == "zip":
            return [tuple(zip(self.axes, values))
                    for values in zip(*(a.values for a in self.axes))]
        return [tuple(zip(self.axes, values))
                for values in itertools.product(
                    *(a.values for a in self.axes))]

    @property
    def variant_count(self) -> int:
        return len(self.bases) * len(self.combos())

    @property
    def run_count(self) -> int:
        return self.variant_count * len(self.seeds)

    def expand(self) -> tuple["RunSpec", ...]:
        """Flatten into concrete runs: every base x variant x seed."""
        runs: list[RunSpec] = []
        for base in self.bases:
            for index, combo in enumerate(self.combos()):
                patched = base.with_overrides(
                    {axis.path: value for axis, value in combo})
                variant = ((("scenario", base.name),)
                           if len(self.bases) > 1 else ())
                variant += tuple((axis.label, value)
                                 for axis, value in combo)
                for seed in self.seeds:
                    runs.append(RunSpec(
                        run_id=f"{base.name}-v{index:03d}-s{seed}",
                        scenario=patched, seed=seed,
                        density=self.density, variant=variant))
        return tuple(runs)

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "bases": [b.to_dict() for b in self.bases],
            "axes": [a.to_dict() for a in self.axes],
            "seeds": list(self.seeds),
            "mode": self.mode,
            "density": self.density,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        return cls(**data)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))


def _variant_pairs(variant: Sequence[Any]) -> tuple[tuple[str, Any], ...]:
    return tuple((str(k), v) for k, v in variant)


@dataclass(frozen=True)
class RunSpec:
    """One concrete unit of fleet work: a patched spec at one seed."""

    run_id: str
    scenario: ScenarioSpec
    seed: int
    density: float = 6.0
    variant: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.run_id:
            raise ValueError("run id must be non-empty")
        if not isinstance(self.scenario, ScenarioSpec):
            object.__setattr__(self, "scenario",
                               ScenarioSpec.from_dict(self.scenario))
        object.__setattr__(self, "variant", _variant_pairs(self.variant))

    def spec_key(self) -> str:
        """The run's content identity: :func:`run_key` over its inputs."""
        return run_key(self.scenario, self.seed, self.density)

    def build_key(self) -> str:
        """The run's *build* identity: runs sharing it differ only in
        sampling-layer fields and can evaluate against one compiled
        scenario (see :mod:`repro.scenarios.identity`)."""
        return spec_build_key(self.scenario, self.seed, self.density)

    def legacy_identity(self) -> tuple[Any, ...]:
        """The metadata identity a digest-less (v2) record can be
        checked against; see :meth:`RunRecord.legacy_identity`."""
        return (self.scenario.name, self.seed, float(self.density),
                self.variant)

    def to_dict(self) -> dict[str, Any]:
        return {"run_id": self.run_id,
                "scenario": self.scenario.to_dict(),
                "seed": self.seed, "density": self.density,
                "variant": [list(p) for p in self.variant]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        return cls(**data)


@dataclass(frozen=True)
class RunRecord:
    """The portable result of one run: metadata + the summary record.

    A pure function of ``(scenario, seed, density)`` — wall-clock
    timing deliberately lives in the manifest, not here, so serial and
    parallel executions of the same sweep produce bit-identical
    records.  ``spec_key`` is the :func:`run_key` digest of the inputs
    the record was computed from; records written before manifest
    schema v3 lack it (empty string) and fall back to the
    ``(scenario, seed, density, variant)`` tuple for identity.
    """

    run_id: str
    scenario: str
    seed: int
    density: float
    variant: tuple[tuple[str, Any], ...]
    summary: EvaluationSummary
    spec_key: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "variant", _variant_pairs(self.variant))
        if isinstance(self.summary, Mapping):
            object.__setattr__(self, "summary",
                               EvaluationSummary.from_dict(self.summary))

    def legacy_identity(self) -> tuple[Any, ...]:
        """The identity a digest-less (v2) record still carries:
        ``(scenario, seed, density, variant)``.  Weaker than
        ``spec_key`` — it cannot see base-spec edits that leave these
        four unchanged — but it is all the metadata such records have.
        """
        return (self.scenario, self.seed, float(self.density),
                self.variant)

    def variant_key(self) -> tuple[tuple[str, Any], ...]:
        """The record's grid coordinates, shared across seeds: the
        variant pairs with the scenario prepended (when not already an
        axis) and the sampling density appended — the grouping key for
        per-variant aggregation and cross-fleet alignment."""
        key = self.variant
        if not any(name == "scenario" for name, _ in key):
            key = (("scenario", self.scenario),) + key
        return key + (("density", self.density),)

    def axis_value(self, key: str, default: Any = None) -> Any:
        """The run's value on one axis; ``scenario``/``seed`` always
        resolve."""
        for name, value in self.variant:
            if name == key:
                return value
        if key == "scenario":
            return self.scenario
        if key == "seed":
            return self.seed
        return default

    def to_dict(self) -> dict[str, Any]:
        data = {"run_id": self.run_id, "scenario": self.scenario,
                "seed": self.seed, "density": self.density,
                "variant": [list(p) for p in self.variant],
                "summary": self.summary.to_dict()}
        if self.spec_key:
            # Omitted when absent so v2 (digest-less) records
            # round-trip to their original payload bytes.
            data["spec_key"] = self.spec_key
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(**data)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))


def record_matches_spec(record: RunRecord, run: RunSpec) -> bool:
    """Whether ``record`` was computed from exactly ``run``'s inputs.

    The stale-record guard behind resume: matching on ``run_id`` alone
    would silently reuse records computed under an edited manifest
    spec.  Stamped records compare content digests, which cover the
    complete inputs.  Digest-less (v2) records can only be checked
    against the metadata they carry — ``(scenario, seed, density,
    variant)`` — which catches axis/seed/density edits but *not* a
    base-spec edit that leaves all four unchanged; records written at
    schema v3 or later close that gap.
    """
    if record.spec_key:
        return record.spec_key == run.spec_key()
    return record.legacy_identity() == run.legacy_identity()
