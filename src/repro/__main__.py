"""Command-line interface: ``python -m repro <command>``.

Commands
--------
evaluate      run the Section IV campaign, print Fig. 2/3, Table I and
              the gap analysis (``--scenario NAME`` or ``--spec FILE``
              picks the world; default klagenfurt)
scenarios     list registered scenarios, or dump one as JSON
sweep         run a parameter sweep / multi-seed fleet over scenario
              specs (``--set path=v1,v2,...`` per axis, ``--seeds``,
              ``--backend``, ``--jobs``, ``--cache``, ``--out``;
              ``--resume`` finishes an interrupted fleet directory;
              ``--backend remote --server URL`` executes on a fleet
              service's workers)
serve         run the fleet service: an HTTP control plane (scenario
              registry, fleet submission, NDJSON progress streams,
              compare reports, worker lease/result plane) over one
              shared result cache, with periodic cache GC
worker        lease runs from a fleet service and evaluate them via
              the compiled/batch path, posting records back
cache         inspect (``cache stats``) or garbage-collect
              (``cache gc --max-bytes --max-age``) a shared cache
              directory, both result and compiled tiers
compare       align two or more fleet directories (or result caches)
              by run content identity and print per-variant metric
              deltas (``--baseline``, ``--csv``, ``--json``;
              ``--fail-on METRIC:PCT`` gates CI with a nonzero exit)
lint          statically check the determinism contracts (REP001..
              REP006: ambient randomness, wall-clock reads, unordered
              iteration, SIMD transcendentals, frozen-spec mutation,
              executor payloads) and the thread-safety contracts
              (REP101..REP106: guarded attributes, blocking under
              locks, shared mutable class state, thread daemon flags,
              lock ordering, executor-boundary cache mutation) against
              ``[tool.repro-lint]`` and the committed baseline; exit 1
              on any new finding (``--select``/``--ignore`` filter by
              code or family, ``--explain REPxxx`` documents one rule)
peering       run the Section V-A local-peering what-if
upf           run the Section V-B UPF placement comparison
cpf           run the Section V-C control-plane comparison
requirements  print the Section III requirements matrix
upgrade       run the Section VI 6G upgrade arms
"""

from __future__ import annotations

import argparse
import json
import sys

from . import __version__, scenarios, units
from .apps import all_profiles
from .core import (
    CpfEnhancementStudy,
    FIVE_G_CAPABILITY,
    InfrastructureEvaluation,
    KlagenfurtScenario,
    LocalPeeringExperiment,
    RequirementsAnalysis,
    SIX_G_CAPABILITY,
    SixGUpgradeStudy,
    UpfPlacementStudy,
    render_comparison_table,
)


def _resolve_spec(args: argparse.Namespace):
    """The selected spec, or a clean CLI error for bad user input."""
    try:
        if args.spec:
            return scenarios.load_spec(args.spec)
        return scenarios.get(args.scenario)
    except (KeyError, OSError, TypeError, ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"error: {message}", file=sys.stderr)
        return None


def cmd_evaluate(args: argparse.Namespace) -> int:
    scenario = _resolve_spec(args)
    if scenario is None:
        return 2
    result = InfrastructureEvaluation(seed=args.seed,
                                      scenario=scenario).run()
    print(result.figure2(), end="\n\n")
    print(result.figure3(), end="\n\n")
    print(result.table1(), end="\n\n")
    print(f"Fig. 4 detour: {result.figure4_km():.0f} km\n")
    print(result.gap.summary())
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    if args.scenario != "klagenfurt" or args.spec or args.json:
        # Dump one spec as JSON (default scenario name only with --json).
        spec = _resolve_spec(args)
        if spec is None:
            return 2
        print(spec.to_json())
        return 0
    rows = []
    for name in scenarios.names():
        spec = scenarios.get(name)
        rows.append([name, f"{spec.grid.cols}x{spec.grid.rows}",
                     len(spec.radio.sites), len(spec.systems),
                     len(spec.nodes), spec.description])
    print(render_comparison_table(
        ["scenario", "grid", "sites", "ASes", "nodes", "description"],
        rows, title="Registered scenarios"))
    print("\nrun one:  python -m repro evaluate --scenario NAME")
    print("export:   python -m repro scenarios --scenario NAME --json")
    return 0


def _parse_value(text: str):
    """A ``--set`` value: JSON scalar if it parses, bare string if not."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_seeds(text: str) -> tuple[int, ...]:
    """``"42"``, ``"42,43,44"`` or the range ``"42:46"`` (end exclusive)."""
    text = text.strip()
    if ":" in text:
        start_s, _, stop_s = text.partition(":")
        start, stop = int(start_s), int(stop_s)
        if stop <= start:
            raise ValueError(f"empty seed range {text!r}")
        return tuple(range(start, stop))
    return tuple(int(part) for part in text.split(","))


def cmd_sweep(args: argparse.Namespace) -> int:
    from .fleet import (FleetStore, SweepAxis, SweepSpec, fleet_summary,
                        make_executor, print_progress, run_sweep)

    backend = None if args.backend == "auto" else args.backend
    if backend == "remote":
        # The one backend with connection state: build it here so the
        # URL travels with it (run_sweep only threads jobs through).
        if not args.server:
            print("error: --backend remote needs --server URL",
                  file=sys.stderr)
            return 2
        backend = make_executor("remote", jobs=args.jobs,
                                server=args.server)
    cache = args.cache or None
    progress_fn = print_progress if args.progress else None
    try:
        if args.resume:
            if not args.out:
                raise ValueError(
                    "--resume needs --out DIR (the fleet to finish)")
            print(f"resuming {args.out}/ (jobs={args.jobs})")
            result = FleetStore(args.out).resume(
                jobs=args.jobs, executor=backend, cache=cache,
                progress=progress_fn)
            print(f"re-ran {len(result) - result.cached_count} missing "
                  f"runs, reused {result.cached_count}")
        else:
            if args.spec:
                bases = [scenarios.load_spec(args.spec)]
            else:
                bases = [scenarios.get(name.strip())
                         for name in args.scenario.split(",")]
            axes = []
            for setting in args.set or []:
                path, sep, values = setting.partition("=")
                if not sep or not values:
                    raise ValueError(
                        f"--set wants path=v1,v2,..., got {setting!r}")
                axes.append(SweepAxis(
                    path=path.strip(),
                    values=tuple(_parse_value(v)
                                 for v in values.split(","))))
            sweep = SweepSpec(
                bases=tuple(bases), axes=tuple(axes),
                seeds=_parse_seeds(args.seeds),
                mode="zip" if args.zip else "cartesian",
                density=args.density)
            print(f"expanding {sweep.variant_count} variants x "
                  f"{len(sweep.seeds)} seeds = {sweep.run_count} runs "
                  f"(backend={args.backend}, jobs={args.jobs})")
            result = run_sweep(sweep, jobs=args.jobs, executor=backend,
                               cache=cache, out=args.out or None,
                               progress=progress_fn)
    except (KeyError, OSError, TypeError, ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    print()
    print(fleet_summary(result))
    stats = result.exec_stats
    parts = []
    if "builds_performed" in stats:
        parts.append(f"{stats['builds_performed']} builds performed, "
                     f"{stats['builds_reused']} reused")
    if "result_cache_hits" in stats:
        parts.append(f"{stats['result_cache_misses']} evals computed, "
                     f"{stats['result_cache_hits']} served from cache")
    if parts:
        print("build/eval: " + "; ".join(parts))
    if result.cached_count:
        print(f"cache/resume: {result.cached_count}/{len(result)} "
              f"records reused without recompute")
    if args.out:
        print(f"\nmanifest + per-run records + summary.csv in {args.out}/")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .fleet import compare_paths, comparison_summary, parse_fail_on

    if len(args.paths) < 2:
        print("error: compare needs at least two fleet or cache "
              "directories", file=sys.stderr)
        return 2
    try:
        gates = [parse_fail_on(gate) for gate in args.fail_on or []]
        comparison = compare_paths(args.paths,
                                   baseline=args.baseline or None)
    except (FileNotFoundError, KeyError, OSError, TypeError,
            ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.json:
        print(comparison.to_json())
    else:
        print(comparison_summary(comparison))
    # Status lines go to stderr so --json/--csv consumers get a clean
    # machine-readable stdout.
    if args.csv:
        print(f"delta rows written to {comparison.to_csv(args.csv)}",
              file=sys.stderr)
    if gates:
        failures = comparison.failures(gates)
        if failures:
            print(f"FAIL: {len(failures)} gate violation(s)",
                  file=sys.stderr)
            for message in failures:
                print(f"  {message}", file=sys.stderr)
            return 1
        print("all gates passed", file=sys.stderr)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .lint import run_lint

    return run_lint(
        args.paths,
        output_format=args.format,
        write_baseline=args.write_baseline,
        no_baseline=args.no_baseline,
        list_rules=args.list_rules,
        select=tuple(args.select),
        ignore=tuple(args.ignore),
        explain=args.explain,
    )


def _parse_bytes(text: str) -> int:
    """A byte budget: plain int or K/M/G-suffixed (``"64M"``)."""
    text = text.strip()
    scale = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}
    suffix = text[-1:].upper()
    if suffix in scale:
        return int(float(text[:-1]) * scale[suffix])
    return int(text)


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import ReproService

    root = args.state or args.root
    try:
        max_bytes = _parse_bytes(args.max_bytes) \
            if args.max_bytes else None
        service = ReproService(
            root,
            host=args.host, port=args.port,
            cache_dir=args.cache or None,
            lease_ttl_s=args.lease_ttl,
            journal_fsync=bool(args.state),
            max_fleets=args.max_fleets,
            max_pending=args.max_pending,
            lease_rate_per_s=args.lease_rate,
            gc_max_bytes=max_bytes,
            gc_max_age_s=args.max_age,
            gc_interval_s=args.gc_interval)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"fleet service on {service.url}  (root {root}/, "
          f"cache {service.cache_dir}/)")
    recovery = service.recovery
    if recovery["fleets"]:
        print(f"journal recovery: {recovery['fleets']} fleet(s), "
              f"{recovery['records']} record(s) restored, "
              f"{recovery['requeued']} run(s) re-queued")
    print(service.last_gc.summary())
    print("submit:  POST /fleets   workers: python -m repro worker "
          f"--server {service.url}")

    def _drain_and_exit(signum: int, frame: object) -> None:
        # Graceful degradation: stop granting leases, let checked-out
        # work ack, sync the journal, exit 0.  Runs on a helper thread
        # because service.stop() joins threads the signal interrupted.
        def _shutdown() -> None:
            print("SIGTERM: draining (no new leases; waiting for "
                  "in-flight results)...")
            service.drain()
            service.httpd.shutdown()
        threading.Thread(target=_shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain_and_exit)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from .service import ServiceUnavailable, run_worker

    if not args.server:
        print("error: worker needs --server URL", file=sys.stderr)
        return 2
    try:
        completed = run_worker(
            args.server,
            worker_id=args.worker_id,
            poll_s=args.poll,
            max_idle_s=args.max_idle,
            max_runs=args.max_runs,
            max_retries=args.max_retries,
            cache_dir=args.cache or None,
            log=print)
    except KeyboardInterrupt:
        return 0
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # A malformed --server URL surfaces from urllib as a bare
        # ValueError; fail with a message, not a traceback.
        print(f"error: invalid server URL {args.server!r}: {exc}",
              file=sys.stderr)
        return 2
    print(f"worker done: {completed} runs evaluated")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .fleet import cache_usage, run_gc

    if len(args.paths) != 1 or args.paths[0] not in ("stats", "gc"):
        print("error: usage is 'cache stats' or 'cache gc', with "
              "--cache DIR naming the cache directory",
              file=sys.stderr)
        return 2
    action = args.paths[0]
    directory = args.cache or "result-cache"
    try:
        if action == "stats":
            usage = cache_usage(directory)
            print(json.dumps(usage.to_dict(), indent=2, sort_keys=True)
                  if args.json else usage.summary())
        else:
            max_bytes = _parse_bytes(args.max_bytes) \
                if args.max_bytes else None
            report = run_gc(directory, max_bytes=max_bytes,
                            max_age_s=args.max_age)
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True)
                  if args.json else report.summary())
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_peering(args: argparse.Namespace) -> int:
    outcome = LocalPeeringExperiment(
        KlagenfurtScenario(seed=args.seed)).run()
    print(f"AS path {outcome.before_as_path} -> {outcome.after_as_path}")
    print(f"route   {outcome.before_path_km:.0f} km -> "
          f"{outcome.after_path_km:.1f} km")
    print(f"RTT     {units.to_ms(outcome.before_rtt_s):.1f} ms -> "
          f"{units.to_ms(outcome.after_rtt_s):.2f} ms "
          f"({outcome.rtt_reduction_factor:.0f}x)")
    return 0


def cmd_upf(args: argparse.Namespace) -> int:
    study = UpfPlacementStudy()
    rows = [[name, units.to_ms(rtt)] for name, rtt in
            study.compare().items()]
    print(render_comparison_table(
        ["deployment", "service RTT (ms)"], rows,
        title="UPF placement (URLLC profile)"))
    print(f"edge reduction vs 62 ms: "
          f"{100 * study.reduction_vs_measured(units.ms(62.0)):.0f}%")
    return 0


def cmd_cpf(args: argparse.Namespace) -> int:
    comparisons = CpfEnhancementStudy().compare_all()
    rows = [[c.procedure, units.to_ms(c.centralised_s),
             units.to_ms(c.ric_consolidated_s),
             100 * c.improvement_fraction] for c in comparisons]
    print(render_comparison_table(
        ["procedure", "centralised (ms)", "RIC-consolidated (ms)",
         "improvement (%)"], rows,
        title="Control-plane enhancement"))
    return 0


def cmd_requirements(args: argparse.Namespace) -> int:
    rows = []
    for capability in (FIVE_G_CAPABILITY, SIX_G_CAPABILITY):
        for verdict in RequirementsAnalysis(capability).judge_all(
                all_profiles()):
            rows.append([verdict.generation, verdict.application,
                         "ok" if verdict.satisfied else "FAIL",
                         verdict.latency_headroom])
    print(render_comparison_table(
        ["generation", "application", "verdict", "latency headroom"],
        rows, title="Requirements analysis (Section III)"))
    return 0


def cmd_upgrade(args: argparse.Namespace) -> int:
    reports = SixGUpgradeStudy(seed=args.seed,
                               mean_positions_per_cell=2.0).run()
    rows = []
    for name, report in reports.items():
        rows.append([name, units.to_ms(report.mobile_mean_s),
                     "yes" if SixGUpgradeStudy.meets_requirement(report)
                     else "no"])
    print(render_comparison_table(
        ["deployment arm", "campaign mean RTL (ms)", "meets 20 ms"],
        rows, title="6G upgrade study"))
    return 0


COMMANDS = {
    "evaluate": cmd_evaluate,
    "scenarios": cmd_scenarios,
    "sweep": cmd_sweep,
    "serve": cmd_serve,
    "worker": cmd_worker,
    "cache": cmd_cache,
    "compare": cmd_compare,
    "lint": cmd_lint,
    "peering": cmd_peering,
    "upf": cmd_upf,
    "cpf": cmd_cpf,
    "requirements": cmd_requirements,
    "upgrade": cmd_upgrade,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of '6G Infrastructures for Edge AI'")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("command", choices=sorted(COMMANDS),
                        help="which experiment to run")
    parser.add_argument("paths", nargs="*", metavar="DIR",
                        help="with compare: two or more fleet "
                             "directories or result caches (first is "
                             "the baseline unless --baseline is "
                             "given); with lint: files/directories to "
                             "check (default: the configured paths); "
                             "with cache: the action, stats or gc")
    parser.add_argument("--seed", type=int, default=42,
                        help="scenario seed (default 42)")
    parser.add_argument("--scenario", default="klagenfurt",
                        help="registered scenario name (default "
                             "klagenfurt); see the scenarios command")
    parser.add_argument("--spec", default="",
                        help="path to a ScenarioSpec JSON file "
                             "(overrides --scenario)")
    parser.add_argument("--json", action="store_true",
                        help="with scenarios: dump the selected spec "
                             "as JSON; with compare: print the full "
                             "comparison as JSON instead of the table")
    parser.add_argument("--set", action="append", metavar="PATH=V1,V2",
                        help="with sweep: one axis of dotted-path "
                             "override values (repeatable)")
    parser.add_argument("--seeds", default="42",
                        help="with sweep: seed list 'a,b,c' or range "
                             "'a:b' (end exclusive; default 42)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="with sweep: worker processes (default 1 "
                             "= serial)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "batch", "serial", "process",
                                 "thread", "remote"],
                        help="with sweep: execution backend (auto = "
                             "batch when --jobs 1, else process; "
                             "remote needs --server)")
    parser.add_argument("--cache", default="", metavar="DIR",
                        help="with sweep/serve/worker: "
                             "content-addressed cache directory; with "
                             "cache: the directory to inspect/collect "
                             "(default result-cache)")
    parser.add_argument("--server", default="", metavar="URL",
                        help="with sweep --backend remote and worker: "
                             "fleet service base URL")
    parser.add_argument("--root", default="fleet-service",
                        metavar="DIR",
                        help="with serve: service state directory for "
                             "fleet outputs (default fleet-service)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="with serve: bind address (default "
                             "127.0.0.1)")
    parser.add_argument("--port", type=int, default=8642,
                        help="with serve: TCP port, 0 = ephemeral "
                             "(default 8642)")
    parser.add_argument("--lease-ttl", type=float, default=60.0,
                        dest="lease_ttl", metavar="SECONDS",
                        help="with serve: worker lease timeout before "
                             "a run is re-queued (default 60)")
    parser.add_argument("--state", default="", metavar="DIR",
                        help="with serve: durable-state mode — use DIR "
                             "as the service root and fsync every "
                             "journal append; a restarted server "
                             "replays the journal and resumes its "
                             "fleets")
    parser.add_argument("--max-fleets", type=int, default=None,
                        dest="max_fleets", metavar="N",
                        help="with serve: refuse new submissions (429) "
                             "while N fleets are already in flight")
    parser.add_argument("--max-pending", type=int, default=None,
                        dest="max_pending", metavar="N",
                        help="with serve: bound the submission queue — "
                             "429 when queued runs would exceed N")
    parser.add_argument("--lease-rate", type=float, default=None,
                        dest="lease_rate", metavar="PER_S",
                        help="with serve: per-worker lease grant rate "
                             "cap, in grants per second")
    parser.add_argument("--max-bytes", default="",
                        dest="max_bytes", metavar="N[K|M|G]",
                        help="with serve/cache gc: evict "
                             "least-recently-used cache entries until "
                             "the combined tiers fit this budget")
    parser.add_argument("--max-age", type=float, default=None,
                        dest="max_age", metavar="SECONDS",
                        help="with serve/cache gc: drop cache entries "
                             "older than this")
    parser.add_argument("--gc-interval", type=float, default=300.0,
                        dest="gc_interval", metavar="SECONDS",
                        help="with serve: seconds between periodic GC "
                             "passes (default 300)")
    parser.add_argument("--worker-id", default="", dest="worker_id",
                        help="with worker: stable identity reported "
                             "to the service (default worker-<pid>)")
    parser.add_argument("--poll", type=float, default=0.5,
                        help="with worker: idle poll interval in "
                             "seconds (default 0.5)")
    parser.add_argument("--max-idle", type=float, default=None,
                        dest="max_idle", metavar="SECONDS",
                        help="with worker: exit after this long "
                             "without work (default: run forever)")
    parser.add_argument("--max-runs", type=int, default=None,
                        dest="max_runs", metavar="N",
                        help="with worker: exit after N completed "
                             "runs (default: unlimited)")
    parser.add_argument("--max-retries", type=int, default=5,
                        dest="max_retries", metavar="N",
                        help="with worker: connection attempts (with "
                             "exponential backoff) per request before "
                             "giving up (default 5)")
    parser.add_argument("--resume", action="store_true",
                        help="with sweep: finish the fleet in --out, "
                             "re-running only missing records")
    parser.add_argument("--progress", action="store_true",
                        help="with sweep: print one done/total line "
                             "per finished run (default quiet)")
    parser.add_argument("--out", default="",
                        help="with sweep: directory for manifest + "
                             "per-run records + CSV")
    parser.add_argument("--density", type=float, default=6.0,
                        help="with sweep: mean drive-test positions "
                             "per cell (default 6)")
    parser.add_argument("--zip", action="store_true",
                        help="with sweep: walk axes in lockstep "
                             "instead of the cartesian product")
    parser.add_argument("--baseline", default="", metavar="DIR",
                        help="with compare: which of the given paths "
                             "is the reference (default: the first)")
    parser.add_argument("--fail-on", action="append", dest="fail_on",
                        metavar="METRIC:PCT",
                        help="with compare: exit 1 if METRIC moves "
                             "more than PCT%% on any common variant, "
                             "or if the variant grids drifted "
                             "(repeatable; metrics: mobile_mean_ms, "
                             "mobile_wired_factor, exceedance_percent, "
                             "detour_km)")
    parser.add_argument("--csv", default="", metavar="FILE",
                        help="with compare: also write the delta rows "
                             "as CSV")
    parser.add_argument("--format", default="text",
                        choices=["text", "json"],
                        help="with lint: report format (default text)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="with lint: accept the current findings "
                             "as the committed baseline")
    parser.add_argument("--no-baseline", action="store_true",
                        help="with lint: report every finding, "
                             "ignoring the baseline file")
    parser.add_argument("--list-rules", action="store_true",
                        help="with lint: print the REP rule catalog "
                             "and exit")
    parser.add_argument("--select", action="append", default=[],
                        metavar="RULE",
                        help="with lint: only run these rule codes or "
                             "categories (determinism|concurrency); "
                             "repeatable")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="RULE",
                        help="with lint: skip these rule codes or "
                             "categories; repeatable")
    parser.add_argument("--explain", default=None, metavar="REPxxx",
                        help="with lint: print one rule's contract "
                             "and fix guidance, then exit")
    args = parser.parse_args(argv)
    if args.paths and args.command not in ("compare", "lint", "cache"):
        # The DIR positionals exist for compare and lint alone;
        # swallowing them elsewhere would turn a typo into a
        # silently-defaulted run.
        parser.error(f"unrecognized arguments for {args.command}: "
                     f"{' '.join(args.paths)}")
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
