"""Deterministic fault injection for the fleet service.

A *fault schedule* is a list of :class:`FaultSpec` rules compiled into
one callable (:class:`FaultSchedule`) that plugs into the ``fault_hook``
seams threaded through the service stack:

* :class:`~repro.service.client.ServiceClient` calls the hook once per
  request attempt with the op name (``"POST /lease"``); the returned
  verb simulates the network fault — ``drop-request`` (request lost
  before the server saw it), ``drop-response`` (server processed it,
  answer lost — the ambiguous case idempotency exists for), or
  ``duplicate`` (request delivered twice).
* :class:`~repro.service.broker.FleetBroker` calls it at named internal
  points (``"broker.ack"`` — after the journal append, before the HTTP
  ack); the ``crash`` action raises :class:`SimulatedCrash` there,
  modelling a server death in the exact window durability must cover.
* A worker loop is killed by the ``kill`` action, which raises
  :class:`WorkerKilled` out of whatever request the rule matches —
  e.g. ``FaultSpec(op="POST /lease", after=3, action="kill")`` is
  "kill the worker after three leases".
* ``delay`` sleeps ``delay_s`` before the attempt proceeds.

Every rule fires by *count*, never by chance: ``after`` skips the
first N matching calls, ``times`` arms it for the next M (0 = forever).
Given the same components and schedule, the same calls fire the same
faults — chaos runs are replayable, which is what lets the suite
assert byte-identical records under every schedule.  The ``seed``
only feeds the data-corruption helpers (:func:`seeded_bytes`,
:func:`corrupt_cache_entry`); no global RNG state is touched.

The schedule is thread-safe (workers hit it concurrently) and counts
every decision in ``fired`` for post-hoc assertions.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from threading import Lock
from typing import Optional, Sequence, Union

__all__ = [
    "ACTIONS",
    "FaultInjected",
    "FaultSchedule",
    "FaultSpec",
    "SimulatedCrash",
    "WorkerKilled",
    "corrupt_cache_entry",
    "seeded_bytes",
]

#: Verbs the client seam interprets directly.
CLIENT_VERBS = ("drop-request", "drop-response", "duplicate")
#: Every recognised action.
ACTIONS = CLIENT_VERBS + ("delay", "kill", "crash")


class FaultInjected(Exception):
    """Base of every exception the harness raises on purpose."""


class WorkerKilled(FaultInjected):
    """The schedule killed a worker mid-session (``kill`` action)."""


class SimulatedCrash(FaultInjected):
    """The schedule crashed the server at an internal point
    (``crash`` action) — state already journaled, ack never sent."""


@dataclass(frozen=True)
class FaultSpec:
    """One rule: *when* (op pattern + counters) and *what* (action).

    ``op`` is an :func:`fnmatch.fnmatchcase` pattern against the hook's
    op name — ``"POST /lease"`` matches exactly, ``"POST *"`` matches
    every POST, ``"broker.*"`` the broker's internal points.  The rule
    skips its first ``after`` matches, then fires ``times`` times
    (``times=0`` = every time from there on).
    """

    op: str
    action: str
    after: int = 0
    times: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {ACTIONS}")
        if self.after < 0 or self.times < 0:
            raise ValueError("after/times must be non-negative")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")


class FaultSchedule:
    """A compiled schedule: callable as every ``fault_hook`` seam.

    Rules are consulted in order; the first *armed* match decides the
    call (one call, one fault — deterministic layering).  The same
    instance can back the server's broker hook and any number of
    client hooks at once.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), *,
                 seed: int = 0,
                 sleep=time.sleep) -> None:
        self.specs = list(specs)
        self.seed = seed
        self._sleep = sleep
        self._lock = Lock()
        self._matches = [0] * len(self.specs)
        #: every fault that fired, as ``(op, action)`` in call order.
        self.fired: list[tuple[str, str]] = []

    @classmethod
    def parse(cls, rules: Sequence[Union[FaultSpec, dict]], *,
              seed: int = 0) -> "FaultSchedule":
        """Build a schedule from specs or plain dicts (JSON-friendly,
        so CI jobs and docs can write schedules as literals)."""
        specs = [rule if isinstance(rule, FaultSpec)
                 else FaultSpec(**rule) for rule in rules]
        return cls(specs, seed=seed)

    def _decide(self, op: str) -> Optional[FaultSpec]:
        with self._lock:
            for index, spec in enumerate(self.specs):
                if not fnmatchcase(op, spec.op):
                    continue
                count = self._matches[index]
                self._matches[index] = count + 1
                if count < spec.after:
                    continue
                if spec.times and count >= spec.after + spec.times:
                    continue
                self.fired.append((op, spec.action))
                return spec
            return None

    def __call__(self, op: str) -> Optional[str]:
        spec = self._decide(op)
        if spec is None:
            return None
        if spec.action == "delay":
            if spec.delay_s > 0:
                self._sleep(spec.delay_s)   # outside the lock
            return None
        if spec.action == "kill":
            raise WorkerKilled(f"fault schedule killed worker at {op}")
        if spec.action == "crash":
            raise SimulatedCrash(f"fault schedule crashed server "
                                 f"at {op}")
        return spec.action                  # a client verb

    def fired_actions(self, action: str) -> int:
        """How many times ``action`` fired so far."""
        with self._lock:
            return sum(1 for _, fired in self.fired if fired == action)


def seeded_bytes(seed: int, length: int, *, label: str = "") -> bytes:
    """``length`` deterministic garbage bytes from ``(seed, label)``.

    A BLAKE2b output stream — no RNG state, same bytes every run, so
    a "corruption" fault is as replayable as everything else.
    """
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.blake2b(
            f"{seed}:{label}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[:length])


def corrupt_cache_entry(cache_dir: Union[str, Path], key: str, *,
                        seed: int = 0) -> Path:
    """Deterministically corrupt one shared-cache object in place.

    Overwrites the entry for ``key`` with seeded garbage of the same
    length, modelling on-disk rot.  The cache's payload-digest check
    must then treat the entry as a miss (and recompute) rather than
    serve bad bytes — the chaos suite asserts exactly that.
    """
    # Deferred import: keep this module importable on bare worker
    # hosts that never install the fleet layer.
    from ..fleet.cache import ResultCache

    path = ResultCache(Path(cache_dir)).path_for(key)
    if not path.exists():
        raise FileNotFoundError(f"no cache object for {key!r} "
                                f"at {path}")
    size = max(1, path.stat().st_size)
    path.write_bytes(seeded_bytes(seed, size, label=key))
    return path
