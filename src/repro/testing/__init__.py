"""Deterministic test harnesses shipped with the package.

:mod:`repro.testing.faults` is the fault-injection DSL the chaos
suite drives the fleet service with; it lives in the package (not in
``tests/``) so external deployments can chaos-test their own setups
with the exact harness CI uses.
"""

from .faults import (
    ACTIONS,
    FaultInjected,
    FaultSchedule,
    FaultSpec,
    SimulatedCrash,
    WorkerKilled,
    corrupt_cache_entry,
    seeded_bytes,
)

__all__ = [
    "ACTIONS",
    "FaultInjected",
    "FaultSchedule",
    "FaultSpec",
    "SimulatedCrash",
    "WorkerKilled",
    "corrupt_cache_entry",
    "seeded_bytes",
]
