"""The declarative scenario model: a city as serializable data.

A scenario used to be imperative code — ~500 lines of hand-wired grid,
population, radio, AS-graph, and campaign objects per city.  This module
replaces that with a layered spec: every layer is a frozen dataclass
holding only plain values (floats, strings, ints, tuples), composed into
one :class:`ScenarioSpec` that round-trips losslessly through
``to_dict``/``from_dict`` and JSON.  The compiler in
:mod:`repro.scenarios.build` turns a spec plus a seed into a runnable
world.

Design rules:

* **Plain values only.**  Enums are stored by their ``value`` string,
  locations as ``(lat, lon)`` float pairs, mappings as ordered tuples of
  pairs.  ``json.loads(json.dumps(spec.to_dict()))`` reconstructs the
  spec exactly (Python's JSON float serialisation is repr-exact).
* **Order is meaning.**  Node, link, and AS tuples compile in spec
  order; stochastic per-cell draws consume the seeded stream in grid
  order — so equal specs plus equal seeds give bit-identical campaigns.
* **Factories compute, specs store.**  Derived geometry (a grid origin
  placed so the probe lands in a given cell) is computed once in the
  spec factory (e.g. :func:`repro.scenarios.klagenfurt.klagenfurt`) and
  stored as concrete numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import (
    Any,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Union,
    get_args,
    get_origin,
    get_type_hints,
)

from ..geo.coords import GeoPoint
from ..geo.grid import Grid
from ..ran.channel import ChannelModel
from ..ran.spectrum import Band, Generation, Numerology, RadioConfig

__all__ = [
    "GridSpec",
    "PopulationSpec",
    "SiteSpec",
    "RadioSpec",
    "ASSpec",
    "NodeSpec",
    "LinkSpec",
    "GatewaySpec",
    "PeerSpec",
    "ProbeSpec",
    "CampaignSpec",
    "ScenarioSpec",
]


def _pairs(mapping: Mapping[Any, Any] | Sequence[Any]
           ) -> tuple[tuple[Any, Any], ...]:
    """Normalise a mapping (or pair sequence) to an ordered pair tuple.

    Mapping inputs are canonicalised by sorted key (REP003): a dict's
    pair order is its insertion history, so two structurally equal
    dicts built in different orders would otherwise serialize — and
    content-hash — differently.  Explicit pair *sequences* keep their
    caller-chosen order; they already are ordered values.
    """
    if isinstance(mapping, Mapping):
        items: Iterable[Any] = sorted(
            mapping.items(), key=lambda pair: str(pair[0]))
    else:
        items = mapping
    return tuple((k, tuple(v) if isinstance(v, (list, tuple)) else v)
                 for k, v in items)


def _int_pairs(seq: Sequence[Any]) -> tuple[tuple[int, int], ...]:
    return tuple((int(a), int(b)) for a, b in seq)


def _is_optional(owner: Any, field_name: str) -> bool:
    """Whether a dataclass field is declared ``Optional[...]``."""
    hint = get_type_hints(type(owner)).get(field_name)
    return (hint is not None and get_origin(hint) is Union
            and type(None) in get_args(hint))


def _coerced(old: Any, new: Any, path: str, *,
             optional: bool = False) -> Any:
    """``new`` checked (and minimally promoted) against the value it
    replaces; raises :class:`TypeError` on a kind mismatch."""
    if new is None:
        if optional or old is None:
            return None
        raise TypeError(
            f"override {path!r}: None is not allowed over non-optional "
            f"{type(old).__name__} {old!r}")
    if old is None:
        return new                     # Optional field currently unset
    if isinstance(old, bool) or isinstance(new, bool):
        if isinstance(old, bool) and isinstance(new, bool):
            return new
    elif isinstance(old, float):
        if isinstance(new, (int, float)):
            return float(new)          # ints promote into float fields
    elif isinstance(old, int):
        if isinstance(new, int):
            return new
    elif isinstance(old, str):
        if isinstance(new, str):
            return new
    elif is_dataclass(old):
        if isinstance(new, type(old)):
            return new
        if isinstance(new, Mapping):
            return type(old).from_dict(new)
    elif isinstance(old, tuple):
        if isinstance(new, (list, tuple)):
            return tuple(new)          # __post_init__ normalises members
    raise TypeError(
        f"override {path!r}: cannot assign {type(new).__name__} "
        f"{new!r} over {type(old).__name__} {old!r}")


def _patched(value: Any, parts: Sequence[str], new: Any, path: str) -> Any:
    """``value`` rebuilt with ``new`` applied at the dotted ``parts``."""
    head, rest = parts[0], parts[1:]
    if isinstance(value, tuple):
        try:
            index = int(head)
        except ValueError:
            raise KeyError(
                f"override {path!r}: {head!r} is not an integer index "
                f"into a tuple field") from None
        if not 0 <= index < len(value):
            raise KeyError(
                f"override {path!r}: index {index} out of range "
                f"(field has {len(value)} entries)")
        replacement = (_patched(value[index], rest, new, path) if rest
                       else _coerced(value[index], new, path))
        return value[:index] + (replacement,) + value[index + 1:]
    if is_dataclass(value):
        names = [f.name for f in fields(value)]
        if head not in names:
            raise KeyError(
                f"override {path!r}: {type(value).__name__} has no field "
                f"{head!r}; known: {', '.join(names)}")
        current = getattr(value, head)
        replacement = (_patched(current, rest, new, path) if rest
                       else _coerced(current, new, path,
                                     optional=_is_optional(value, head)))
        return replace(value, **{head: replacement})
    raise KeyError(
        f"override {path!r}: cannot descend into "
        f"{type(value).__name__} at {head!r}")


@dataclass(frozen=True)
class GridSpec:
    """Geometry of the sector grid (the paper's Fig. 1 partitioning)."""

    origin_lat: float          #: NW-corner latitude, WGS-84 degrees
    origin_lon: float          #: NW-corner longitude
    cell_size_m: float = 1000.0
    cols: int = 6
    rows: int = 7

    def build(self) -> Grid:
        return Grid(GeoPoint(self.origin_lat, self.origin_lon),
                    cell_size_m=self.cell_size_m,
                    cols=self.cols, rows=self.rows)

    def to_dict(self) -> dict[str, Any]:
        return {"origin_lat": self.origin_lat,
                "origin_lon": self.origin_lon,
                "cell_size_m": self.cell_size_m,
                "cols": self.cols, "rows": self.rows}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GridSpec":
        return cls(**data)


@dataclass(frozen=True)
class PopulationSpec:
    """Clark-model density raster substitute + the measurement mask."""

    centre_lat: float
    centre_lon: float
    core_density: float = 4200.0   #: inhabitants/km2 at the core
    scale_m: float = 2000.0        #: e-folding radius
    floor: float = 40.0            #: rural background density
    #: cells at or above this density are traversed; the rest masked
    density_threshold: float = 1000.0

    @property
    def centre(self) -> GeoPoint:
        return GeoPoint(self.centre_lat, self.centre_lon)

    def to_dict(self) -> dict[str, Any]:
        return {"centre_lat": self.centre_lat,
                "centre_lon": self.centre_lon,
                "core_density": self.core_density,
                "scale_m": self.scale_m, "floor": self.floor,
                "density_threshold": self.density_threshold}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PopulationSpec":
        return cls(**data)


@dataclass(frozen=True)
class SiteSpec:
    """One macro gNB site anchored to a grid cell."""

    cell: str                  #: cell label, e.g. ``"B2"``
    load: float = 0.55         #: scheduler base load in [0, 1)
    name: str = ""             #: defaults to ``gnb-<cell>``

    @property
    def gnb_name(self) -> str:
        return self.name or f"gnb-{self.cell.lower()}"

    def to_dict(self) -> dict[str, Any]:
        return {"cell": self.cell, "load": self.load, "name": self.name}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SiteSpec":
        return cls(**data)


@dataclass(frozen=True)
class RadioSpec:
    """Air interface + channel + site lattice of the operator.

    The :class:`~repro.ran.spectrum.RadioConfig` fields are stored flat
    (enums by value) so any profile — including hand-tuned overrides —
    serialises losslessly.
    """

    sites: tuple[SiteSpec, ...]
    # RadioConfig (flat)
    generation: str = "5g"
    numerology_mu: int = 1
    band: str = "fr1"
    sr_period_slots: int = 8
    grant_delay_slots: int = 3
    harq_rtt_slots: int = 8
    target_bler: float = 0.1
    max_harq_retx: int = 3
    configured_grant: bool = False
    processing_base_s: float = 1.2e-3
    buffer_service_s: float = 6e-3
    # ChannelModel
    tx_power_dbm: float = 44.0
    antenna_gain_db: float = 8.0
    noise_figure_db: float = 9.0
    bandwidth_hz: float = 100e6
    shadowing_sigma_db: float = 6.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "sites", tuple(
            s if isinstance(s, SiteSpec) else SiteSpec.from_dict(s)
            for s in self.sites))
        if not self.sites:
            raise ValueError("radio spec needs at least one site")

    @classmethod
    def from_config(cls, config: RadioConfig,
                    sites: Sequence[SiteSpec],
                    **channel: float) -> "RadioSpec":
        """Capture an existing :class:`RadioConfig` object losslessly."""
        return cls(
            sites=tuple(sites),
            generation=config.generation.value,
            numerology_mu=config.numerology.mu,
            band=config.band.value,
            sr_period_slots=config.sr_period_slots,
            grant_delay_slots=config.grant_delay_slots,
            harq_rtt_slots=config.harq_rtt_slots,
            target_bler=config.target_bler,
            max_harq_retx=config.max_harq_retx,
            configured_grant=config.configured_grant,
            processing_base_s=config.processing_base_s,
            buffer_service_s=config.buffer_service_s,
            **channel)

    def build_config(self) -> RadioConfig:
        return RadioConfig(
            generation=Generation(self.generation),
            numerology=Numerology(self.numerology_mu),
            band=Band(self.band),
            sr_period_slots=self.sr_period_slots,
            grant_delay_slots=self.grant_delay_slots,
            harq_rtt_slots=self.harq_rtt_slots,
            target_bler=self.target_bler,
            max_harq_retx=self.max_harq_retx,
            configured_grant=self.configured_grant,
            processing_base_s=self.processing_base_s,
            buffer_service_s=self.buffer_service_s)

    def build_channel(self, seed: int) -> ChannelModel:
        return ChannelModel(
            self.build_config().carrier_frequency_hz,
            tx_power_dbm=self.tx_power_dbm,
            antenna_gain_db=self.antenna_gain_db,
            noise_figure_db=self.noise_figure_db,
            bandwidth_hz=self.bandwidth_hz,
            shadowing_sigma_db=self.shadowing_sigma_db,
            seed=seed)

    def to_dict(self) -> dict[str, Any]:
        data = {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "sites"}
        data["sites"] = [s.to_dict() for s in self.sites]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RadioSpec":
        data = dict(data)
        data["sites"] = tuple(SiteSpec.from_dict(s)
                              for s in data.get("sites", ()))
        return cls(**data)


@dataclass(frozen=True)
class ASSpec:
    """One autonomous system of the scenario's internet."""

    asn: int
    name: str
    kind: str = "transit"       #: an :class:`~repro.net.asn.ASKind` value
    ptr_template: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"asn": self.asn, "name": self.name, "kind": self.kind,
                "ptr_template": self.ptr_template}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ASSpec":
        return cls(**data)


@dataclass(frozen=True)
class NodeSpec:
    """One router/server/gateway/probe vertex of the topology."""

    name: str
    kind: str                   #: a :class:`~repro.net.node.NodeKind` value
    lat: float
    lon: float
    asn: Optional[int] = None
    address: str = ""           #: dotted-quad, empty for none
    display: str = ""           #: PTR-style display name
    forwarding_delay_s: float = -1.0   #: negative -> kind default

    @property
    def location(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "lat": self.lat, "lon": self.lon, "asn": self.asn,
                "address": self.address, "display": self.display,
                "forwarding_delay_s": self.forwarding_delay_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeSpec":
        return cls(**data)


@dataclass(frozen=True)
class LinkSpec:
    """One bidirectional link of the topology."""

    a: str
    b: str
    rate_bps: float
    kind: str = "fibre"         #: a :class:`~repro.net.link.LinkKind` value
    length_m: Optional[float] = None   #: None -> great circle x circuity
    utilisation: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"a": self.a, "b": self.b, "rate_bps": self.rate_bps,
                "kind": self.kind, "length_m": self.length_m,
                "utilisation": self.utilisation}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkSpec":
        return cls(**data)


@dataclass(frozen=True)
class GatewaySpec:
    """A user-plane breakout site: gateway node + its UPF deployment."""

    name: str
    node_name: str
    upf_name: str
    lat: float
    lon: float
    tier: str = "regional_core"    #: a :class:`~repro.cn.nf.SiteTier` value
    pipeline_s: float = 12e-6
    rule_count: int = 1000
    throughput_bps: float = 40e9
    load: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "node_name": self.node_name,
                "upf_name": self.upf_name, "lat": self.lat,
                "lon": self.lon, "tier": self.tier,
                "pipeline_s": self.pipeline_s,
                "rule_count": self.rule_count,
                "throughput_bps": self.throughput_bps, "load": self.load}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GatewaySpec":
        return cls(**data)


@dataclass(frozen=True)
class PeerSpec:
    """A mobile peer UE target, described by its radio situation."""

    name: str
    air_load: float = 0.6
    sinr_db: float = 12.0
    gateway: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "air_load": self.air_load,
                "sinr_db": self.sinr_db, "gateway": self.gateway}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PeerSpec":
        return cls(**data)


@dataclass(frozen=True)
class ProbeSpec:
    """A measurement endpoint bound to a topology node."""

    probe_id: int
    name: str
    node_name: str
    lat: float
    lon: float
    kind: str = "anchor"        #: a :class:`~repro.probes.atlas.ProbeKind`

    @property
    def location(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)

    def to_dict(self) -> dict[str, Any]:
        return {"probe_id": self.probe_id, "name": self.name,
                "node_name": self.node_name, "lat": self.lat,
                "lon": self.lon, "kind": self.kind}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProbeSpec":
        return cls(**data)


@dataclass(frozen=True)
class CampaignSpec:
    """The drive-test calibration tables, as data.

    Mappings are ordered pair tuples (``(key, value), ...``) so the spec
    stays hashable-free, comparable, and JSON-exact; keys are cell
    labels.  ``extra_load_range`` describes the *seeded* spatial
    congestion field: at build time one uniform draw per traversed cell
    (in grid order) from the ``scenario.load`` stream, after which
    ``extra_load_anchors`` overwrite their cells.
    """

    default_gateway: str
    gateways: tuple[GatewaySpec, ...]
    peers: tuple[PeerSpec, ...] = ()
    default_targets: tuple[str, ...] = ()
    #: (cell label, target name tuple) overrides of ``default_targets``
    cell_targets: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: (cell label, gateway name) breakout overrides
    gateway_by_cell: tuple[tuple[str, str], ...] = ()
    #: uniform(lo, hi) per-cell congestion field; None -> no random field
    extra_load_range: Optional[tuple[float, float]] = None
    #: (cell label, extra load) calibration anchors
    extra_load_anchors: tuple[tuple[str, float], ...] = ()
    #: (cell label, probability) handover interruption chances
    handover_prob: tuple[tuple[str, float], ...] = ()
    handover_interruption_s: float = 45e-3
    max_cell_load: float = 0.93
    #: radio-site index approximating the peer UEs' serving cell
    peer_site_index: int = 0
    #: drive-route dwell weighting: "population" or "uniform"
    route_weighting: str = "population"
    min_samples: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "gateways", tuple(
            g if isinstance(g, GatewaySpec) else GatewaySpec.from_dict(g)
            for g in self.gateways))
        object.__setattr__(self, "peers", tuple(
            p if isinstance(p, PeerSpec) else PeerSpec.from_dict(p)
            for p in self.peers))
        object.__setattr__(self, "default_targets",
                           tuple(self.default_targets))
        object.__setattr__(self, "cell_targets", _pairs(self.cell_targets))
        object.__setattr__(self, "gateway_by_cell",
                           _pairs(self.gateway_by_cell))
        if self.extra_load_range is not None:
            object.__setattr__(self, "extra_load_range",
                               tuple(self.extra_load_range))
        object.__setattr__(self, "extra_load_anchors",
                           _pairs(self.extra_load_anchors))
        object.__setattr__(self, "handover_prob", _pairs(self.handover_prob))
        if self.route_weighting not in ("population", "uniform"):
            raise ValueError(
                f"unknown route weighting {self.route_weighting!r}")
        if not any(g.name == self.default_gateway for g in self.gateways):
            raise ValueError(
                f"default gateway {self.default_gateway!r} not in spec")

    def to_dict(self) -> dict[str, Any]:
        return {
            "default_gateway": self.default_gateway,
            "gateways": [g.to_dict() for g in self.gateways],
            "peers": [p.to_dict() for p in self.peers],
            "default_targets": list(self.default_targets),
            "cell_targets": [[c, list(t)] for c, t in self.cell_targets],
            "gateway_by_cell": [list(p) for p in self.gateway_by_cell],
            "extra_load_range": (list(self.extra_load_range)
                                 if self.extra_load_range else None),
            "extra_load_anchors": [list(p)
                                   for p in self.extra_load_anchors],
            "handover_prob": [list(p) for p in self.handover_prob],
            "handover_interruption_s": self.handover_interruption_s,
            "max_cell_load": self.max_cell_load,
            "peer_site_index": self.peer_site_index,
            "route_weighting": self.route_weighting,
            "min_samples": self.min_samples,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        data = dict(data)
        if data.get("extra_load_range") is not None:
            data["extra_load_range"] = tuple(data["extra_load_range"])
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete city as one serializable value.

    Compile with :func:`repro.scenarios.build`; the result exposes the
    same surface the campaign and analysis layers consume
    (``grid``/``radio``/``routes``/``campaign_config``/...).
    """

    name: str
    grid: GridSpec
    population: PopulationSpec
    radio: RadioSpec
    campaign: CampaignSpec
    description: str = ""
    systems: tuple[ASSpec, ...] = ()
    #: (customer ASN, provider ASN) Gao-Rexford transit edges
    transits: tuple[tuple[int, int], ...] = ()
    #: (ASN, ASN) settlement-free peerings
    peerings: tuple[tuple[int, int], ...] = ()
    nodes: tuple[NodeSpec, ...] = ()
    links: tuple[LinkSpec, ...] = ()
    probes: tuple[ProbeSpec, ...] = ()
    #: Table-I-style trace endpoints (UE -> wired probe)
    reference_src: str = ""
    reference_dst: str = ""
    #: wired-baseline ping endpoints
    wired_src: str = ""
    wired_dst: str = ""
    #: hop name ending the Fig.-4-style geographic loop ("" -> full trace)
    detour_loop_end: str = ""
    detour_circuity: float = 1.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        for attr, kind in (("grid", GridSpec),
                           ("population", PopulationSpec),
                           ("radio", RadioSpec),
                           ("campaign", CampaignSpec)):
            value = getattr(self, attr)
            if not isinstance(value, kind):
                object.__setattr__(self, attr, kind.from_dict(value))
        object.__setattr__(self, "systems", tuple(
            s if isinstance(s, ASSpec) else ASSpec.from_dict(s)
            for s in self.systems))
        object.__setattr__(self, "transits", _int_pairs(self.transits))
        object.__setattr__(self, "peerings", _int_pairs(self.peerings))
        object.__setattr__(self, "nodes", tuple(
            n if isinstance(n, NodeSpec) else NodeSpec.from_dict(n)
            for n in self.nodes))
        object.__setattr__(self, "links", tuple(
            l if isinstance(l, LinkSpec) else LinkSpec.from_dict(l)
            for l in self.links))
        object.__setattr__(self, "probes", tuple(
            p if isinstance(p, ProbeSpec) else ProbeSpec.from_dict(p)
            for p in self.probes))

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "grid": self.grid.to_dict(),
            "population": self.population.to_dict(),
            "radio": self.radio.to_dict(),
            "systems": [s.to_dict() for s in self.systems],
            "transits": [list(p) for p in self.transits],
            "peerings": [list(p) for p in self.peerings],
            "nodes": [n.to_dict() for n in self.nodes],
            "links": [l.to_dict() for l in self.links],
            "probes": [p.to_dict() for p in self.probes],
            "campaign": self.campaign.to_dict(),
            "reference_src": self.reference_src,
            "reference_dst": self.reference_dst,
            "wired_src": self.wired_src,
            "wired_dst": self.wired_dst,
            "detour_loop_end": self.detour_loop_end,
            "detour_circuity": self.detour_circuity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(**data)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def override(self, **changes: Any) -> "ScenarioSpec":
        """A copy with top-level fields replaced (spec-level what-ifs)."""
        return replace(self, **changes)

    def with_overrides(self, overrides: Mapping[str, Any]
                       ) -> "ScenarioSpec":
        """A copy with dotted-path patches applied through the layers.

        Paths name nested dataclass fields, with integer segments
        indexing into tuple fields::

            spec.with_overrides({
                "campaign.handover_interruption_s": 30e-3,
                "radio.sites.0.load": 0.7,
                "population.density_threshold": 800.0,
            })

        An unknown path raises :class:`KeyError` (naming the known
        fields), a value of the wrong kind raises :class:`TypeError`,
        and ints promote into float fields.  Every patched layer is
        rebuilt through its constructor, so layer validation
        (``__post_init__``) reruns on the result.
        """
        spec = self
        # Sorted application order (REP003): override dicts carry no
        # meaningful order, so applying them alphabetically keeps the
        # patched spec independent of the caller's insertion history
        # (distinct dotted paths commute; overlapping ones now resolve
        # deterministically instead of by construction order).
        for path, value in sorted(overrides.items()):
            parts = path.split(".")
            if not path or any(not p for p in parts):
                raise KeyError(f"malformed override path {path!r}")
            spec = _patched(spec, parts, value, path)
        return spec
