"""Declarative scenario API: compile any city from a serializable spec.

A scenario is *data*, not code: a :class:`ScenarioSpec` composes the
grid, population, radio, AS-graph, gateway, peer, and campaign layers
into one value that round-trips through JSON, and :func:`build` is the
single compiler that turns any spec plus a seed into a runnable world.

Quickstart::

    from repro.scenarios import build, klagenfurt

    scenario = build(klagenfurt(), seed=42)
    dataset = scenario.run_campaign()
    print(scenario.reference_trace().render_table())

Registered scenarios are listed by :func:`names` and fetched with
:func:`get`; custom cities come from a JSON file via :func:`load_spec`
or from your own spec factory (register it to make
``python -m repro evaluate --scenario yours`` work).
"""


from __future__ import annotations

from .build import BuiltScenario, build, build_count
from .identity import build_key, build_payload
from .klagenfurt import klagenfurt
from .registry import get, load_spec, names, register
from .skopje import skopje
from .spec import (
    ASSpec,
    CampaignSpec,
    GatewaySpec,
    GridSpec,
    LinkSpec,
    NodeSpec,
    PeerSpec,
    PopulationSpec,
    ProbeSpec,
    RadioSpec,
    ScenarioSpec,
    SiteSpec,
)

__all__ = [
    "ASSpec", "CampaignSpec", "GatewaySpec", "GridSpec", "LinkSpec",
    "NodeSpec", "PeerSpec", "PopulationSpec", "ProbeSpec", "RadioSpec",
    "ScenarioSpec", "SiteSpec",
    "BuiltScenario", "build", "build_count",
    "build_key", "build_payload",
    "register", "get", "names", "load_spec",
    "klagenfurt", "skopje",
]

register("klagenfurt", klagenfurt)
register("skopje", skopje)
