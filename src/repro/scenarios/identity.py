"""Build-layer vs. sampling-layer identity of a scenario spec.

The two-phase build/run split rests on a precise partition of
:class:`~repro.scenarios.spec.ScenarioSpec` fields:

* **build-layer** fields feed :class:`~repro.scenarios.build
  .BuiltScenario` and the :class:`~repro.probes.kernel.CampaignKernel`
  precompute — grid, population, radio sites, topology, routes, target
  tables, gateways, the seeded extra-load *draws*, the drive route.
  Editing one invalidates the compiled scenario.
* **sampling-layer** fields only parameterise the per-run sampling
  phase.  Two runs whose specs differ only here can share one compiled
  scenario bit-identically:

  - ``campaign.extra_load_anchors`` — applied *after* the seeded draws
    (pure overwrite; no stream consumption),
  - ``campaign.handover_prob`` / ``campaign.handover_interruption_s``
    — read only inside the sampling loop,
  - ``campaign.max_cell_load`` — the clamp applied to per-run loads,
  - ``campaign.peer_site_index`` — selects among already-built sites,
  - per-peer ``air_load`` / ``sinr_db`` — the peer's radio situation
    (its ``name`` and ``gateway`` stay build-layer: they decide which
    transit paths get compiled),
  - the free-text ``description``.

:func:`build_key` hashes the build-layer payload together with
``(seed, density)`` — both feed the build phase (extra-load draws,
shadowing, the route walk; density sizes the route) — giving the
content address compiled scenarios are cached under, alongside the
existing all-inclusive :func:`~repro.fleet.sweep.run_key`.

New spec fields default to the build layer — the safe direction: any
edit forces a rebuild.  ``tests/test_scenario_identity.py`` asserts
the partition is exhaustive, so adding a field forces an explicit
classification decision here.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from .spec import ScenarioSpec

__all__ = [
    "SAMPLING_CAMPAIGN_FIELDS",
    "SAMPLING_PEER_FIELDS",
    "SAMPLING_SCENARIO_FIELDS",
    "build_key",
    "build_payload",
]

#: Top-level ``ScenarioSpec`` fields that never reach the build phase.
SAMPLING_SCENARIO_FIELDS: frozenset[str] = frozenset({"description"})

#: ``CampaignSpec`` fields read only by the per-run sampling phase.
SAMPLING_CAMPAIGN_FIELDS: frozenset[str] = frozenset({
    "extra_load_anchors",
    "handover_prob",
    "handover_interruption_s",
    "max_cell_load",
    "peer_site_index",
})

#: ``PeerSpec`` fields read only by the per-run sampling phase.
SAMPLING_PEER_FIELDS: frozenset[str] = frozenset({"air_load", "sinr_db"})


def build_payload(spec: ScenarioSpec) -> dict[str, Any]:
    """The spec's build-layer content as a plain JSON-able dict.

    Starts from the complete ``to_dict`` payload and *removes* the
    sampling-layer fields, so a field this module has never heard of
    lands in the build layer automatically.
    """
    payload = spec.to_dict()
    for name in SAMPLING_SCENARIO_FIELDS:
        payload.pop(name, None)
    campaign = payload["campaign"]
    for name in SAMPLING_CAMPAIGN_FIELDS:
        campaign.pop(name, None)
    campaign["peers"] = [
        {key: value for key, value in peer.items()
         if key not in SAMPLING_PEER_FIELDS}
        for peer in campaign["peers"]]
    return payload


def build_key(spec: ScenarioSpec, seed: int, density: float) -> str:
    """SHA-256 content address of one run's *build* inputs.

    Runs sharing a ``build_key`` differ only in sampling-layer fields
    and can evaluate against one compiled scenario.  Serialisation
    mirrors :func:`repro.fleet.sweep.canonical_dumps` (sorted keys,
    compact separators), kept local because :mod:`repro.scenarios`
    sits below the fleet layer.
    """
    payload = {"build": build_payload(spec), "seed": int(seed),
               "density": float(density)}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()
