"""The scenario compiler: ``build(spec, seed) -> BuiltScenario``.

One engine turns any :class:`~repro.scenarios.spec.ScenarioSpec` into a
runnable world.  :class:`BuiltScenario` exposes the exact surface the
campaign and analysis layers consume — ``grid``, ``population``,
``radio``, ``topology``, ``asgraph``, ``routes``, ``campaign_config``,
``probes``, ``drive_route``, ``reference_trace``, ``wired_baseline`` —
so everything downstream of :class:`~repro.core.evaluation
.InfrastructureEvaluation` runs unchanged on any city.

Determinism contract: every stochastic component draws from named
streams of one :class:`~repro.sim.rng.RngRegistry` rooted at the build
seed (``scenario.load``, ``scenario.route``, ``scenario.wired``, plus
the campaign's per-cell streams), and per-cell draws consume the stream
in grid order — equal spec + equal seed gives a bit-identical campaign.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import units
from ..cn.nf import SiteTier
from ..cn.upf import UserPlaneFunction
from ..geo.coords import GeoPoint, path_length
from ..geo.grid import CellId, Grid
from ..geo.mobility import DriveTestRoute
from ..geo.population import RadialPopulationModel
from ..net.address import IPv4Address
from ..net.asn import ASGraph, ASKind, AutonomousSystem
from ..net.link import LinkKind
from ..net.node import Node, NodeKind
from ..net.routing import RouteComputer
from ..net.topology import Topology
from ..net.traceroute import TracerouteResult, traceroute
from ..probes.atlas import Probe, ProbeKind, ProbeRegistry
from ..probes.campaign import (
    CampaignConfig,
    DriveTestCampaign,
    Gateway,
    MobilePeer,
)
from ..probes.ping import ping
from ..probes.results import MeasurementDataset
from ..probes.stats import CellStatistics
from ..ran.gnb import GNodeB, RadioNetwork
from ..sim.rng import RngRegistry
from .spec import ScenarioSpec

__all__ = ["BuiltScenario", "build", "build_count"]

#: Process-wide count of scenario compilations.  Instrumentation for
#: the build/run split: tests and benchmarks snapshot it around a sweep
#: to assert how many builds the compiled-scenario cache actually
#: performed (e.g. exactly one for a campaign-only sweep).
_BUILD_COUNT = 0


def build_count() -> int:
    """How many :class:`BuiltScenario` compilations this process ran."""
    return _BUILD_COUNT


class BuiltScenario:
    """A compiled scenario: the world every study layer runs against."""

    def __init__(self, spec: ScenarioSpec, seed: int = 42) -> None:
        global _BUILD_COUNT
        _BUILD_COUNT += 1
        self.spec = spec
        self.seed = seed
        self.rng = RngRegistry(seed)
        self._build_grid()
        self._build_population()
        self._build_radio()
        self._build_internet()
        self._build_probes()
        self._build_campaign_config()

    # ------------------------------------------------------------------
    # geography
    # ------------------------------------------------------------------

    def _build_grid(self) -> None:
        self.grid: Grid = self.spec.grid.build()

    def _build_population(self) -> None:
        pop = self.spec.population
        self.population = RadialPopulationModel(
            pop.centre, core_density=pop.core_density,
            scale_m=pop.scale_m, floor=pop.floor)
        self.traversed_cells = [
            cell for cell in self.grid.cells()
            if self.population.cell_density(self.grid, cell)
            >= pop.density_threshold]
        self.masked_cells = [cell for cell in self.grid.cells()
                             if cell not in set(self.traversed_cells)]

    # ------------------------------------------------------------------
    # radio layer
    # ------------------------------------------------------------------

    def _build_radio(self) -> None:
        radio = self.spec.radio
        self.radio_config = radio.build_config()
        self.channel = radio.build_channel(self.seed)
        gnbs = [GNodeB(
            name=site.gnb_name,
            location=self.grid.cell_center(CellId.from_label(site.cell)),
            config=self.radio_config,
            load=site.load,
        ) for site in radio.sites]
        self.radio = RadioNetwork(self.channel, gnbs)

    # ------------------------------------------------------------------
    # internet topology + policy
    # ------------------------------------------------------------------

    def _build_internet(self) -> None:
        topo = Topology(f"{self.spec.name}-internet")
        asg = ASGraph()
        for system in self.spec.systems:
            asg.add(AutonomousSystem(
                system.asn, system.name, kind=ASKind(system.kind),
                ptr_template=system.ptr_template))
        for customer, provider in self.spec.transits:
            asg.set_customer_of(customer, provider)
        for a, b in self.spec.peerings:
            asg.set_peers(a, b)

        for node in self.spec.nodes:
            topo.add_node(Node(
                name=node.name, kind=NodeKind(node.kind),
                location=node.location, asn=node.asn,
                address=(IPv4Address.parse(node.address)
                         if node.address else None),
                display_name=node.display,
                forwarding_delay_s=node.forwarding_delay_s))
        for link in self.spec.links:
            topo.connect(link.a, link.b, kind=LinkKind(link.kind),
                         rate_bps=link.rate_bps, length_m=link.length_m,
                         utilisation=link.utilisation)

        self.topology = topo
        self.asgraph = asg
        self.routes = RouteComputer(topo, asg)

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------

    def _build_probes(self) -> None:
        registry = ProbeRegistry()
        for probe in self.spec.probes:
            registry.register(Probe(
                probe_id=probe.probe_id, name=probe.name,
                node_name=probe.node_name, location=probe.location,
                kind=ProbeKind(probe.kind)))
        self.probes = registry

    # ------------------------------------------------------------------
    # campaign configuration (the calibration tables)
    # ------------------------------------------------------------------

    def _build_campaign_config(self) -> None:
        camp = self.spec.campaign
        gateways = {g.name: Gateway(g.name, g.node_name, UserPlaneFunction(
            name=g.upf_name, location=GeoPoint(g.lat, g.lon),
            tier=SiteTier(g.tier), pipeline_s=g.pipeline_s,
            rule_count=g.rule_count, throughput_bps=g.throughput_bps,
            load=g.load)) for g in camp.gateways}
        peers = {p.name: MobilePeer(
            name=p.name, air_load=p.air_load, sinr_db=p.sinr_db,
            gateway=p.gateway) for p in camp.peers}

        # Per-cell congestion field: seeded spatial noise plus anchors.
        # Draws consume the stream in grid order so equal specs + equal
        # seeds stay bit-identical (the anchors overwrite afterwards,
        # exactly like the original Klagenfurt construction).
        draws: dict[CellId, float] = {}
        if camp.extra_load_range is not None:
            lo, hi = camp.extra_load_range
            load_rng = self.rng.stream("scenario.load")
            for cell in self.traversed_cells:
                draws[cell] = float(load_rng.uniform(lo, hi))
        # The pre-anchor draws are build-layer state (they consumed the
        # stream); anchors are sampling-layer overwrites.  Keeping the
        # draws lets a compiled scenario re-apply any variant's anchors
        # without touching the stream.
        self.extra_load_draws = draws
        extra_load = dict(draws)
        for label, value in camp.extra_load_anchors:
            extra_load[CellId.from_label(label)] = value

        self.campaign_config = CampaignConfig(
            targets={CellId.from_label(label): tuple(names)
                     for label, names in camp.cell_targets},
            gateways=gateways,
            default_gateway=camp.default_gateway,
            peers=peers,
            default_targets=tuple(camp.default_targets),
            gateway_by_cell={CellId.from_label(label): gw
                             for label, gw in camp.gateway_by_cell},
            cell_extra_load=extra_load,
            handover_prob={CellId.from_label(label): p
                           for label, p in camp.handover_prob},
            handover_interruption_s=camp.handover_interruption_s,
            max_cell_load=camp.max_cell_load,
            peer_site_index=camp.peer_site_index,
        )

    # ------------------------------------------------------------------
    # campaign execution + headline artifacts
    # ------------------------------------------------------------------

    def drive_route(self, mean_positions_per_cell: float = 6.0
                    ) -> DriveTestRoute:
        """The drive-test traversal of the measured cells."""
        weights: Optional[dict[CellId, float]] = None
        if self.spec.campaign.route_weighting == "population":
            density = {cell: self.population.cell_density(self.grid, cell)
                       for cell in self.traversed_cells}
            mean_density = float(np.mean(list(density.values())))
            weights = {cell: d / mean_density
                       for cell, d in density.items()}
        return DriveTestRoute(
            self.grid, self.traversed_cells,
            self.rng.stream("scenario.route"),
            traffic_weight=weights,
            mean_samples_per_cell=mean_positions_per_cell,
            min_samples=self.spec.campaign.min_samples,
        )

    def campaign(self, mean_positions_per_cell: float = 6.0
                 ) -> DriveTestCampaign:
        """Build the (not yet run) drive-test campaign."""
        return DriveTestCampaign(
            grid=self.grid,
            route=self.drive_route(mean_positions_per_cell),
            radio=self.radio,
            routes=self.routes,
            config=self.campaign_config,
            rng=self.rng,
        )

    def run_campaign(self, mean_positions_per_cell: float = 6.0
                     ) -> MeasurementDataset:
        """Run the full drive test; returns the measurement dataset."""
        return self.campaign(mean_positions_per_cell).run()

    def statistics(self, dataset: MeasurementDataset) -> CellStatistics:
        """Per-cell aggregation of a campaign dataset."""
        return CellStatistics(self.grid, dataset)

    def wired_baseline(self, count: int = 50) -> np.ndarray:
        """Wired RTTs between the spec's baseline endpoints."""
        if not (self.spec.wired_src and self.spec.wired_dst):
            raise ValueError(
                f"scenario {self.spec.name!r} defines no wired baseline")
        return ping(self.routes, self.spec.wired_src, self.spec.wired_dst,
                    self.rng.stream("scenario.wired"), count=count)

    def reference_trace(self) -> TracerouteResult:
        """The Table-I-style hop chain between the reference endpoints."""
        if not (self.spec.reference_src and self.spec.reference_dst):
            raise ValueError(
                f"scenario {self.spec.name!r} defines no reference trace")
        route = self.routes.route(self.spec.reference_src,
                                  self.spec.reference_dst)
        return traceroute(self.topology, route)

    def detour_route_km(self) -> float:
        """Deployed-fibre length of the trace's geographic loop.

        The loop runs from the reference source up to (and including the
        hop after) ``spec.detour_loop_end`` — the Fig.-4 construction —
        or over the whole trace when no loop end is named.
        """
        trace = self.reference_trace()
        hops = [self.topology.node(h.node_name) for h in trace.hops]
        locations = [self.topology.node(self.spec.reference_src).location]
        locations += [h.location for h in hops]
        if self.spec.detour_loop_end:
            end_index = next(i for i, h in enumerate(hops)
                             if h.name == self.spec.detour_loop_end)
            locations = locations[: end_index + 2]
        return units.to_km(path_length(locations)
                           * self.spec.detour_circuity)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BuiltScenario({self.spec.name!r}, seed={self.seed}, "
                f"grid={self.grid.cols}x{self.grid.rows})")


def build(spec: ScenarioSpec, seed: int = 42) -> BuiltScenario:
    """Compile ``spec`` into a runnable world rooted at ``seed``."""
    return BuiltScenario(spec, seed)
