"""Named scenario registry + JSON spec loading.

Factories (not pre-built specs) are registered so each lookup returns a
fresh, independent :class:`~repro.scenarios.spec.ScenarioSpec` — specs
are frozen values, but keeping construction lazy means import order
cannot bake stale parametrisations into the table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from .spec import ScenarioSpec

__all__ = ["register", "get", "names", "load_spec"]

_FACTORIES: dict[str, Callable[[], ScenarioSpec]] = {}


def register(name: str, factory: Callable[[], ScenarioSpec], *,
             overwrite: bool = False) -> None:
    """Register a zero-argument spec factory under ``name``."""
    if not name:
        raise ValueError("scenario name must be non-empty")
    if name in _FACTORIES and not overwrite:
        raise ValueError(f"scenario {name!r} already registered")
    _FACTORIES[name] = factory


def get(name: str) -> ScenarioSpec:
    """The spec registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES)) or "<none>"
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}") from None
    return factory()


def names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_FACTORIES)


def load_spec(path: str | Path) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a JSON file."""
    return ScenarioSpec.from_json(Path(path).read_text())
