"""A second city — a Skopje-like world — as a spec factory.

The paper's future work calls for "expanding the geographical scope of
the evaluation to include diverse regions".  This spec deliberately
differs from Klagenfurt: a smaller 5x5 grid, four macro sites, a single
regional breakout in Sofia (no Frankfurt overflow pool), a flatter
congestion field, and no calibration anchors — yet its campaign still
exhibits the paper's qualitative structure (mobile RTL far above the
20 ms budget, border cells masked), because the structure comes from
the physics, not from Klagenfurt-specific constants.
"""

from __future__ import annotations

from ..geo.coords import GeoPoint
from ..geo.grid import CellId, Grid
from .spec import (
    ASSpec,
    CampaignSpec,
    GatewaySpec,
    GridSpec,
    LinkSpec,
    NodeSpec,
    PeerSpec,
    PopulationSpec,
    ProbeSpec,
    RadioSpec,
    ScenarioSpec,
    SiteSpec,
)

__all__ = ["skopje", "AS_MOBILE_MK", "AS_BALKAN_TRANSIT",
           "AS_EYEBALL_MK", "AS_CLOUD_SOF"]

AS_MOBILE_MK = 100        #: the Macedonian mobile operator
AS_BALKAN_TRANSIT = 200   #: regional wholesale transit (Sofia)
AS_EYEBALL_MK = 300       #: the Skopje access ISP
AS_CLOUD_SOF = 400        #: Sofia cloud region (wired baseline target)

SKOPJE = GeoPoint(41.9981, 21.4254)
SOFIA = GeoPoint(42.6977, 23.3219)    # the regional breakout city

_GBPS = 1e9


def skopje() -> ScenarioSpec:
    """The Skopje-like second-city :class:`ScenarioSpec`."""
    grid_spec = GridSpec(origin_lat=42.020, origin_lon=21.395,
                         cell_size_m=1000.0, cols=5, rows=5)
    grid: Grid = grid_spec.build()
    centre = grid.point_in_cell(CellId.from_label("C3"), 0.5, 0.5)
    population = PopulationSpec(
        centre_lat=centre.lat, centre_lon=centre.lon,
        core_density=5200.0, scale_m=1800.0, floor=60.0,
        density_threshold=1000.0)

    # Radio: four macro sites on the deployed 5G profile.
    radio = RadioSpec(
        sites=tuple(SiteSpec(cell=label, load=0.60)
                    for label in ("B2", "D2", "B4", "D4")),
        antenna_gain_db=28.0)

    # Internet: the mobile AS breaks out in Sofia; the local eyeball
    # hangs off a regional transit — the same hairpin structure as
    # Klagenfurt's Table I chain, in new geography.
    systems = (
        ASSpec(AS_MOBILE_MK, "mobile-mk", "mobile_isp"),
        ASSpec(AS_BALKAN_TRANSIT, "balkan-transit", "transit"),
        ASSpec(AS_EYEBALL_MK, "eyeball-mk", "access_isp"),
        ASSpec(AS_CLOUD_SOF, "cloud-sof", "cloud"),
    )
    transits = (
        (AS_MOBILE_MK, AS_BALKAN_TRANSIT),
        (AS_EYEBALL_MK, AS_BALKAN_TRANSIT),
        (AS_CLOUD_SOF, AS_BALKAN_TRANSIT),
    )

    c3 = grid.cell_center(CellId.from_label("C3"))
    b2 = grid.cell_center(CellId.from_label("B2"))
    nodes = (
        NodeSpec("ue-skp", "ue", lat=b2.lat, lon=b2.lon,
                 asn=AS_MOBILE_MK, address="10.20.0.77",
                 display="10.20.0.77"),
        NodeSpec("gw-sofia", "gateway", lat=SOFIA.lat, lon=SOFIA.lon,
                 asn=AS_MOBILE_MK, address="10.20.0.1",
                 display="10.20.0.1"),
        NodeSpec("tr-sofia", "router", lat=42.70, lon=23.33,
                 asn=AS_BALKAN_TRANSIT, address="185.60.10.1",
                 display="cr1.sof.balkan-transit.net"),
        NodeSpec("eye-skp", "router", lat=SKOPJE.lat, lon=SKOPJE.lon,
                 asn=AS_EYEBALL_MK, address="92.55.100.1",
                 display="br1.skp.eyeball.mk"),
        NodeSpec("probe-skp", "probe", lat=c3.lat, lon=c3.lon,
                 asn=AS_EYEBALL_MK, address="92.55.108.33",
                 display="92.55.108.33"),
        NodeSpec("cloud-sof", "server", lat=42.65, lon=23.38,
                 asn=AS_CLOUD_SOF, address="185.117.80.10",
                 display="sof-1.cloud-sof.net"),
    )
    # The UE leg stands in for air interface + GTP tunnel to the Sofia
    # breakout (the campaign itself models the radio stack instead).
    links = (
        LinkSpec("ue-skp", "gw-sofia", rate_bps=10 * _GBPS),
        LinkSpec("gw-sofia", "tr-sofia", rate_bps=100 * _GBPS,
                 utilisation=0.30),
        LinkSpec("tr-sofia", "eye-skp", rate_bps=40 * _GBPS,
                 utilisation=0.35),
        LinkSpec("eye-skp", "probe-skp", rate_bps=1 * _GBPS,
                 utilisation=0.20),
        LinkSpec("tr-sofia", "cloud-sof", rate_bps=100 * _GBPS,
                 utilisation=0.25),
    )

    probes = (
        ProbeSpec(probe_id=1, name="skp-anchor", node_name="probe-skp",
                  lat=c3.lat, lon=c3.lon, kind="anchor"),
    )

    campaign = CampaignSpec(
        default_gateway="sofia",
        gateways=(GatewaySpec(
            "sofia", "gw-sofia", "upf-sofia",
            lat=SOFIA.lat, lon=SOFIA.lon, tier="regional_core",
            pipeline_s=1.0e-3, rule_count=20_000,
            throughput_bps=40 * _GBPS, load=0.6),),
        peers=tuple(PeerSpec(f"peer-{i}", air_load=0.62)
                    for i in range(1, 9)),
        default_targets=tuple(f"peer-{i}" for i in range(1, 9))
        + ("probe-skp",),
        extra_load_range=(0.05, 0.2),
        route_weighting="uniform",
        min_samples=2,
    )

    return ScenarioSpec(
        name="skopje",
        description=("Skopje-like second city: 5x5 grid, four macro "
                     "sites, single Sofia breakout — same hairpin "
                     "structure, new geography"),
        grid=grid_spec,
        population=population,
        radio=radio,
        systems=systems,
        transits=transits,
        nodes=nodes,
        links=links,
        probes=probes,
        campaign=campaign,
        reference_src="ue-skp",
        reference_dst="probe-skp",
        wired_src="probe-skp",
        wired_dst="cloud-sof",
        detour_circuity=1.05,
    )
