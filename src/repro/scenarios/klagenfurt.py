"""The Klagenfurt evaluation world (Section IV-B) as a spec factory.

:func:`klagenfurt` distils the paper's scenario — the 6x7 grid around
the University of Klagenfurt, the six-AS internet behind the Table I
hop chain and the Fig. 4 Vienna-Prague-Bucharest-Vienna detour, the
six-site FR1 macro layer, and the per-cell calibration anchors
(C1 = min mean, C3 = max mean, B3 = min sigma, E5 = max sigma) — into a
:class:`~repro.scenarios.spec.ScenarioSpec`.  All derived geometry
(grid origin placed so the probe lands in E3, the population centre in
D4) is computed here once and stored as concrete coordinates.

The physical meaning of each calibration knob is documented in
:mod:`repro.core.scenario`, which is now a thin compatibility wrapper
compiling this spec.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geo.coords import GeoPoint
from ..geo.grid import CellId, Grid
from ..geo.places import BUCHAREST, FRANKFURT, GRAZ, PLACES, PRAGUE, VIENNA
from ..ran.spectrum import Generation, RadioConfig
from .spec import (
    ASSpec,
    CampaignSpec,
    GatewaySpec,
    GridSpec,
    LinkSpec,
    NodeSpec,
    PeerSpec,
    PopulationSpec,
    ProbeSpec,
    RadioSpec,
    ScenarioSpec,
    SiteSpec,
)

__all__ = ["klagenfurt", "AS_MOBILE", "AS_TRANSIT", "AS_PEERING_CZ",
           "AS_ZET", "AS_IX_TRANSIT", "AS_EYEBALL", "AS_CLOUD", "AS_NREN",
           "ANCHOR_EXTRA_LOAD", "ANCHOR_HANDOVER_PROB",
           "HANDOVER_INTERRUPTION_S"]

# AS numbers (the real operators' ASNs where known from Table I).
AS_MOBILE = 8447        #: the mobile operator (A1-like)
AS_TRANSIT = 60068      #: DataPacket / CDN77
AS_PEERING_CZ = 61414   #: zetservers @ peering.cz (Prague)
AS_ZET = 39737          #: zet.net / amanet (Bucharest)
AS_IX_TRANSIT = 39912   #: the Vienna-IX transit of the eyeball
AS_EYEBALL = 42473      #: ascus.at (Klagenfurt access ISP)
AS_CLOUD = 61098        #: Exoscale-like cloud (Vienna)
AS_NREN = 1853          #: ACOnet (Austrian NREN)

#: Grid geometry: university probe in E3, per Section IV-B.
_M_PER_DEG_LAT = 111_194.9
UNI = PLACES["university_klagenfurt"]

#: Per-cell congestion anchors on top of the site base load; the rest
#: of the spatial field is seeded (stream "scenario.load") at build.
ANCHOR_EXTRA_LOAD: dict[str, float] = {
    "C1": -0.01,   # the quietest measured cell -> 61 ms mean
    "C3": 0.33,    # the most congested cell -> 110 ms mean (see also
                   # its dedicated rush-hour peer set below)
    "B3": -0.34,   # nearly idle residential cell (load ~0.21)
    "E5": 0.135,   # moderately loaded, but see handover_prob
    "C2": 0.16,    # the Table I mobile node's cell (~65 ms to the probe)
    "C5": 0.18,    # arterial through-traffic keeps C5 off the minimum
}

#: Handover-interruption probability per measurement window.
ANCHOR_HANDOVER_PROB: dict[str, float] = {
    "E5": 0.35,    # coverage boundary: frequent interruptions
}

#: Interruption magnitude: handover plus occasional RRC re-establishment.
HANDOVER_INTERRUPTION_S: float = 130e-3

#: macro-site anchor cells (lattice across the grid)
_SITE_CELLS = ("B2", "D2", "F2", "B5", "D5", "F5")
_SITE_BASE_LOAD = 0.55

_GBPS = 1e9
_KM = 1000.0


def _grid_spec() -> GridSpec:
    m_per_deg_lon = _M_PER_DEG_LAT * float(np.cos(np.radians(UNI.lat)))
    # University at the centre of E3 (col 4, row 2).
    return GridSpec(
        origin_lat=UNI.lat + 2.5 * 1000.0 / _M_PER_DEG_LAT,
        origin_lon=UNI.lon - 4.5 * 1000.0 / m_per_deg_lon,
        cell_size_m=1000.0, cols=6, rows=7)


def klagenfurt(*, radio_config: Optional[RadioConfig] = None,
               edge_breakout: bool = False) -> ScenarioSpec:
    """The Klagenfurt :class:`ScenarioSpec`.

    Parameters
    ----------
    radio_config:
        Radio profile of all macro sites.  Defaults to the deployed 5G
        configuration; pass :meth:`RadioConfig.nr_6g` to model the 6G
        upgrade of the same footprint (the Sec. VI outlook).
    edge_breakout:
        Terminate the user plane at a Klagenfurt edge gateway instead
        of the Vienna CGNAT (the Sec. V-B remedy, applied campaign-wide).
    """
    grid_spec = _grid_spec()
    grid: Grid = grid_spec.build()
    config = radio_config if radio_config is not None \
        else RadioConfig.nr_5g()

    # Urban core between the university and the city centre; the scale
    # is calibrated so exactly 33 cells clear the paper's 1000 /km2
    # threshold (the other 9 are border cells).
    centre = grid.point_in_cell(CellId.from_label("D4"), 0.3, 0.3)
    population = PopulationSpec(
        centre_lat=centre.lat, centre_lon=centre.lon,
        core_density=4200.0, scale_m=2250.0, floor=40.0,
        density_threshold=1000.0)

    # 64T64R massive-MIMO beamforming gain keeps 1 km macro-cell UEs at
    # working SINR (without it the whole grid sits at the cell edge and
    # HARQ dominates every sample).
    radio = RadioSpec.from_config(
        config,
        sites=[SiteSpec(cell=label, load=_SITE_BASE_LOAD)
               for label in _SITE_CELLS],
        antenna_gain_db=28.0, shadowing_sigma_db=4.0)

    systems = (
        ASSpec(AS_MOBILE, "mobile-at", "mobile_isp"),
        ASSpec(AS_TRANSIT, "datapacket", "cdn"),
        ASSpec(AS_PEERING_CZ, "zetservers", "hosting"),
        ASSpec(AS_ZET, "zet-amanet", "hosting"),
        ASSpec(AS_IX_TRANSIT, "as39912", "transit"),
        ASSpec(AS_EYEBALL, "ascus", "access_isp"),
        ASSpec(AS_CLOUD, "exoscale", "cloud"),
        ASSpec(AS_NREN, "aconet", "education"),
    )
    # Gao-Rexford relationships producing the Table I chain.
    transits = (
        (AS_MOBILE, AS_TRANSIT),
        (AS_ZET, AS_PEERING_CZ),
        (AS_IX_TRANSIT, AS_ZET),       # Bucharest upstream
        (AS_EYEBALL, AS_IX_TRANSIT),
        (AS_CLOUD, AS_TRANSIT),        # cloud transit
    )
    peerings = [
        (AS_TRANSIT, AS_PEERING_CZ),   # Prague peering
        (AS_NREN, AS_CLOUD),           # VIX peering
    ]
    if edge_breakout:
        # The paper's V-A + V-B combination: the edge gateway peers
        # with the local eyeball directly.
        peerings.append((AS_MOBILE, AS_EYEBALL))

    c2 = grid.cell_center(CellId.from_label("C2"))
    e3 = grid.cell_center(CellId.from_label("E3"))
    kla_edge = GeoPoint(46.626, 14.306)   # edge breakout site
    kla_core = GeoPoint(46.628, 14.310)

    def node(name: str, kind: str, loc: GeoPoint, asn: int,
             addr: str = "", display: str = "",
             forwarding: float = -1.0) -> NodeSpec:
        return NodeSpec(name=name, kind=kind, lat=loc.lat, lon=loc.lon,
                        asn=asn, address=addr, display=display,
                        forwarding_delay_s=forwarding)

    nodes = (
        # --- AS_MOBILE: UE representative + gateways -------------------
        node("ue-c2", "ue", c2, AS_MOBILE,
             addr="10.12.128.77", display="10.12.128.77"),
        node("gw-vie", "gateway", VIENNA, AS_MOBILE,
             addr="10.12.128.1", display="10.12.128.1"),
        node("gw-fra", "gateway", FRANKFURT, AS_MOBILE,
             addr="10.14.0.1", display="10.14.0.1"),
        # Edge breakout site (used when edge_breakout=True): user plane
        # terminates in Klagenfurt, next to the probe's access network.
        node("gw-kla", "gateway", kla_edge, AS_MOBILE,
             addr="10.15.0.1", display="10.15.0.1"),
        # --- AS_TRANSIT: DataPacket/CDN77 ------------------------------
        node("dp-vie", "router", VIENNA, AS_TRANSIT,
             addr="37.19.223.61",
             display="unn-37-19-223-61.datapacket.com"),
        node("cdn77-vie", "router", VIENNA, AS_TRANSIT,
             addr="185.156.45.138",
             display="vl204.vie-itx1-core-2.cdn77.com"),
        node("dp-fra", "router", FRANKFURT, AS_TRANSIT,
             addr="37.19.200.1",
             display="unn-37-19-200-1.datapacket.com"),
        # --- AS_PEERING_CZ: zetservers @ peering.cz (Prague) -----------
        node("zet-prg", "router", PRAGUE, AS_PEERING_CZ,
             addr="185.0.20.31", display="zetservers.peering.cz"),
        # --- AS_ZET: zet.net / amanet (Bucharest) ----------------------
        node("zet-buh", "router", BUCHAREST, AS_ZET,
             addr="103.246.249.33", display="vie-dr2-cr1.zet.net"),
        node("amanet-buh", "router", BUCHAREST, AS_ZET,
             addr="185.104.63.33", display="amanet-cust.zet.net"),
        # --- AS_IX_TRANSIT: as39912 at the Vienna IX -------------------
        node("ix-vie", "router", VIENNA, AS_IX_TRANSIT,
             addr="185.211.219.155",
             display="ae2-97.mx204-1.ix.vie.at.as39912.net"),
        # --- AS_EYEBALL: ascus.at (Klagenfurt) -------------------------
        node("ascus-core", "router", kla_core, AS_EYEBALL,
             addr="195.16.228.3", display="003-228-016-195.ascus.at"),
        node("ascus-access", "router", GeoPoint(46.622, 14.296),
             AS_EYEBALL, addr="195.16.246.180",
             display="180-246-016-195.ascus.at"),
        node("probe-uni", "probe", e3, AS_EYEBALL,
             addr="195.140.139.133", display="195.140.139.133"),
        # --- AS_CLOUD + AS_NREN (wired baseline) -----------------------
        node("cloud-vie", "server", PLACES["exoscale_vienna"], AS_CLOUD,
             addr="194.182.160.10", display="vie-1.exoscale-like.net"),
        node("uni-wired", "server", UNI, AS_NREN,
             addr="143.205.1.10", display="atlas-anchor.uni-klu.ac.at"),
        # Campus edge: the deep-inspection firewall dominates the wired
        # baseline's processing share (calibrated to the 7-12 ms of [3]).
        node("uni-fw", "router", UNI, AS_NREN,
             addr="143.205.1.1", display="fw1.uni-klu.ac.at",
             forwarding=2.3e-3),
        node("acon-graz", "router", GRAZ, AS_NREN,
             addr="193.171.23.1", display="graz1.aco.net"),
        node("acon-vie", "router", VIENNA, AS_NREN,
             addr="193.171.23.33", display="vie1.aco.net"),
    )

    links = (
        # Mobile operator user plane.  The UE-to-gateway link stands in
        # for the RAN air interface + scheduler buffering + GTP tunnel
        # of the C2 cell; its effective length is that leg's median RTT
        # (~36 ms, what a mobile traceroute shows on hop 1).  The
        # campaign models this leg with the radio stack instead, and
        # the Fig. 4 geography uses node locations, not this length.
        LinkSpec("ue-c2", "gw-vie", rate_bps=10 * _GBPS,
                 length_m=3600.0 * _KM),
        # Frankfurt breakout rides the operator's long EU ring (via
        # Amsterdam), hence the explicit tunnel length.
        LinkSpec("gw-vie", "gw-fra", rate_bps=100 * _GBPS),
        LinkSpec("gw-vie", "gw-kla", rate_bps=100 * _GBPS),
        # The edge breakout peers directly with the local eyeball (the
        # Sec. V-A + V-B combination the paper recommends).
        LinkSpec("gw-kla", "ascus-core", rate_bps=100 * _GBPS),
        LinkSpec("gw-vie", "dp-vie", rate_bps=100 * _GBPS,
                 utilisation=0.30),
        LinkSpec("gw-fra", "dp-fra", rate_bps=100 * _GBPS,
                 length_m=1300.0 * _KM, utilisation=0.20),
        # Transit internals.
        LinkSpec("dp-vie", "cdn77-vie", rate_bps=100 * _GBPS,
                 kind="virtual", length_m=2_000.0, utilisation=0.35),
        LinkSpec("dp-fra", "cdn77-vie", rate_bps=100 * _GBPS,
                 utilisation=0.25),
        # Prague peering (CDN77 reaches peering.cz remotely from Vienna).
        LinkSpec("cdn77-vie", "zet-prg", rate_bps=100 * _GBPS,
                 utilisation=0.30),
        # zetservers -> Bucharest customer.
        LinkSpec("zet-prg", "zet-buh", rate_bps=40 * _GBPS,
                 utilisation=0.35),
        LinkSpec("zet-buh", "amanet-buh", rate_bps=40 * _GBPS,
                 kind="virtual", length_m=2_000.0, utilisation=0.30),
        # Bucharest upstream -> Vienna IX presence of as39912.
        LinkSpec("amanet-buh", "ix-vie", rate_bps=40 * _GBPS,
                 utilisation=0.35),
        # Eyeball transit + access chain down to the probe.
        LinkSpec("ix-vie", "ascus-core", rate_bps=40 * _GBPS,
                 utilisation=0.30),
        LinkSpec("ascus-core", "ascus-access", rate_bps=10 * _GBPS,
                 utilisation=0.40),
        LinkSpec("ascus-access", "probe-uni", rate_bps=1 * _GBPS,
                 utilisation=0.20),
        # Cloud attachment + NREN chain.
        LinkSpec("cloud-vie", "dp-vie", rate_bps=100 * _GBPS,
                 utilisation=0.25),
        LinkSpec("uni-wired", "uni-fw", rate_bps=10 * _GBPS,
                 kind="virtual", length_m=200.0, utilisation=0.30),
        LinkSpec("uni-fw", "acon-graz", rate_bps=10 * _GBPS,
                 utilisation=0.35),
        LinkSpec("acon-graz", "acon-vie", rate_bps=100 * _GBPS,
                 length_m=400.0 * _KM, utilisation=0.30),
        LinkSpec("acon-vie", "cloud-vie", rate_bps=100 * _GBPS,
                 utilisation=0.25),
    )

    probes = (
        ProbeSpec(probe_id=1, name="uni-anchor", node_name="probe-uni",
                  lat=e3.lat, lon=e3.lon, kind="anchor"),
        ProbeSpec(probe_id=2, name="uni-wired", node_name="uni-wired",
                  lat=UNI.lat, lon=UNI.lon, kind="anchor"),
    )

    # CGNAT/UPF breakouts: Vienna is the busy default; Frankfurt is the
    # quiet overflow pool some sessions land on; the lean Klagenfurt
    # edge UPF is the Sec. V-B deployment.
    gateways = (
        GatewaySpec("vienna", "gw-vie", "upf-cgnat-vie",
                    lat=VIENNA.lat, lon=VIENNA.lon, tier="regional_core",
                    pipeline_s=1.2e-3, rule_count=30_000,
                    throughput_bps=100 * _GBPS, load=0.65),
        GatewaySpec("frankfurt", "gw-fra", "upf-cgnat-fra",
                    lat=FRANKFURT.lat, lon=FRANKFURT.lon,
                    tier="regional_core",
                    pipeline_s=0.7e-3, rule_count=20_000,
                    throughput_bps=100 * _GBPS, load=0.15),
        GatewaySpec("edge", "gw-kla", "upf-edge-kla",
                    lat=kla_edge.lat, lon=kla_edge.lon, tier="edge",
                    pipeline_s=12e-6, rule_count=5_000,
                    throughput_bps=100 * _GBPS, load=0.25),
    )

    # Eight mobile peers spread over moderately loaded cells, plus C3's
    # rush-hour peer set: all on congested macros, raising C3's *mean*
    # without adding own-queue variance (E5 stays the sigma maximum).
    peer_loads = (0.58, 0.62, 0.65, 0.65, 0.68, 0.68, 0.70, 0.72)
    peers = tuple(PeerSpec(f"peer-{i + 1}", air_load=load, sinr_db=13.0)
                  for i, load in enumerate(peer_loads))
    peers += tuple(PeerSpec(f"peer-hot-{i + 1}", air_load=0.80,
                            sinr_db=13.0) for i in range(8))
    default_targets = tuple(f"peer-{i + 1}"
                            for i in range(len(peer_loads))) + ("probe-uni",)

    # B3: wired-probe-only measurements (quiet residential cell whose
    # peers were offline) -> no peer-side air variance.
    cell_targets = (
        ("B3", ("probe-uni",) * 9),
        ("C3", tuple(f"peer-hot-{i + 1}" for i in range(8))
         + ("probe-uni",)),
    )

    # 6G make-before-break: interruptions shrink to ~1 ms.
    interruption = 1e-3 if config.generation is Generation.SIX_G \
        else HANDOVER_INTERRUPTION_S
    # Campaign-wide edge termination moves every cell (including B3's
    # Frankfurt assignment) to the local breakout.
    default_gateway = "edge" if edge_breakout else "vienna"
    gateway_by_cell = () if edge_breakout else (("B3", "frankfurt"),)

    campaign = CampaignSpec(
        default_gateway=default_gateway,
        gateways=gateways,
        peers=peers,
        default_targets=default_targets,
        cell_targets=cell_targets,
        gateway_by_cell=gateway_by_cell,
        extra_load_range=(0.12, 0.24),
        extra_load_anchors=tuple(ANCHOR_EXTRA_LOAD.items()),
        handover_prob=tuple(ANCHOR_HANDOVER_PROB.items()),
        handover_interruption_s=interruption,
        route_weighting="population",
        min_samples=2,
    )

    return ScenarioSpec(
        name="klagenfurt",
        description=("Section IV-B evaluation world: 6x7 grid around the "
                     "University of Klagenfurt, six-AS policy-routed "
                     "internet, six FR1 macro sites"),
        grid=grid_spec,
        population=population,
        radio=radio,
        systems=systems,
        transits=transits,
        peerings=tuple(peerings),
        nodes=nodes,
        links=links,
        probes=probes,
        campaign=campaign,
        reference_src="ue-c2",
        reference_dst="probe-uni",
        wired_src="uni-wired",
        wired_dst="cloud-vie",
        detour_loop_end="ix-vie",
        detour_circuity=1.05,
    )
