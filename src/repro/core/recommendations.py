"""The recommendation engine (Section V synthesis).

Executes all three remedies against a built scenario and ranks them by
predicted RTT for the latency-critical service class, producing the
paper's qualitative conclusion quantitatively: local peering fixes the
*wired* half, UPF integration fixes the *access* half, and control-plane
consolidation fixes *session setup*; the 20 ms AR budget needs the
first two together.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from .cpf_strategy import CpfEnhancementStudy
from .peering import LocalPeeringExperiment
from .scenario import KlagenfurtScenario
from .upf_strategy import UpfPlacementStudy

__all__ = ["Recommendation", "RecommendationEngine"]


@dataclass(frozen=True)
class Recommendation:
    """One evaluated remedy."""

    name: str
    description: str
    metric: str
    before_s: float
    after_s: float

    @property
    def improvement_factor(self) -> float:
        if self.after_s == 0.0:
            return float("inf")
        return self.before_s / self.after_s

    def render(self) -> str:
        """One-line human-readable summary of the remedy."""
        return (f"{self.name}: {units.to_ms(self.before_s):.1f} ms -> "
                f"{units.to_ms(self.after_s):.1f} ms "
                f"({self.improvement_factor:.1f}x) [{self.metric}] — "
                f"{self.description}")


class RecommendationEngine:
    """Runs the Section V experiments and ranks the outcomes."""

    def __init__(self, scenario: KlagenfurtScenario):
        self.scenario = scenario

    def evaluate_local_peering(self) -> Recommendation:
        """Run the Sec. V-A local-peering experiment."""
        outcome = LocalPeeringExperiment(self.scenario).run()
        return Recommendation(
            name="local-peering",
            description=("Klagenfurt IXP with mobile/eyeball peering "
                         "plus local user-plane breakout removes the "
                         "multi-country transit detour"),
            metric="traceroute RTT, mobile node -> university probe",
            before_s=outcome.before_rtt_s,
            after_s=outcome.after_rtt_s,
        )

    def evaluate_upf_integration(self,
                                 measured_rtt_s: float) -> Recommendation:
        """Run the Sec. V-B UPF placement study against the measured mean."""
        study = UpfPlacementStudy()
        rtts = study.compare()
        return Recommendation(
            name="upf-integration",
            description=("edge UPF co-located with the CU, URLLC radio "
                         "profile; service terminates on-site"),
            metric="service RTT vs the measured mobile mean",
            before_s=measured_rtt_s,
            after_s=rtts["edge"],
        )

    def evaluate_cpf_enhancement(self) -> Recommendation:
        """Run the Sec. V-C control-plane comparison."""
        study = CpfEnhancementStudy()
        comparison = study.compare_pdu_session()
        return Recommendation(
            name="cpf-enhancement",
            description=("session + mobility management consolidated at "
                         "the Near-RT RIC; subscriber data stays central"),
            metric="PDU session establishment latency",
            before_s=comparison.centralised_s,
            after_s=comparison.ric_consolidated_s,
        )

    def evaluate_all(self, measured_rtt_s: float) -> list[Recommendation]:
        """All three remedies, ranked by improvement factor.

        Note: run order matters for the peering experiment (it mutates
        the scenario topology), so it runs last.
        """
        recs = [
            self.evaluate_upf_integration(measured_rtt_s),
            self.evaluate_cpf_enhancement(),
            self.evaluate_local_peering(),
        ]
        return sorted(recs, key=lambda r: r.improvement_factor,
                      reverse=True)
