"""Figure/table rendering (ASCII) for the evaluation artifacts.

Renders the paper's presentation formats:

* :func:`render_grid_heatmap` — Fig. 1/2/3-style cell grids (columns
  A..F, rows 1..7) with per-cell values, masked cells shown as 0.0;
* :func:`render_comparison_table` — simple aligned tables for the
  recommendation benches.
"""

from __future__ import annotations

import string
from typing import Optional, Sequence

import numpy as np

from ..geo.grid import Grid

__all__ = ["render_grid_heatmap", "render_comparison_table"]


def render_grid_heatmap(grid: Grid, matrix: np.ndarray, *,
                        title: str = "", unit: str = "ms",
                        decimals: int = 1) -> str:
    """Render a (rows x cols) value matrix as the paper's cell grid.

    ``matrix[row, col]`` follows the grid convention (row 0 = northern
    row '1').  Zeros render as ``0.0`` — the paper's mask marker.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (grid.rows, grid.cols):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match grid "
            f"({grid.rows}, {grid.cols})")
    width = max(len(f"{v:.{decimals}f}") for v in matrix.ravel())
    width = max(width, 5)
    header = "    " + " ".join(
        f"{string.ascii_uppercase[c]:>{width}}" for c in range(grid.cols))
    lines = []
    if title:
        lines.append(f"{title} [{unit}]")
    lines.append(header)
    for row in range(grid.rows):
        cells = " ".join(f"{matrix[row, col]:>{width}.{decimals}f}"
                         for col in range(grid.cols))
        lines.append(f"{row + 1:>3} {cells}")
    return "\n".join(lines)


def render_comparison_table(headers: Sequence[str],
                            rows: Sequence[Sequence[object]], *,
                            title: str = "") -> str:
    """Aligned ASCII table; floats are rendered with 2 decimals."""
    if not headers:
        raise ValueError("table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} fields, expected "
                f"{len(headers)}")

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(r[i]) for r in str_rows), default=0))
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
