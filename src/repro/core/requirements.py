"""Requirements analysis (Sections II-III).

Pairs the application profiles of :mod:`repro.apps.workloads` with the
capability envelopes of network generations and answers, per
application and generation: is the latency budget reachable, is the
bandwidth there, does the device density fit?  This is the formal
version of the paper's Section III tables and feeds the gap analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..apps.base import ApplicationProfile

__all__ = ["GenerationCapability", "FIVE_G_CAPABILITY", "SIX_G_CAPABILITY",
           "RequirementVerdict", "RequirementsAnalysis"]


@dataclass(frozen=True)
class GenerationCapability:
    """What a network generation can deliver (paper's Section II)."""

    name: str
    #: best-case air-interface one-way latency, seconds
    air_latency_s: float
    #: realistic end-to-end RTT with well-placed edge resources
    edge_rtt_s: float
    #: peak data rate, bits/second
    peak_rate_bps: float
    #: connection density, devices per km^2
    device_density_per_km2: float

    def __post_init__(self) -> None:
        if min(self.air_latency_s, self.edge_rtt_s, self.peak_rate_bps,
               self.device_density_per_km2) <= 0:
            raise ValueError("capability magnitudes must be positive")


#: 5G per the paper: ~1 ms air latency target, ~10^5 devices/km^2.
FIVE_G_CAPABILITY = GenerationCapability(
    name="5G",
    air_latency_s=units.ms(1.0),
    # Best-case deliverable end-to-end RTT: the edge-UPF + URLLC arm of
    # the Sec. V-B study lands at ~5.2 ms, matching the 5-6.2 ms band
    # the paper cites ([30], [31]); the sub-5 ms target of [34] remains
    # aspirational.
    edge_rtt_s=units.ms(5.2),
    peak_rate_bps=units.gbps(20.0),
    device_density_per_km2=1e5,
)

#: 6G per the paper: 100 us air latency, 1 Tbps, ~10^6 devices/km^2.
SIX_G_CAPABILITY = GenerationCapability(
    name="6G",
    air_latency_s=units.us(100.0),
    edge_rtt_s=units.ms(1.0),        # sub-1 ms end-to-end ambition
    peak_rate_bps=units.tbps(1.0),
    device_density_per_km2=1e6,
)


@dataclass(frozen=True)
class RequirementVerdict:
    """One application judged against one generation."""

    application: str
    generation: str
    latency_ok: bool
    bandwidth_ok: bool
    density_ok: bool
    #: headroom = budget / deliverable RTT (>1 means satisfiable)
    latency_headroom: float

    @property
    def satisfied(self) -> bool:
        return self.latency_ok and self.bandwidth_ok and self.density_ok


class RequirementsAnalysis:
    """Judges application profiles against generation capabilities."""

    def __init__(self, capability: GenerationCapability):
        self.capability = capability

    def judge(self, profile: ApplicationProfile) -> RequirementVerdict:
        """Capability check for one application."""
        cap = self.capability
        return RequirementVerdict(
            application=profile.name,
            generation=cap.name,
            latency_ok=cap.edge_rtt_s <= profile.rtt_budget_s,
            bandwidth_ok=cap.peak_rate_bps >= profile.bandwidth_bps,
            density_ok=(profile.device_density_per_km2 == 0.0
                        or cap.device_density_per_km2
                        >= profile.device_density_per_km2),
            latency_headroom=profile.rtt_budget_s / cap.edge_rtt_s,
        )

    def judge_all(self, profiles: list[ApplicationProfile]
                  ) -> list[RequirementVerdict]:
        """Capability checks for a whole application portfolio."""
        if not profiles:
            raise ValueError("no profiles supplied")
        return [self.judge(p) for p in profiles]

    def unsatisfied(self, profiles: list[ApplicationProfile]
                    ) -> list[RequirementVerdict]:
        """Applications this generation cannot serve."""
        return [v for v in self.judge_all(profiles) if not v.satisfied]
