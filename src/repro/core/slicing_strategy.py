"""End-to-end slicing strategy and hypervisor placement (Section V-C).

Two quantitative pieces back the paper's slicing discussion:

* :class:`SlicingStudy` — the same traffic mix with and without
  end-to-end slice isolation: the URLLC slice's queueing delay under an
  aggressive eMBB neighbour.
* :class:`HypervisorPlacementStudy` — the latency / resilience / load
  trade-off of network-hypervisor placement over the scenario's sites
  ([41], [42], [43]), executed with the k-placement planner.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..cn.hypervisor import (
    HypervisorPlanner,
    PlacementObjective,
    PlacementResult,
)
from ..cn.slicing import NetworkSlice, SliceManager, SliceType
from ..geo.coords import GeoPoint
from ..geo.places import BUCHAREST, FRANKFURT, GRAZ, PLACES, PRAGUE, VIENNA

__all__ = ["SlicingOutcome", "SlicingStudy", "HypervisorPlacementStudy"]


@dataclass(frozen=True)
class SlicingOutcome:
    """Queueing delay of the URLLC traffic with and without slicing."""

    isolated_wait_s: float
    shared_wait_s: float

    @property
    def improvement_factor(self) -> float:
        if self.isolated_wait_s == 0.0:
            return float("inf")
        return self.shared_wait_s / self.isolated_wait_s


class SlicingStudy:
    """URLLC under eMBB pressure, sliced versus shared."""

    def __init__(self, *, capacity_bps: float = units.gbps(10.0),
                 urllc_share: float = 0.2,
                 urllc_load_bps: float = units.gbps(0.4),
                 embb_load_bps: float = units.gbps(7.6),
                 service_time_s: float = 12e-6):
        mgr = SliceManager(capacity_bps)
        mgr.admit(NetworkSlice("urllc", SliceType.URLLC, urllc_share,
                               offered_load_bps=urllc_load_bps))
        mgr.admit(NetworkSlice("embb", SliceType.EMBB,
                               1.0 - urllc_share,
                               offered_load_bps=embb_load_bps))
        self.manager = mgr
        self.service_time_s = service_time_s

    def run(self) -> SlicingOutcome:
        """Queueing delay of the URLLC slice, isolated vs shared."""
        return SlicingOutcome(
            isolated_wait_s=self.manager.queueing_delay_s(
                "urllc", self.service_time_s, isolated=True),
            shared_wait_s=self.manager.queueing_delay_s(
                "urllc", self.service_time_s, isolated=False),
        )

    def sweep_embb_load(self, loads_bps: list[float]
                        ) -> list[tuple[float, SlicingOutcome]]:
        """Re-run the comparison across eMBB offered loads.

        Shows the crossover: at low aggregate load, isolation costs
        capacity; past it, isolation is what keeps URLLC viable.
        """
        outcomes = []
        urllc = self.manager.slice("urllc")
        for load in loads_bps:
            mgr = SliceManager(self.manager.capacity_bps)
            mgr.admit(urllc)
            mgr.admit(NetworkSlice("embb", SliceType.EMBB,
                                   1.0 - urllc.reserved_fraction,
                                   offered_load_bps=load))
            outcomes.append((load, SlicingOutcome(
                isolated_wait_s=mgr.queueing_delay_s(
                    "urllc", self.service_time_s, isolated=True),
                shared_wait_s=mgr.queueing_delay_s(
                    "urllc", self.service_time_s, isolated=False),
            )))
        return outcomes


class HypervisorPlacementStudy:
    """Placement-objective trade-offs over the evaluation's footprint."""

    #: candidate hypervisor sites: the scenario's infrastructure cities
    DEFAULT_CANDIDATES = ("klagenfurt", "vienna", "graz", "frankfurt",
                          "prague", "bucharest")

    def __init__(self, tenant_sites: list[GeoPoint] | None = None):
        self.candidates = [PLACES[name] for name in
                           self.DEFAULT_CANDIDATES]
        if tenant_sites is None:
            # Tenants: slice controllers at the edge + core sites.
            uni = PLACES["university_klagenfurt"]
            tenant_sites = [uni, PLACES["klagenfurt"], GRAZ, VIENNA,
                            PRAGUE, FRANKFURT, BUCHAREST]
        self.planner = HypervisorPlanner(self.candidates, tenant_sites)

    def compare(self, k: int = 3) -> dict[str, PlacementResult]:
        """Objective name -> placement result for ``k`` hypervisors."""
        return {
            objective.value: self.planner.place(k, objective)
            for objective in PlacementObjective
        }

    def latency_vs_k(self, ks: list[int]) -> list[tuple[int, float]]:
        """Worst-tenant latency as the hypervisor budget grows."""
        return [(k, self.planner.place(
            k, PlacementObjective.LATENCY).worst_latency_s) for k in ks]
