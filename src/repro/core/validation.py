"""Scenario invariant checker.

Anyone building a custom city scenario (see ``examples/second_city.py``)
wires grid, radio, topology, AS policy and campaign config by hand; a
mis-wired scenario fails in confusing ways (unreachable targets,
orphan gateways, cells without coverage).  :func:`validate_scenario`
checks the invariants the campaign relies on and returns a structured
report instead of a mid-campaign stack trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import units

__all__ = ["ValidationIssue", "ValidationReport", "validate_scenario"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found (or warning raised) during validation."""

    severity: str      #: 'error' | 'warning'
    component: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.component}: {self.message}"


@dataclass
class ValidationReport:
    """All issues of one validation run."""

    issues: list[ValidationIssue] = field(default_factory=list)

    def add(self, severity: str, component: str, message: str) -> None:
        """Record one issue."""
        self.issues.append(ValidationIssue(severity, component, message))

    @property
    def errors(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        """Human-readable issue list (or the all-clear line)."""
        if not self.issues:
            return "scenario valid: no issues"
        return "\n".join(str(issue) for issue in self.issues)


def validate_scenario(*, grid, traversed_cells, radio, routes,
                      campaign_config,
                      min_sinr_db: float = -5.0) -> ValidationReport:
    """Check the invariants the drive-test campaign relies on.

    Errors (campaign would crash or silently mis-measure):

    * a gateway node missing from the topology;
    * a wired target unreachable from a gateway under BGP policy;
    * a traversed cell outside the grid;
    * a cell-to-gateway assignment referencing an unknown gateway.

    Warnings (campaign runs, results may be degenerate):

    * traversed cells whose centre SINR is below ``min_sinr_db``
      (every sample there will be HARQ-saturated);
    * an empty target list for a traversed cell;
    * effective cell load pinned at the clamp for some cell.
    """
    report = ValidationReport()
    topo = routes.topology

    # -- gateways --------------------------------------------------------
    for name, gateway in campaign_config.gateways.items():
        if not topo.has_node(gateway.node_name):
            report.add("error", "gateways",
                       f"gateway {name!r} references missing node "
                       f"{gateway.node_name!r}")
    if campaign_config.default_gateway not in campaign_config.gateways:
        report.add("error", "gateways",
                   f"default gateway "
                   f"{campaign_config.default_gateway!r} not registered")
    for cell, gw_name in campaign_config.gateway_by_cell.items():
        if gw_name not in campaign_config.gateways:
            report.add("error", "gateways",
                       f"cell {cell.label} assigned to unknown gateway "
                       f"{gw_name!r}")

    # -- cells -----------------------------------------------------------
    for cell in traversed_cells:
        if cell not in grid:
            report.add("error", "grid",
                       f"traversed cell {cell.label} outside the grid")
            continue
        targets = campaign_config.targets.get(
            cell, campaign_config.default_targets)
        if not targets:
            report.add("warning", "targets",
                       f"cell {cell.label} has no measurement targets")

    # -- wired reachability ---------------------------------------------
    wired_targets = set()
    for cell in traversed_cells:
        for target in campaign_config.targets.get(
                cell, campaign_config.default_targets):
            if target not in campaign_config.peers:
                wired_targets.add(target)
    for target in sorted(wired_targets):
        if not topo.has_node(target):
            report.add("error", "targets",
                       f"wired target {target!r} not in topology")
            continue
        for name, gateway in campaign_config.gateways.items():
            if not topo.has_node(gateway.node_name):
                continue
            try:
                routes.route(gateway.node_name, target)
            except (LookupError, ValueError) as exc:
                report.add("error", "routing",
                           f"target {target!r} unreachable from gateway "
                           f"{name!r}: {exc}")

    # -- radio coverage ---------------------------------------------------
    for cell in traversed_cells:
        if cell not in grid:
            continue
        try:
            _, sinr = radio.serving(grid.cell_center(cell))
        except RuntimeError as exc:
            report.add("error", "radio", str(exc))
            break
        if sinr < min_sinr_db:
            report.add("warning", "radio",
                       f"cell {cell.label} centre SINR {sinr:.1f} dB "
                       f"below {min_sinr_db:.1f} dB (HARQ-saturated)")

    # -- load clamp --------------------------------------------------------
    for cell in traversed_cells:
        extra = campaign_config.cell_extra_load.get(cell, 0.0)
        base = max((g.load for g in radio.gnbs()), default=0.0)
        if base + extra > campaign_config.max_cell_load + 1e-9:
            report.add("warning", "load",
                       f"cell {cell.label} load clamps at "
                       f"{campaign_config.max_cell_load:.2f} "
                       f"(requested {base + extra:.2f})")
    return report
