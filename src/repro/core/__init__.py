"""The paper's analytical framework: requirements, evaluation, remedies."""


from __future__ import annotations

from .cpf_strategy import CpfComparison, CpfEnhancementStudy, QosCacheStudy
from .evaluation import (
    EvaluationResult,
    EvaluationSummary,
    InfrastructureEvaluation,
)
from .future import (
    FederatedEdgeStudy,
    PredictiveSlicingStudy,
    SixGUpgradeStudy,
    UpgradeArm,
)
from .gap import GapAnalysis, GapReport
from .peering import LocalPeeringExperiment, PeeringOutcome
from .recommendations import Recommendation, RecommendationEngine
from .report import render_comparison_table, render_grid_heatmap
from .requirements import (
    FIVE_G_CAPABILITY,
    SIX_G_CAPABILITY,
    GenerationCapability,
    RequirementsAnalysis,
    RequirementVerdict,
)
from .scenario import KlagenfurtScenario
from .sensitivity import KnobResult, SensitivityAnalysis
from .validation import ValidationIssue, ValidationReport, validate_scenario
from .slicing_strategy import (
    HypervisorPlacementStudy,
    SlicingOutcome,
    SlicingStudy,
)
from .upf_strategy import DynamicUpfSelector, UpfDeployment, UpfPlacementStudy

__all__ = [
    "CpfComparison", "CpfEnhancementStudy", "QosCacheStudy",
    "EvaluationResult", "EvaluationSummary", "InfrastructureEvaluation",
    "GapAnalysis", "GapReport",
    "SixGUpgradeStudy", "UpgradeArm", "FederatedEdgeStudy",
    "PredictiveSlicingStudy",
    "LocalPeeringExperiment", "PeeringOutcome",
    "Recommendation", "RecommendationEngine",
    "render_comparison_table", "render_grid_heatmap",
    "FIVE_G_CAPABILITY", "SIX_G_CAPABILITY", "GenerationCapability",
    "RequirementsAnalysis", "RequirementVerdict",
    "KlagenfurtScenario",
    "KnobResult", "SensitivityAnalysis",
    "ValidationIssue", "ValidationReport", "validate_scenario",
    "HypervisorPlacementStudy", "SlicingOutcome", "SlicingStudy",
    "DynamicUpfSelector", "UpfDeployment", "UpfPlacementStudy",
]
