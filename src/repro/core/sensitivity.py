"""Sensitivity analysis of the calibration (reviewer's due diligence).

The reproduction calibrates a handful of physical knobs to the paper's
anchor values.  A fair question is how much the headline numbers lean
on each knob: if a ±20 % perturbation of one parameter moves the 270 %
exceedance by 200 points, the reproduction is a curve fit; if the
response is proportionate and monotone, the mechanisms carry the
result.

:class:`SensitivityAnalysis` perturbs one knob at a time, re-runs the
campaign, and reports elasticities of the headline metrics
(mean RTL, mobile/wired factor, max-cell mean).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from .. import units
from .gap import GapAnalysis, GapReport
from .scenario import KlagenfurtScenario

__all__ = ["KnobResult", "SensitivityAnalysis"]


@dataclass(frozen=True)
class KnobResult:
    """Headline metrics under one perturbation of one knob."""

    knob: str
    scale: float              #: multiplicative perturbation applied
    mobile_mean_s: float
    mobile_wired_factor: float
    max_cell_mean_s: float

    def elasticity(self, baseline: "KnobResult") -> float:
        """d(mean)/mean over d(knob)/knob — unitless sensitivity."""
        d_metric = (self.mobile_mean_s - baseline.mobile_mean_s) \
            / baseline.mobile_mean_s
        d_knob = self.scale - 1.0
        if d_knob == 0.0:
            raise ValueError("baseline has no perturbation")
        return d_metric / d_knob


class SensitivityAnalysis:
    """One-at-a-time perturbation of the calibrated knobs."""

    #: knob name -> function(scenario-kwargs-free scale application)
    def __init__(self, seed: int = 42,
                 mean_positions_per_cell: float = 3.0):
        self.seed = seed
        self.positions = mean_positions_per_cell

    # -- knob application -----------------------------------------------

    def _scenario_with(self, knob: str, scale: float) -> KlagenfurtScenario:
        scenario = KlagenfurtScenario(seed=self.seed)
        cfg = scenario.campaign_config
        if knob == "buffer_service":
            new_radio = replace(scenario.radio_config,
                                buffer_service_s=scenario.radio_config.
                                buffer_service_s * scale)
            for gnb in scenario.radio.gnbs():
                gnb.config = new_radio
        elif knob == "cgnat_load":
            vienna = cfg.gateways["vienna"]
            new_load = min(vienna.upf.load * scale, 0.97)
            cfg.gateways = dict(cfg.gateways, vienna=type(vienna)(
                vienna.name, vienna.node_name,
                vienna.upf.with_load(new_load)))
        elif knob == "cell_load":
            cfg.cell_extra_load = {
                cell: extra * scale
                for cell, extra in cfg.cell_extra_load.items()}
        elif knob == "peer_load":
            cfg.peers = {
                name: replace(peer,
                              air_load=min(peer.air_load * scale, 0.92))
                for name, peer in cfg.peers.items()}
        elif knob == "handover_interruption":
            cfg.handover_interruption_s *= scale
        else:
            raise KeyError(f"unknown knob {knob!r}")
        return scenario

    KNOBS = ("buffer_service", "cgnat_load", "cell_load", "peer_load",
             "handover_interruption")

    # -- runs -----------------------------------------------------------------

    def run_knob(self, knob: str, scale: float) -> KnobResult:
        """Re-run the campaign with one knob scaled by ``scale``."""
        scenario = self._scenario_with(knob, scale)
        stats = scenario.statistics(
            scenario.run_campaign(self.positions))
        gap = GapAnalysis().report(stats, scenario.wired_baseline())
        return KnobResult(
            knob=knob, scale=scale,
            mobile_mean_s=gap.mobile_mean_s,
            mobile_wired_factor=gap.mobile_wired_factor,
            max_cell_mean_s=gap.max_cell_mean_s,
        )

    def baseline(self) -> KnobResult:
        """The unperturbed campaign's headline metrics."""
        return self.run_knob("cell_load", 1.0)

    def sweep(self, scales: tuple[float, ...] = (0.8, 1.2)
              ) -> dict[str, list[KnobResult]]:
        """All knobs at every scale; key = knob name."""
        return {knob: [self.run_knob(knob, s) for s in scales]
                for knob in self.KNOBS}

    def elasticities(self, scale: float = 1.2) -> dict[str, float]:
        """One-sided elasticity of the mean RTL per knob."""
        base = self.baseline()
        out = {}
        for knob in self.KNOBS:
            out[knob] = self.run_knob(knob, scale).elasticity(base)
        return out
