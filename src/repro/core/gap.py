"""Gap analysis (Section IV-C headline numbers).

Computes the paper's comparative findings from a measurement campaign
and a wired baseline:

* the **mobile/wired factor** — "the mean RTL for mobile nodes
  surpasses that of wired nodes by a factor of seven";
* the **requirement exceedance** — "exceeds the identified requirements
  ... by approximately 270 %" against the 20 ms AR budget;
* the **hop-count observation** — "the number of network hops
  frequently surpasses ten".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from ..apps.ar_game import AR_RTT_BUDGET_S
from ..probes.stats import CellStatistics

__all__ = ["GapAnalysis", "GapReport"]


@dataclass(frozen=True)
class GapReport:
    """The Section IV-C summary numbers."""

    mobile_mean_s: float
    wired_mean_s: float
    mobile_wired_factor: float
    requirement_s: float
    exceedance_percent: float
    min_cell_label: str
    min_cell_mean_s: float
    max_cell_label: str
    max_cell_mean_s: float
    min_std_label: str
    min_std_s: float
    max_std_label: str
    max_std_s: float

    def summary(self) -> str:
        """Human-readable digest matching the paper's phrasing."""
        return "\n".join([
            f"mobile mean RTL: {units.to_ms(self.mobile_mean_s):.1f} ms "
            f"({self.mobile_wired_factor:.1f}x the wired "
            f"{units.to_ms(self.wired_mean_s):.1f} ms)",
            f"cell range: {units.to_ms(self.min_cell_mean_s):.0f} ms "
            f"({self.min_cell_label}) .. "
            f"{units.to_ms(self.max_cell_mean_s):.0f} ms "
            f"({self.max_cell_label})",
            f"std-dev range: {units.to_ms(self.min_std_s):.1f} ms "
            f"({self.min_std_label}) .. {units.to_ms(self.max_std_s):.1f} ms "
            f"({self.max_std_label})",
            f"exceeds the {units.to_ms(self.requirement_s):.0f} ms "
            f"requirement by {self.exceedance_percent:.0f}%",
        ])


class GapAnalysis:
    """Derives the gap report from campaign statistics."""

    def __init__(self, *, requirement_s: float = AR_RTT_BUDGET_S):
        if requirement_s <= 0:
            raise ValueError("requirement must be positive")
        self.requirement_s = requirement_s

    def report(self, stats: CellStatistics,
               wired_rtts_s: np.ndarray) -> GapReport:
        """Compute the headline numbers.

        ``wired_rtts_s``: RTT samples of the wired baseline (the [3]
        measurements to the cloud region).
        """
        wired = np.asarray(wired_rtts_s, dtype=np.float64)
        if wired.size == 0:
            raise ValueError("wired baseline is empty")
        mobile_mean = stats.overall_mean_s()
        wired_mean = float(wired.mean())
        if wired_mean <= 0:
            raise ValueError("wired mean must be positive")
        min_cell = stats.min_mean_cell()
        max_cell = stats.max_mean_cell()
        min_std = stats.min_std_cell()
        max_std = stats.max_std_cell()
        return GapReport(
            mobile_mean_s=mobile_mean,
            wired_mean_s=wired_mean,
            mobile_wired_factor=mobile_mean / wired_mean,
            requirement_s=self.requirement_s,
            exceedance_percent=(mobile_mean - self.requirement_s)
            / self.requirement_s * 100.0,
            min_cell_label=min_cell.cell.label,
            min_cell_mean_s=min_cell.mean_s,
            max_cell_label=max_cell.cell.label,
            max_cell_mean_s=max_cell.mean_s,
            min_std_label=min_std.cell.label,
            min_std_s=min_std.std_s,
            max_std_label=max_std.cell.label,
            max_std_s=max_std.std_s,
        )
