"""The Klagenfurt evaluation scenario (Section IV-B) — a compiled instance.

.. note::
   This module is now a thin compatibility wrapper.  The world it used
   to hand-wire imperatively lives as *data* in the declarative spec
   factory :func:`repro.scenarios.klagenfurt.klagenfurt`, and the
   construction itself in the generic compiler
   :func:`repro.scenarios.build` — ``KlagenfurtScenario(seed)`` is
   exactly ``build(klagenfurt(), seed)`` plus the historical attribute
   names.  New code should use the spec API directly; it works for any
   registered or JSON-loaded city, not just Klagenfurt.

The compiled world (see :mod:`repro.scenarios.klagenfurt` for the data):

* the 6x7 grid of 1 km cells around the University of Klagenfurt, with
  the university's RIPE-Atlas-style probe in cell **E3** and the
  Table I mobile node in **C2** (< 5 km apart, as in the paper);
* a synthetic population raster whose >= 1000 inhabitants/km2 cells are
  the 33 traversed cells (border cells fall below and end up masked);
* a six-AS internet reproducing the Table I hop chain and the Fig. 4
  Vienna-Prague-Bucharest-Vienna detour;
* the operator's radio layer: six FR1 macro sites on a lattice;
* per-cell calibration knobs anchoring the published extremes:
  C1 = min mean, C3 = max mean, B3 = min sigma, E5 = max sigma.

Calibration knobs and their physical meaning:

* ``cell_extra_load`` — local scheduler congestion on top of the site
  base load; drives both mean and variance via buffer queueing.
* ``gateway_by_cell`` — CGNAT breakout assignment.  B3's sessions break
  out in **Frankfurt** over a long operator tunnel: a large
  *deterministic* latency with almost no jitter, which is how a cell
  gets a 60+ ms mean with a ~2 ms standard deviation.
* ``handover_prob`` — fraction of measurement windows hit by a
  handover/RLF interruption; E5 sits on a coverage boundary, giving it
  the heaviest tail (the paper's 46.4 ms sigma).
* per-cell target lists — eight mobile peers plus the university probe
  by default; B3 measures the wired probe only (its quiet residential
  peers were offline), removing peer-side air-interface variance.
"""

from __future__ import annotations

from typing import Optional

from ..geo.grid import CellId
from ..ran.spectrum import RadioConfig
from ..scenarios.build import BuiltScenario
from ..scenarios.klagenfurt import (
    ANCHOR_EXTRA_LOAD,
    ANCHOR_HANDOVER_PROB,
    AS_CLOUD,
    AS_EYEBALL,
    AS_IX_TRANSIT,
    AS_MOBILE,
    AS_NREN,
    AS_PEERING_CZ,
    AS_TRANSIT,
    AS_ZET,
    HANDOVER_INTERRUPTION_S,
    klagenfurt,
)

__all__ = ["KlagenfurtScenario", "AS_MOBILE", "AS_TRANSIT", "AS_PEERING_CZ",
           "AS_ZET", "AS_IX_TRANSIT", "AS_EYEBALL", "AS_CLOUD", "AS_NREN",
           "ANCHOR_EXTRA_LOAD", "ANCHOR_HANDOVER_PROB",
           "HANDOVER_INTERRUPTION_S"]


class KlagenfurtScenario(BuiltScenario):
    """Fully built evaluation world; see module docstring.

    Parameters
    ----------
    seed:
        Root seed of every stochastic component.
    radio_config:
        Radio profile of all macro sites.  Defaults to the deployed 5G
        configuration; pass :meth:`RadioConfig.nr_6g` to model the
        6G upgrade of the same footprint (the Sec. VI outlook).
    edge_breakout:
        Terminate the user plane at a Klagenfurt edge gateway instead
        of the Vienna CGNAT (the Sec. V-B remedy, applied campaign-wide).
    """

    def __init__(self, seed: int = 42, *,
                 radio_config: Optional[RadioConfig] = None,
                 edge_breakout: bool = False):
        super().__init__(klagenfurt(radio_config=radio_config,
                                    edge_breakout=edge_breakout), seed)
        self.edge_breakout = edge_breakout
        self.cell_c2 = CellId.from_label("C2")
        self.cell_e3 = CellId.from_label("E3")
