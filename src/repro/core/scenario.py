"""The Klagenfurt evaluation scenario (Section IV-B).

Builds the complete simulated world the campaign runs in:

* the 6x7 grid of 1 km cells around the University of Klagenfurt, with
  the university's RIPE-Atlas-style probe in cell **E3** and the
  Table I mobile node in **C2** (< 5 km apart, as in the paper);
* a synthetic population raster whose >= 1000 inhabitants/km2 cells are
  the 33 traversed cells (border cells fall below and end up masked);
* a six-AS internet reproducing the Table I hop chain and the Fig. 4
  Vienna-Prague-Bucharest-Vienna detour: the mobile operator's user
  plane breaks out in Vienna, its transit (DataPacket/CDN77) reaches
  the Klagenfurt eyeball ISP (ascus.at) only through a Prague peering
  and a Bucharest-based upstream of the eyeball's transit — the kind of
  cost-driven transit chain that produces geographically absurd paths;
* the operator's radio layer: six FR1 macro sites on a lattice across
  the grid;
* per-cell calibration knobs (documented below) anchoring the published
  extremes: C1 = min mean, C3 = max mean, B3 = min sigma, E5 = max
  sigma.

Calibration knobs and their physical meaning:

* ``cell_extra_load`` — local scheduler congestion on top of the site
  base load; drives both mean and variance via buffer queueing.
* ``gateway_by_cell`` — CGNAT breakout assignment.  B3's sessions break
  out in **Frankfurt** over a long operator tunnel: a large
  *deterministic* latency with almost no jitter, which is how a cell
  gets a 60+ ms mean with a ~2 ms standard deviation.
* ``handover_prob`` — fraction of measurement windows hit by a
  handover/RLF interruption; E5 sits on a coverage boundary, giving it
  the heaviest tail (the paper's 46.4 ms sigma).
* per-cell target lists — eight mobile peers plus the university probe
  by default; B3 measures the wired probe only (its quiet residential
  peers were offline), removing peer-side air-interface variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import units
from ..cn.nf import SiteTier
from ..cn.upf import UserPlaneFunction
from ..geo.coords import GeoPoint
from ..geo.grid import CellId, Grid
from ..geo.mobility import DriveTestRoute
from ..geo.places import BUCHAREST, FRANKFURT, GRAZ, PLACES, PRAGUE, VIENNA
from ..geo.population import RadialPopulationModel
from ..net.address import IPv4Address
from ..net.asn import ASGraph, ASKind, AutonomousSystem
from ..net.link import LinkKind
from ..net.node import Node, NodeKind
from ..net.routing import RouteComputer
from ..net.topology import Topology
from ..net.traceroute import TracerouteResult, traceroute
from ..probes.atlas import Probe, ProbeKind, ProbeRegistry
from ..probes.campaign import (
    CampaignConfig,
    DriveTestCampaign,
    Gateway,
    MobilePeer,
)
from ..probes.ping import ping
from ..probes.results import MeasurementDataset
from ..probes.stats import CellStatistics
from ..ran.channel import ChannelModel
from ..ran.gnb import GNodeB, RadioNetwork
from ..ran.spectrum import RadioConfig
from ..sim.rng import RngRegistry

__all__ = ["KlagenfurtScenario", "AS_MOBILE", "AS_TRANSIT", "AS_PEERING_CZ",
           "AS_ZET", "AS_IX_TRANSIT", "AS_EYEBALL", "AS_CLOUD", "AS_NREN"]

# AS numbers (the real operators' ASNs where known from Table I).
AS_MOBILE = 8447        #: the mobile operator (A1-like)
AS_TRANSIT = 60068      #: DataPacket / CDN77
AS_PEERING_CZ = 61414   #: zetservers @ peering.cz (Prague)
AS_ZET = 39737          #: zet.net / amanet (Bucharest)
AS_IX_TRANSIT = 39912   #: the Vienna-IX transit of the eyeball
AS_EYEBALL = 42473      #: ascus.at (Klagenfurt access ISP)
AS_CLOUD = 61098        #: Exoscale-like cloud (Vienna)
AS_NREN = 1853          #: ACOnet (Austrian NREN)

#: Grid geometry: university probe in E3, per Section IV-B.
_M_PER_DEG_LAT = 111_194.9
UNI = PLACES["university_klagenfurt"]

#: Default per-cell congestion on top of the site base load.  The
#: spatial field is seeded (stream "scenario.load") so the full
#: campaign remains a pure function of the scenario seed; the anchor
#: cells get explicit values.
ANCHOR_EXTRA_LOAD: dict[str, float] = {
    "C1": -0.01,   # the quietest measured cell -> 61 ms mean
    "C3": 0.33,    # the most congested cell -> 110 ms mean (see also
                   # its dedicated rush-hour peer set below)
    "B3": -0.34,   # nearly idle residential cell (load ~0.21)
    "E5": 0.135,   # moderately loaded, but see handover_prob
    "C2": 0.16,    # the Table I mobile node's cell (~65 ms to the probe)
    "C5": 0.18,    # arterial through-traffic keeps C5 off the minimum
}

#: Handover-interruption probability per measurement window.
ANCHOR_HANDOVER_PROB: dict[str, float] = {
    "E5": 0.35,    # coverage boundary: frequent interruptions
}

#: Interruption magnitude: handover plus occasional RRC re-establishment.
HANDOVER_INTERRUPTION_S: float = 130e-3


class KlagenfurtScenario:
    """Fully built evaluation world; see module docstring.

    Parameters
    ----------
    seed:
        Root seed of every stochastic component.
    radio_config:
        Radio profile of all macro sites.  Defaults to the deployed 5G
        configuration; pass :meth:`RadioConfig.nr_6g` to model the
        6G upgrade of the same footprint (the Sec. VI outlook).
    edge_breakout:
        Terminate the user plane at a Klagenfurt edge gateway instead
        of the Vienna CGNAT (the Sec. V-B remedy, applied campaign-wide).
    """

    def __init__(self, seed: int = 42, *,
                 radio_config: Optional[RadioConfig] = None,
                 edge_breakout: bool = False):
        self.seed = seed
        self.rng = RngRegistry(seed)
        self._radio_config_override = radio_config
        self.edge_breakout = edge_breakout
        self._build_grid()
        self._build_population()
        self._build_radio()
        self._build_internet()
        self._build_probes()
        self._build_campaign_config()

    # ------------------------------------------------------------------
    # geography
    # ------------------------------------------------------------------

    def _build_grid(self) -> None:
        m_per_deg_lon = _M_PER_DEG_LAT * float(
            np.cos(np.radians(UNI.lat)))
        # University at the centre of E3 (col 4, row 2).
        origin = GeoPoint(
            UNI.lat + 2.5 * 1000.0 / _M_PER_DEG_LAT,
            UNI.lon - 4.5 * 1000.0 / m_per_deg_lon,
        )
        self.grid = Grid(origin=origin, cell_size_m=1000.0, cols=6, rows=7)
        self.cell_c2 = CellId.from_label("C2")
        self.cell_e3 = CellId.from_label("E3")

    def _build_population(self) -> None:
        # Urban core between the university and the city centre; the
        # scale is calibrated so exactly 33 cells clear the paper's
        # 1000 /km2 threshold (the other 9 are border cells).
        centre = self.grid.point_in_cell(CellId.from_label("D4"), 0.3, 0.3)
        self.population = RadialPopulationModel(
            centre, core_density=4200.0, scale_m=2250.0, floor=40.0)
        self.traversed_cells = [
            cell for cell in self.grid.cells()
            if self.population.cell_density(self.grid, cell) >= 1000.0]
        self.masked_cells = [cell for cell in self.grid.cells()
                             if cell not in set(self.traversed_cells)]

    # ------------------------------------------------------------------
    # radio layer
    # ------------------------------------------------------------------

    #: macro-site anchor cells (lattice across the grid)
    _SITE_CELLS = ("B2", "D2", "F2", "B5", "D5", "F5")
    _SITE_BASE_LOAD = 0.55

    def _build_radio(self) -> None:
        self.radio_config = (self._radio_config_override
                             if self._radio_config_override is not None
                             else RadioConfig.nr_5g())
        # 64T64R massive-MIMO beamforming gain keeps 1 km macro-cell
        # UEs at working SINR (without it the whole grid sits at the
        # cell edge and HARQ dominates every sample).
        self.channel = ChannelModel(
            self.radio_config.carrier_frequency_hz,
            antenna_gain_db=28.0, shadowing_sigma_db=4.0, seed=self.seed)
        gnbs = []
        for label in self._SITE_CELLS:
            cell = CellId.from_label(label)
            gnbs.append(GNodeB(
                name=f"gnb-{label.lower()}",
                location=self.grid.cell_center(cell),
                config=self.radio_config,
                load=self._SITE_BASE_LOAD,
            ))
        self.radio = RadioNetwork(self.channel, gnbs)

    # ------------------------------------------------------------------
    # internet topology + policy
    # ------------------------------------------------------------------

    def _build_internet(self) -> None:
        topo = Topology("klagenfurt-internet")
        asg = ASGraph()

        def system(asn, name, kind, ptr=""):
            asg.add(AutonomousSystem(asn, name, kind=kind, ptr_template=ptr))

        system(AS_MOBILE, "mobile-at", ASKind.MOBILE_ISP)
        system(AS_TRANSIT, "datapacket", ASKind.CDN)
        system(AS_PEERING_CZ, "zetservers", ASKind.HOSTING)
        system(AS_ZET, "zet-amanet", ASKind.HOSTING)
        system(AS_IX_TRANSIT, "as39912", ASKind.TRANSIT)
        system(AS_EYEBALL, "ascus", ASKind.ACCESS_ISP)
        system(AS_CLOUD, "exoscale", ASKind.CLOUD)
        system(AS_NREN, "aconet", ASKind.EDUCATION)

        # Gao-Rexford relationships producing the Table I chain.
        asg.set_customer_of(AS_MOBILE, AS_TRANSIT)
        asg.set_peers(AS_TRANSIT, AS_PEERING_CZ)          # Prague peering
        asg.set_customer_of(AS_ZET, AS_PEERING_CZ)
        asg.set_customer_of(AS_IX_TRANSIT, AS_ZET)        # Bucharest upstream
        asg.set_customer_of(AS_EYEBALL, AS_IX_TRANSIT)
        asg.set_customer_of(AS_CLOUD, AS_TRANSIT)         # cloud transit
        asg.set_peers(AS_NREN, AS_CLOUD)                  # VIX peering
        if self.edge_breakout:
            # The paper's V-A + V-B combination: the edge gateway peers
            # with the local eyeball directly.
            asg.set_peers(AS_MOBILE, AS_EYEBALL)

        def node(name, kind, location, asn, addr=None, display="",
                 forwarding=-1.0):
            return topo.add_node(Node(
                name=name, kind=kind, location=location, asn=asn,
                address=IPv4Address.parse(addr) if addr else None,
                display_name=display, forwarding_delay_s=forwarding))

        c2_centre = self.grid.cell_center(self.cell_c2)

        # --- AS_MOBILE: UE representative + gateways -------------------
        node("ue-c2", NodeKind.UE, c2_centre, AS_MOBILE,
             addr="10.12.128.77", display="10.12.128.77")
        node("gw-vie", NodeKind.GATEWAY, VIENNA, AS_MOBILE,
             addr="10.12.128.1", display="10.12.128.1")
        node("gw-fra", NodeKind.GATEWAY, FRANKFURT, AS_MOBILE,
             addr="10.14.0.1", display="10.14.0.1")
        # Edge breakout site (used when edge_breakout=True): user plane
        # terminates in Klagenfurt, next to the probe's access network.
        node("gw-kla", NodeKind.GATEWAY, GeoPoint(46.626, 14.306),
             AS_MOBILE, addr="10.15.0.1", display="10.15.0.1")

        # --- AS_TRANSIT: DataPacket/CDN77 ------------------------------
        node("dp-vie", NodeKind.ROUTER, VIENNA, AS_TRANSIT,
             addr="37.19.223.61",
             display="unn-37-19-223-61.datapacket.com")
        node("cdn77-vie", NodeKind.ROUTER, VIENNA, AS_TRANSIT,
             addr="185.156.45.138",
             display="vl204.vie-itx1-core-2.cdn77.com")
        node("dp-fra", NodeKind.ROUTER, FRANKFURT, AS_TRANSIT,
             addr="37.19.200.1",
             display="unn-37-19-200-1.datapacket.com")

        # --- AS_PEERING_CZ: zetservers @ peering.cz (Prague) ------------
        node("zet-prg", NodeKind.ROUTER, PRAGUE, AS_PEERING_CZ,
             addr="185.0.20.31", display="zetservers.peering.cz")

        # --- AS_ZET: zet.net / amanet (Bucharest) -----------------------
        node("zet-buh", NodeKind.ROUTER, BUCHAREST, AS_ZET,
             addr="103.246.249.33", display="vie-dr2-cr1.zet.net")
        node("amanet-buh", NodeKind.ROUTER, BUCHAREST, AS_ZET,
             addr="185.104.63.33", display="amanet-cust.zet.net")

        # --- AS_IX_TRANSIT: as39912 at the Vienna IX --------------------
        node("ix-vie", NodeKind.ROUTER, VIENNA, AS_IX_TRANSIT,
             addr="185.211.219.155",
             display="ae2-97.mx204-1.ix.vie.at.as39912.net")

        # --- AS_EYEBALL: ascus.at (Klagenfurt) --------------------------
        kla_core = GeoPoint(46.628, 14.310)
        node("ascus-core", NodeKind.ROUTER, kla_core, AS_EYEBALL,
             addr="195.16.228.3", display="003-228-016-195.ascus.at")
        node("ascus-access", NodeKind.ROUTER, GeoPoint(46.622, 14.296),
             AS_EYEBALL, addr="195.16.246.180",
             display="180-246-016-195.ascus.at")
        node("probe-uni", NodeKind.PROBE,
             self.grid.cell_center(self.cell_e3), AS_EYEBALL,
             addr="195.140.139.133", display="195.140.139.133")

        # --- AS_CLOUD + AS_NREN (wired baseline) -------------------------
        node("cloud-vie", NodeKind.SERVER, PLACES["exoscale_vienna"],
             AS_CLOUD, addr="194.182.160.10",
             display="vie-1.exoscale-like.net")
        node("uni-wired", NodeKind.SERVER, UNI, AS_NREN,
             addr="143.205.1.10", display="atlas-anchor.uni-klu.ac.at")
        # Campus edge: the deep-inspection firewall dominates the wired
        # baseline's processing share (calibrated to the 7-12 ms of [3]).
        node("uni-fw", NodeKind.ROUTER, UNI, AS_NREN,
             addr="143.205.1.1", display="fw1.uni-klu.ac.at",
             forwarding=2.3e-3)
        node("acon-graz", NodeKind.ROUTER, GRAZ, AS_NREN,
             addr="193.171.23.1", display="graz1.aco.net")
        node("acon-vie", NodeKind.ROUTER, VIENNA, AS_NREN,
             addr="193.171.23.33", display="vie1.aco.net")

        # --- links -------------------------------------------------------
        gbps = units.gbps
        # Mobile operator user plane.  The UE-to-gateway link stands in
        # for the RAN air interface + scheduler buffering + GTP tunnel of
        # the C2 cell; its effective length is set to that leg's median
        # RTT (~36 ms, what a mobile traceroute shows on hop 1).  The
        # campaign itself models this leg with the radio stack instead,
        # and the Fig. 4 geography uses node locations, not this length.
        topo.connect("ue-c2", "gw-vie", rate_bps=gbps(10.0),
                     length_m=units.km(3600.0))
        # Frankfurt breakout rides the operator's long EU ring (via
        # Amsterdam), hence the explicit tunnel length.
        topo.connect("gw-vie", "gw-fra", rate_bps=gbps(100.0))
        topo.connect("gw-vie", "gw-kla", rate_bps=gbps(100.0))
        # The edge breakout peers directly with the local eyeball (the
        # Sec. V-A + V-B combination the paper recommends).
        topo.connect("gw-kla", "ascus-core", rate_bps=gbps(100.0))
        topo.connect("gw-vie", "dp-vie", rate_bps=gbps(100.0),
                     utilisation=0.30)
        topo.connect("gw-fra", "dp-fra", rate_bps=gbps(100.0),
                     length_m=units.km(1300.0), utilisation=0.20)
        # Transit internals.
        topo.connect("dp-vie", "cdn77-vie", rate_bps=gbps(100.0),
                     kind=LinkKind.VIRTUAL, length_m=2_000.0,
                     utilisation=0.35)
        topo.connect("dp-fra", "cdn77-vie", rate_bps=gbps(100.0),
                     utilisation=0.25)
        # Prague peering (CDN77 reaches peering.cz remotely from Vienna).
        topo.connect("cdn77-vie", "zet-prg", rate_bps=gbps(100.0),
                     utilisation=0.30)
        # zetservers -> Bucharest customer.
        topo.connect("zet-prg", "zet-buh", rate_bps=gbps(40.0),
                     utilisation=0.35)
        topo.connect("zet-buh", "amanet-buh", rate_bps=gbps(40.0),
                     kind=LinkKind.VIRTUAL, length_m=2_000.0,
                     utilisation=0.30)
        # Bucharest upstream -> Vienna IX presence of as39912.
        topo.connect("amanet-buh", "ix-vie", rate_bps=gbps(40.0),
                     utilisation=0.35)
        # Eyeball transit + access chain down to the probe.
        topo.connect("ix-vie", "ascus-core", rate_bps=gbps(40.0),
                     utilisation=0.30)
        topo.connect("ascus-core", "ascus-access", rate_bps=gbps(10.0),
                     utilisation=0.40)
        topo.connect("ascus-access", "probe-uni", rate_bps=gbps(1.0),
                     utilisation=0.20)
        # Cloud attachment + NREN chain.
        topo.connect("cloud-vie", "dp-vie", rate_bps=gbps(100.0),
                     utilisation=0.25)
        topo.connect("uni-wired", "uni-fw", rate_bps=gbps(10.0),
                     kind=LinkKind.VIRTUAL, length_m=200.0,
                     utilisation=0.30)
        topo.connect("uni-fw", "acon-graz", rate_bps=gbps(10.0),
                     utilisation=0.35)
        topo.connect("acon-graz", "acon-vie", rate_bps=gbps(100.0),
                     length_m=units.km(400.0), utilisation=0.30)
        topo.connect("acon-vie", "cloud-vie", rate_bps=gbps(100.0),
                     utilisation=0.25)

        self.topology = topo
        self.asgraph = asg
        self.routes = RouteComputer(topo, asg)

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------

    def _build_probes(self) -> None:
        registry = ProbeRegistry()
        registry.register(Probe(
            probe_id=1, name="uni-anchor", node_name="probe-uni",
            location=self.grid.cell_center(self.cell_e3),
            kind=ProbeKind.ANCHOR))
        registry.register(Probe(
            probe_id=2, name="uni-wired", node_name="uni-wired",
            location=UNI, kind=ProbeKind.ANCHOR))
        self.probes = registry

    # ------------------------------------------------------------------
    # campaign configuration (the calibration tables)
    # ------------------------------------------------------------------

    def _build_campaign_config(self) -> None:
        # CGNAT/UPF breakouts: Vienna is the busy default; Frankfurt is
        # the quiet overflow pool some sessions land on.
        gw_vie = Gateway("vienna", "gw-vie", UserPlaneFunction(
            name="upf-cgnat-vie", location=VIENNA,
            tier=SiteTier.REGIONAL_CORE,
            pipeline_s=1.2e-3, rule_count=30_000,
            throughput_bps=units.gbps(100.0), load=0.65))
        gw_fra = Gateway("frankfurt", "gw-fra", UserPlaneFunction(
            name="upf-cgnat-fra", location=FRANKFURT,
            tier=SiteTier.REGIONAL_CORE,
            pipeline_s=0.7e-3, rule_count=20_000,
            throughput_bps=units.gbps(100.0), load=0.15))
        # Edge breakout (the Sec. V-B deployment, used when
        # ``edge_breakout=True``): a lean UPF in Klagenfurt.
        gw_edge = Gateway("edge", "gw-kla", UserPlaneFunction(
            name="upf-edge-kla", location=GeoPoint(46.626, 14.306),
            tier=SiteTier.EDGE,
            pipeline_s=12e-6, rule_count=5_000,
            throughput_bps=units.gbps(100.0), load=0.25))

        # Eight mobile peers spread over moderately loaded cells.
        peer_loads = (0.58, 0.62, 0.65, 0.65, 0.68, 0.68, 0.70, 0.72)
        peers = {
            f"peer-{i + 1}": MobilePeer(
                name=f"peer-{i + 1}", air_load=load, sinr_db=13.0)
            for i, load in enumerate(peer_loads)
        }
        default_targets = tuple(f"peer-{i + 1}"
                                for i in range(len(peer_loads)))
        default_targets += ("probe-uni",)
        # C3's peers share its rush-hour arterial: all on congested
        # macros.  This raises C3's *mean* without adding own-queue
        # variance, keeping E5 the sigma maximum as in Fig. 3.
        for i in range(8):
            peers[f"peer-hot-{i + 1}"] = MobilePeer(
                name=f"peer-hot-{i + 1}", air_load=0.80, sinr_db=13.0)

        # Per-cell congestion field: seeded spatial noise plus anchors.
        load_rng = self.rng.stream("scenario.load")
        extra_load: dict[CellId, float] = {}
        for cell in self.traversed_cells:
            extra_load[cell] = float(load_rng.uniform(0.12, 0.24))
        for label, value in ANCHOR_EXTRA_LOAD.items():
            extra_load[CellId.from_label(label)] = value

        handover_prob = {CellId.from_label(label): p
                         for label, p in ANCHOR_HANDOVER_PROB.items()}

        targets: dict[CellId, tuple[str, ...]] = {}
        # B3: wired-probe-only measurements (quiet residential cell whose
        # peers were offline) -> no peer-side air variance.
        targets[CellId.from_label("B3")] = ("probe-uni",) * 9
        targets[CellId.from_label("C3")] = tuple(
            f"peer-hot-{i + 1}" for i in range(8)) + ("probe-uni",)

        from ..ran.spectrum import Generation
        interruption = HANDOVER_INTERRUPTION_S
        if self.radio_config.generation is Generation.SIX_G:
            # 6G make-before-break: interruptions shrink to ~1 ms.
            interruption = 1e-3
        gateway_by_cell = {CellId.from_label("B3"): "frankfurt"}
        default_gateway = "vienna"
        if self.edge_breakout:
            # Campaign-wide edge termination: every cell (including B3)
            # breaks out locally.
            default_gateway = "edge"
            gateway_by_cell = {}

        self.campaign_config = CampaignConfig(
            targets=targets,
            gateways={"vienna": gw_vie, "frankfurt": gw_fra,
                      "edge": gw_edge},
            default_gateway=default_gateway,
            peers=peers,
            default_targets=default_targets,
            gateway_by_cell=gateway_by_cell,
            cell_extra_load=extra_load,
            handover_prob=handover_prob,
            handover_interruption_s=interruption,
        )

    # ------------------------------------------------------------------
    # campaign execution + headline artifacts
    # ------------------------------------------------------------------

    def drive_route(self, mean_positions_per_cell: float = 6.0
                    ) -> DriveTestRoute:
        """The drive-test traversal of the 33 measured cells."""
        density = {cell: self.population.cell_density(self.grid, cell)
                   for cell in self.traversed_cells}
        mean_density = float(np.mean(list(density.values())))
        weights = {cell: d / mean_density for cell, d in density.items()}
        return DriveTestRoute(
            self.grid, self.traversed_cells,
            self.rng.stream("scenario.route"),
            traffic_weight=weights,
            mean_samples_per_cell=mean_positions_per_cell,
            min_samples=2,
        )

    def campaign(self, mean_positions_per_cell: float = 6.0
                 ) -> DriveTestCampaign:
        """Build the (not yet run) drive-test campaign."""
        return DriveTestCampaign(
            grid=self.grid,
            route=self.drive_route(mean_positions_per_cell),
            radio=self.radio,
            routes=self.routes,
            config=self.campaign_config,
            rng=self.rng,
        )

    def run_campaign(self, mean_positions_per_cell: float = 6.0
                     ) -> MeasurementDataset:
        """Run the full drive test; returns the measurement dataset."""
        return self.campaign(mean_positions_per_cell).run()

    def statistics(self, dataset: MeasurementDataset) -> CellStatistics:
        """Per-cell aggregation of a campaign dataset."""
        return CellStatistics(self.grid, dataset)

    def wired_baseline(self, count: int = 50) -> np.ndarray:
        """Wired RTTs university -> cloud (the [3] baseline, 7-12 ms)."""
        return ping(self.routes, "uni-wired", "cloud-vie",
                    self.rng.stream("scenario.wired"), count=count)

    def reference_trace(self) -> TracerouteResult:
        """Table I: the hop chain from the C2 mobile node to the probe."""
        route = self.routes.route("ue-c2", "probe-uni")
        return traceroute(self.topology, route)

    def detour_route_km(self) -> float:
        """Fig. 4: deployed-fibre length of the geographic loop
        Klagenfurt -> Vienna -> Prague -> Bucharest -> Vienna, derived
        from the trace's hop locations (up to the IX re-entry)."""
        trace = self.reference_trace()
        hops = [self.topology.node(h.node_name) for h in trace.hops]
        locations = [self.topology.node("ue-c2").location]
        locations += [h.location for h in hops]
        # Truncate after the Vienna IX hop (the paper's loop of Fig. 4).
        ix_index = next(i for i, h in enumerate(hops)
                        if h.name == "ix-vie")
        loop = locations[: ix_index + 2]
        from ..geo.coords import path_length
        return units.to_km(path_length(loop) * 1.05)
