"""One-call orchestration of the full Section IV evaluation.

:class:`InfrastructureEvaluation` is the facade an end user (and every
figure bench) goes through: build the scenario, run the drive test,
aggregate per cell, compute the gap report, and render the figures.
Any compiled :class:`~repro.scenarios.build.BuiltScenario` works — pass
a registered scenario name (``"klagenfurt"``, ``"skopje"``, ...), a
:class:`~repro.scenarios.spec.ScenarioSpec`, or a pre-built scenario.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np

from ..probes.results import MeasurementDataset
from ..probes.stats import CellStatistics
from ..scenarios import build as compile_spec
from ..scenarios import get as get_spec
from ..scenarios.build import BuiltScenario
from ..scenarios.spec import ScenarioSpec
from .gap import GapAnalysis, GapReport
from .report import render_grid_heatmap

__all__ = ["EvaluationResult", "EvaluationSummary",
           "InfrastructureEvaluation"]


def _matrix(value, cast: Callable = float) -> tuple[tuple, ...]:
    # Coerce cells to plain Python scalars: stray numpy floats would
    # serialize differently (or not at all) and break digest stability.
    return tuple(tuple(cast(cell) for cell in row) for row in value)


@dataclass(frozen=True)
class EvaluationSummary:
    """The lightweight record of one evaluation run.

    Holds only plain values — per-cell matrices as nested tuples, the
    gap headline numbers, the detour length — so it pickles cheaply
    across process boundaries and round-trips losslessly through JSON.
    The heavyweight compiled world and raw dataset stay behind on
    :class:`EvaluationResult`.
    """

    scenario: str
    seed: int
    mean_positions_per_cell: float
    sample_count: int
    mean_matrix_ms: tuple[tuple[float, ...], ...]
    std_matrix_ms: tuple[tuple[float, ...], ...]
    count_matrix: tuple[tuple[int, ...], ...]
    gap: GapReport
    detour_km: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "mean_matrix_ms",
                           _matrix(self.mean_matrix_ms))
        object.__setattr__(self, "std_matrix_ms",
                           _matrix(self.std_matrix_ms))
        object.__setattr__(self, "count_matrix",
                           _matrix(self.count_matrix, cast=int))
        if isinstance(self.gap, Mapping):
            object.__setattr__(self, "gap", GapReport(**self.gap))

    @property
    def mobile_mean_s(self) -> float:
        return self.gap.mobile_mean_s

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "mean_positions_per_cell": self.mean_positions_per_cell,
            "sample_count": self.sample_count,
            "mean_matrix_ms": [list(r) for r in self.mean_matrix_ms],
            "std_matrix_ms": [list(r) for r in self.std_matrix_ms],
            "count_matrix": [list(r) for r in self.count_matrix],
            "gap": asdict(self.gap),
            "detour_km": self.detour_km,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationSummary":
        return cls(**data)

    def canonical_json(self) -> str:
        """Digest-stable serialization: sorted keys, compact separators.

        Structurally equal summaries always produce identical bytes.
        Uses the same rules as :func:`repro.fleet.cache.canonical_dumps`
        (which hashes record payloads embedding this dict), kept local
        because :mod:`repro.core` sits below the fleet layer.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


@dataclass
class EvaluationResult:
    """Everything Section IV produces."""

    scenario: BuiltScenario
    dataset: MeasurementDataset
    statistics: CellStatistics
    wired_rtts_s: np.ndarray
    gap: GapReport
    mean_positions_per_cell: float = 6.0

    def summary(self) -> EvaluationSummary:
        """The run reduced to its portable summary record."""
        return EvaluationSummary(
            scenario=self.scenario.spec.name,
            seed=self.scenario.seed,
            mean_positions_per_cell=self.mean_positions_per_cell,
            sample_count=len(self.dataset),
            mean_matrix_ms=self.statistics.mean_matrix_ms().tolist(),
            std_matrix_ms=self.statistics.std_matrix_ms().tolist(),
            count_matrix=self.statistics.count_matrix().tolist(),
            gap=self.gap,
            detour_km=self.figure4_km(),
        )

    def figure2(self) -> str:
        """Fig. 2: urban mean round-trip time latency heatmap."""
        return render_grid_heatmap(
            self.scenario.grid, self.statistics.mean_matrix_ms(),
            title="Urban Mean Round-trip Time Latency")

    def figure3(self) -> str:
        """Fig. 3: per-cell standard deviation heatmap."""
        return render_grid_heatmap(
            self.scenario.grid, self.statistics.std_matrix_ms(),
            title="Standard Deviation Latency")

    def table1(self) -> str:
        """Table I: the hop chain of the local service request."""
        return self.scenario.reference_trace().render_table(
            title="NETWORKING HOPS FOR LOCAL SERVICE REQUEST")

    def figure4_km(self) -> float:
        """Fig. 4: the geographic detour length (paper: 2544 km)."""
        return self.scenario.detour_route_km()

    def save_artifacts(self, directory) -> dict[str, str]:
        """Write every Section IV artifact to ``directory``.

        Files: ``figure2.txt``, ``figure3.txt``, ``table1.txt``,
        ``gap_summary.txt``, ``campaign.csv`` (the raw dataset) and
        ``wired_baseline.csv``.  Returns ``{artifact: path}``.
        """
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        paths: dict[str, str] = {}

        def write(name: str, text: str) -> None:
            path = out / name
            path.write_text(text + "\n")
            paths[name] = str(path)

        write("figure2.txt", self.figure2())
        write("figure3.txt", self.figure3())
        write("table1.txt", self.table1())
        write("gap_summary.txt",
              self.gap.summary()
              + f"\nfig4 detour: {self.figure4_km():.0f} km")
        self.dataset.save_csv(out / "campaign.csv")
        paths["campaign.csv"] = str(out / "campaign.csv")
        wired_lines = ["rtt_ms"] + [f"{v * 1e3:.3f}"
                                    for v in self.wired_rtts_s]
        write("wired_baseline.csv", "\n".join(wired_lines))
        return paths


class InfrastructureEvaluation:
    """Builds and runs the whole Section IV pipeline for any scenario.

    Parameters
    ----------
    seed:
        Root seed of every stochastic component.
    mean_positions_per_cell:
        Drive-test sampling density.
    scenario:
        Which world to evaluate: a registered scenario name or a
        :class:`ScenarioSpec`.  Defaults to Klagenfurt, preserving the
        paper's Section IV pipeline exactly.
    """

    def __init__(self, seed: int = 42,
                 mean_positions_per_cell: float = 6.0,
                 scenario: Union[str, ScenarioSpec] = "klagenfurt"):
        if mean_positions_per_cell <= 0:
            raise ValueError("positions per cell must be positive")
        self.seed = seed
        self.mean_positions_per_cell = mean_positions_per_cell
        self.scenario = scenario

    def build_scenario(self) -> BuiltScenario:
        """Compile the configured spec (or look up the named one)."""
        spec = self.scenario if isinstance(self.scenario, ScenarioSpec) \
            else get_spec(self.scenario)
        return compile_spec(spec, seed=self.seed)

    def run(self, scenario: Optional[BuiltScenario] = None
            ) -> EvaluationResult:
        """Execute the campaign and derive all artifacts.

        An explicitly passed pre-built ``scenario`` wins over the
        configured name/spec.
        """
        sc = scenario if scenario is not None else self.build_scenario()
        dataset = sc.run_campaign(self.mean_positions_per_cell)
        stats = sc.statistics(dataset)
        wired = sc.wired_baseline()
        gap = GapAnalysis().report(stats, wired)
        return EvaluationResult(
            scenario=sc,
            dataset=dataset,
            statistics=stats,
            wired_rtts_s=wired,
            gap=gap,
            mean_positions_per_cell=self.mean_positions_per_cell,
        )
