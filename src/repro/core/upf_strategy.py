"""UPF integration and placement strategy (Section V-B).

Quantifies the paper's central remedy: terminate the user plane at the
*edge* instead of the regional core.  Three deployment tiers are
compared under the 5G URLLC radio profile the cited studies use:

* **central cloud** — UPF in a public-cloud region (the worst case);
* **regional core** — the Vienna CGNAT of the measurement campaign;
* **edge** — UPF co-located with the CU in Klagenfurt, service on-site.

Paper targets: edge UPF brings the service RTT to **5-6.2 ms** (Leyva /
Barrachina / Goshi numbers), versus the >62 ms measured through the
regional core — "a reduction of up to 90 %".  On top of placement,
:class:`DynamicUpfSelector` implements the paper's "dynamic UPF
selection ... prioritising latency-sensitive tasks at the edge while
offloading less critical workloads to centralised cloud UPFs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import units
from ..cn.nf import SiteTier
from ..cn.upf import UserPlaneFunction
from ..geo.coords import GeoPoint
from ..geo.places import PLACES, VIENNA
from ..ran.channel import ChannelModel
from ..ran.phy import AirInterface
from ..ran.spectrum import RadioConfig

__all__ = ["UpfDeployment", "UpfPlacementStudy", "DynamicUpfSelector"]

#: Edge site: co-located with the Klagenfurt CU.
EDGE_SITE = PLACES["university_klagenfurt"]
#: Cloud region used for the central arm (Frankfurt-like distance).
CLOUD_SITE = PLACES["frankfurt"]


@dataclass(frozen=True)
class UpfDeployment:
    """One deployment arm of the placement study."""

    name: str
    upf: UserPlaneFunction
    #: one-way distance gNB -> UPF site, metres
    backhaul_m: float
    #: one-way distance UPF -> application server, metres
    dn_m: float


class UpfPlacementStudy:
    """RTT of one service transaction per UPF deployment tier."""

    def __init__(self, *, radio_config: Optional[RadioConfig] = None,
                 gnb_site: Optional[GeoPoint] = None,
                 server_processing_s: float = 1.5e-3,
                 air_load: float = 0.50, sinr_db: float = 18.0):
        if server_processing_s < 0:
            raise ValueError("server processing must be non-negative")
        self.radio_config = radio_config if radio_config is not None \
            else RadioConfig.nr_5g_urllc()
        self.gnb_site = gnb_site if gnb_site is not None else EDGE_SITE
        self.server_processing_s = server_processing_s
        self.air_load = air_load
        self.sinr_db = sinr_db
        self.air = AirInterface(
            self.radio_config,
            ChannelModel(self.radio_config.carrier_frequency_hz,
                         antenna_gain_db=25.0))

    # -- deployment arms ----------------------------------------------------

    def deployments(self) -> list[UpfDeployment]:
        """The three tiers, with distances from the gNB site."""
        base = UserPlaneFunction(
            name="upf", location=self.gnb_site, tier=SiteTier.EDGE,
            pipeline_s=12e-6, rule_count=5_000, load=0.3)
        edge = UpfDeployment(
            name="edge",
            upf=base.at_site(self.gnb_site, SiteTier.EDGE),
            backhaul_m=6_000.0,               # metro aggregation ring
            dn_m=500.0)                       # server on-site
        regional = UpfDeployment(
            name="regional-core",
            upf=base.at_site(VIENNA, SiteTier.REGIONAL_CORE),
            backhaul_m=self.gnb_site.distance_to(VIENNA),
            dn_m=self.gnb_site.distance_to(VIENNA))  # service back south
        cloud = UpfDeployment(
            name="central-cloud",
            upf=base.at_site(CLOUD_SITE, SiteTier.CENTRAL_CLOUD),
            backhaul_m=self.gnb_site.distance_to(CLOUD_SITE),
            dn_m=self.gnb_site.distance_to(CLOUD_SITE))
        return [edge, regional, cloud]

    # -- latency -------------------------------------------------------------

    def mean_rtt_s(self, deployment: UpfDeployment) -> float:
        """Expected service RTT through one deployment."""
        air = self.air.mean_rtt(load=self.air_load, sinr_db=self.sinr_db)
        backhaul = 2.0 * units.fibre_delay(deployment.backhaul_m * 1.05)
        upf = 2.0 * deployment.upf.mean_latency_s()
        dn = 2.0 * units.fibre_delay(deployment.dn_m * 1.05)
        return air + backhaul + upf + dn + self.server_processing_s

    def sample_rtt_s(self, deployment: UpfDeployment,
                     rng: np.random.Generator) -> float:
        """One sampled service RTT through one deployment."""
        air = self.air.sample_rtt(rng, load=self.air_load,
                                  sinr_db=self.sinr_db)
        backhaul = 2.0 * units.fibre_delay(deployment.backhaul_m * 1.05)
        upf = 2.0 * deployment.upf.sample_latency_s(rng)
        dn = 2.0 * units.fibre_delay(deployment.dn_m * 1.05)
        return air + backhaul + upf + dn + self.server_processing_s

    def compare(self) -> dict[str, float]:
        """Deployment name -> mean RTT (seconds)."""
        return {d.name: self.mean_rtt_s(d) for d in self.deployments()}

    def reduction_vs_measured(self, measured_rtt_s: float) -> float:
        """Fractional RTT reduction of the edge arm against a measured
        baseline (the paper quotes 'up to 90 %' against its >62 ms)."""
        if measured_rtt_s <= 0:
            raise ValueError("measured RTT must be positive")
        edge = self.mean_rtt_s(self.deployments()[0])
        return 1.0 - edge / measured_rtt_s


class DynamicUpfSelector:
    """Per-flow UPF selection between edge and cloud anchors.

    Latency-critical flows (tight delay budgets) anchor at the edge UPF
    until its capacity is exhausted; bulk flows anchor in the cloud.
    This is deliberately simple — the point the paper makes is the
    *policy*, not the optimiser.
    """

    def __init__(self, study: UpfPlacementStudy, *,
                 edge_capacity_flows: int = 100):
        if edge_capacity_flows < 0:
            raise ValueError("edge capacity must be non-negative")
        self.study = study
        deployments = {d.name: d for d in study.deployments()}
        self.edge = deployments["edge"]
        self.cloud = deployments["central-cloud"]
        self.edge_capacity_flows = edge_capacity_flows
        self._edge_flows = 0

    @property
    def edge_flows(self) -> int:
        return self._edge_flows

    def select(self, delay_budget_s: float) -> UpfDeployment:
        """Anchor a new flow; returns the chosen deployment."""
        if delay_budget_s <= 0:
            raise ValueError("delay budget must be positive")
        edge_rtt = self.study.mean_rtt_s(self.edge)
        cloud_rtt = self.study.mean_rtt_s(self.cloud)
        # Cloud satisfies the budget -> offload (preserve edge capacity).
        if cloud_rtt <= delay_budget_s:
            return self.cloud
        if edge_rtt <= delay_budget_s and \
                self._edge_flows < self.edge_capacity_flows:
            self._edge_flows += 1
            return self.edge
        # Nothing satisfies the budget: least-bad anchor.
        return self.edge if edge_rtt < cloud_rtt and \
            self._edge_flows < self.edge_capacity_flows else self.cloud

    def release(self) -> None:
        """Release one edge flow (flow teardown)."""
        if self._edge_flows == 0:
            raise RuntimeError("no edge flows to release")
        self._edge_flows -= 1
