"""Control-plane functionality enhancement (Section V-C).

Compares the classical centralised 5G control plane against the
RIC-consolidated deployment the paper advocates ([38]): session and
mobility management hosted as an xApp on the Near-RT RIC at the network
edge.  The comparison is procedure-level — the same 3GPP call flows are
rebuilt over each deployment's NF placement — plus the context-aware
QoS rule engine's lookup/update effect at the UPF ([32]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import units
from ..cn.nf import NetworkFunction, NFKind, SbiBus, SiteTier
from ..cn.procedures import ProcedureBuilder
from ..cn.qos import ContextAwareRuleEngine, QosFlow
from ..cn.upf import UserPlaneFunction
from ..geo.coords import GeoPoint
from ..geo.places import PLACES, VIENNA
from ..ran.oran import NearRTRIC, RicTier, XApp

__all__ = ["CpfComparison", "CpfEnhancementStudy", "QosCacheStudy"]

EDGE_SITE = PLACES["university_klagenfurt"]


@dataclass(frozen=True)
class CpfComparison:
    """Procedure latencies under both control-plane deployments."""

    procedure: str
    centralised_s: float
    ric_consolidated_s: float

    @property
    def improvement_s(self) -> float:
        return self.centralised_s - self.ric_consolidated_s

    @property
    def improvement_fraction(self) -> float:
        return self.improvement_s / self.centralised_s


class CpfEnhancementStudy:
    """Builds both deployments and compares the 3GPP procedures."""

    def __init__(self, *, gnb_site: Optional[GeoPoint] = None,
                 air_one_way_s: float = 4e-3):
        self.gnb_site = gnb_site if gnb_site is not None else EDGE_SITE
        self.air_one_way_s = air_one_way_s
        self._build_centralised()
        self._build_ric()

    def _build_centralised(self) -> None:
        """Classical core: all CPFs at the Vienna regional site."""
        bus = SbiBus()
        self.central = {
            kind: bus.register(NetworkFunction(
                name=f"{kind.value}-vie", kind=kind, location=VIENNA,
                tier=SiteTier.REGIONAL_CORE))
            for kind in (NFKind.AMF, NFKind.SMF, NFKind.PCF, NFKind.UDM,
                         NFKind.AUSF)
        }
        self.central_bus = bus
        self.central_builder = ProcedureBuilder(
            bus, air_one_way_s=self.air_one_way_s)

    def _build_ric(self) -> None:
        """RIC-consolidated: session + mobility xApp at the edge CU.

        Subscriber-data functions (UDM/AUSF) stay central — the paper's
        hybrid: "the constraints imposed by real-time scheduling require
        a hybrid approach that balances centralized and decentralized
        control mechanisms."
        """
        self.ric = NearRTRIC("ric-kla", self.gnb_site,
                             e2_latency_s=units.ms(1.0))
        self.ric.deploy(XApp("session-mobility-mgmt",
                             RicTier.NEAR_REAL_TIME, processing_s=15e-3))
        bus = SbiBus()
        edge = {}
        for kind in (NFKind.AMF, NFKind.SMF, NFKind.PCF):
            edge[kind] = bus.register(NetworkFunction(
                name=f"{kind.value}-edge", kind=kind,
                location=self.gnb_site, tier=SiteTier.EDGE))
        for kind in (NFKind.UDM, NFKind.AUSF):
            edge[kind] = bus.register(NetworkFunction(
                name=f"{kind.value}-vie", kind=kind, location=VIENNA,
                tier=SiteTier.REGIONAL_CORE))
        self.edge_nfs = edge
        self.edge_bus = bus
        self.edge_builder = ProcedureBuilder(
            bus, air_one_way_s=self.air_one_way_s)

    # -- comparisons ---------------------------------------------------------

    def compare_pdu_session(self, *,
                            central_upf_site: Optional[GeoPoint] = None,
                            edge_upf_site: Optional[GeoPoint] = None
                            ) -> CpfComparison:
        """PDU session establishment under both deployments."""
        central_upf = central_upf_site if central_upf_site is not None \
            else VIENNA
        edge_upf = edge_upf_site if edge_upf_site is not None \
            else self.gnb_site
        central = self.central_builder.pdu_session_establishment(
            self.gnb_site, amf=self.central[NFKind.AMF],
            smf=self.central[NFKind.SMF], pcf=self.central[NFKind.PCF],
            upf_site=central_upf)
        edge = self.edge_builder.pdu_session_establishment(
            self.gnb_site, amf=self.edge_nfs[NFKind.AMF],
            smf=self.edge_nfs[NFKind.SMF], pcf=self.edge_nfs[NFKind.PCF],
            upf_site=edge_upf)
        return CpfComparison("pdu-session-establishment",
                             central.total_s, edge.total_s)

    def compare_registration(self) -> CpfComparison:
        """UE registration under both deployments."""
        central = self.central_builder.registration(
            self.gnb_site, amf=self.central[NFKind.AMF],
            ausf=self.central[NFKind.AUSF], udm=self.central[NFKind.UDM],
            pcf=self.central[NFKind.PCF])
        edge = self.edge_builder.registration(
            self.gnb_site, amf=self.edge_nfs[NFKind.AMF],
            ausf=self.edge_nfs[NFKind.AUSF],
            udm=self.edge_nfs[NFKind.UDM],
            pcf=self.edge_nfs[NFKind.PCF])
        return CpfComparison("registration", central.total_s, edge.total_s)

    def compare_service_request(self) -> CpfComparison:
        """Idle-to-connected service request under both deployments."""
        central = self.central_builder.service_request(
            self.gnb_site, amf=self.central[NFKind.AMF])
        edge = self.edge_builder.service_request(
            self.gnb_site, amf=self.edge_nfs[NFKind.AMF])
        return CpfComparison("service-request",
                             central.total_s, edge.total_s)

    def compare_all(self) -> list[CpfComparison]:
        """All three procedures compared."""
        return [self.compare_registration(),
                self.compare_pdu_session(),
                self.compare_service_request()]


class QosCacheStudy:
    """Context-aware QoS rule caching effect at the UPF ([32]).

    Runs a flow mix (a few latency-critical flows, many bulk flows)
    through the rule engine and reports mean lookup latency with the
    cache against the plain linear-scan baseline.
    """

    def __init__(self, *, rule_count: int = 30_000, cache_capacity: int = 64):
        self.upf = UserPlaneFunction(
            name="upf-qos", location=VIENNA, rule_count=rule_count)
        self.engine = ContextAwareRuleEngine(self.upf,
                                             capacity=cache_capacity)

    def run(self, *, critical_flows: int = 8, bulk_flows: int = 512,
            packets_per_critical: int = 200,
            packets_per_bulk: int = 2) -> dict[str, float]:
        """Returns mean lookup latency (seconds) for both designs."""
        if critical_flows < 1 or bulk_flows < 0:
            raise ValueError("flow counts invalid")
        flows = [QosFlow(f"crit-{i}", f"ue-{i % 4}", 85)
                 for i in range(critical_flows)]
        bulk = [QosFlow(f"bulk-{i}", f"ue-{i % 64}", 9)
                for i in range(bulk_flows)]
        total_cached = 0.0
        total_plain = 0.0
        packets = 0
        # Interleave: critical flows send steadily, bulk flows churn.
        for round_idx in range(packets_per_critical):
            for flow in flows:
                total_cached += self.engine.lookup(flow)
                total_plain += self.upf.lookup_s(cached=False)
                packets += 1
            if round_idx < packets_per_bulk:
                for flow in bulk:
                    total_cached += self.engine.lookup(flow)
                    total_plain += self.upf.lookup_s(cached=False)
                    packets += 1
        return {
            "context_aware_s": total_cached / packets,
            "linear_scan_s": total_plain / packets,
            "hit_rate": self.engine.hit_rate,
        }
