"""Local peering optimization (Section V-A).

The what-if the paper argues for: establish a Klagenfurt internet
exchange, land the mobile operator and the local eyeball ISP on it, and
peer them directly.  The Vienna-Prague-Bucharest-Vienna transit chain
collapses to a metro hop.

The experiment is executed against a built
:class:`~repro.core.scenario.KlagenfurtScenario`: it measures the
gateway-to-probe path before and after, re-running BGP with the added
``p2p`` edge — the same machinery that produced the detour now removes
it, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..geo.coords import GeoPoint
from ..net.ixp import InternetExchange
from ..net.traceroute import TracerouteResult, traceroute
from .scenario import AS_EYEBALL, AS_MOBILE, KlagenfurtScenario

__all__ = ["PeeringOutcome", "LocalPeeringExperiment"]

#: Site of the hypothetical Klagenfurt exchange (city centre).
KLAGENFURT_IX_SITE = GeoPoint(46.624, 14.308)


@dataclass(frozen=True)
class PeeringOutcome:
    """Before/after comparison of the local-peering what-if."""

    before_rtt_s: float
    after_rtt_s: float
    before_hops: int
    after_hops: int
    before_path_km: float
    after_path_km: float
    before_as_path: tuple[int, ...]
    after_as_path: tuple[int, ...]

    @property
    def rtt_reduction_factor(self) -> float:
        return self.before_rtt_s / self.after_rtt_s

    @property
    def detour_eliminated(self) -> bool:
        """True when the route no longer leaves the metro area."""
        return self.after_path_km < 100.0


class LocalPeeringExperiment:
    """Adds a Klagenfurt IXP and peers the mobile and eyeball ASes.

    The mobile operator must also *backhaul its user plane locally* for
    the peering to matter — peering in Klagenfurt is useless while the
    CGNAT sits in Vienna.  The experiment therefore adds a local
    breakout router for the mobile AS at the exchange, reflecting how
    operators actually deploy local peering (UPF breakout + IX port).
    """

    def __init__(self, scenario: KlagenfurtScenario):
        self.scenario = scenario
        self._applied = False

    def baseline_trace(self) -> TracerouteResult:
        """The pre-peering Table I trace."""
        return self.scenario.reference_trace()

    def apply(self) -> InternetExchange:
        """Create the IXP, join both ASes, establish the peering."""
        if self._applied:
            raise RuntimeError("peering experiment already applied")
        scenario = self.scenario
        topo = scenario.topology
        # Local user-plane breakout of the mobile operator at the IX.
        from ..net.node import Node, NodeKind
        breakout = topo.add_node(Node(
            name="gw-kla-local", kind=NodeKind.GATEWAY,
            location=KLAGENFURT_IX_SITE, asn=AS_MOBILE,
            display_name="10.12.129.1"))
        # Tie the breakout into the operator's user plane and give the
        # UE a direct path to it.
        topo.connect("ue-c2", "gw-kla-local",
                     rate_bps=units.gbps(10.0))
        topo.connect("gw-kla-local", "gw-vie",
                     rate_bps=units.gbps(100.0))

        ix = InternetExchange("kla-ix", KLAGENFURT_IX_SITE)
        ix.join(AS_MOBILE, breakout)
        ix.join(AS_EYEBALL, topo.node("ascus-core"))
        ix.peer(topo, scenario.asgraph, AS_MOBILE, AS_EYEBALL)
        scenario.routes.invalidate()
        self._applied = True
        return ix

    def run(self) -> PeeringOutcome:
        """Execute the full before/after comparison."""
        before = self.baseline_trace()
        before_route = self.scenario.routes.route("ue-c2", "probe-uni")
        self.apply()
        after_route = self.scenario.routes.route("ue-c2", "probe-uni")
        after = traceroute(self.scenario.topology, after_route)
        return PeeringOutcome(
            before_rtt_s=before.total_rtt_s,
            after_rtt_s=after.total_rtt_s,
            before_hops=before.hop_count,
            after_hops=after.hop_count,
            before_path_km=self._geo_km(before),
            after_path_km=self._geo_km(after),
            before_as_path=before_route.as_path,
            after_as_path=after_route.as_path,
        )

    def _geo_km(self, trace: TracerouteResult) -> float:
        """Geographic route length from hop locations (not link lengths,
        which include the RAN stand-in on the first hop)."""
        topo = self.scenario.topology
        points = [topo.node(trace.src).location]
        points += [topo.node(h.node_name).location for h in trace.hops]
        from ..geo.coords import path_length
        return units.to_km(path_length(points) * 1.05)
