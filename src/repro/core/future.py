"""Future-work studies (Section VI outlook, built on the same substrate).

The paper's conclusion names four directions; each gets an executable
study here:

* :class:`SixGUpgradeStudy` — "expand ... and validate the proposed
  recommendations": the full drive-test campaign re-run over upgrade
  arms (5G baseline, 5G + edge breakout, 6G, 6G + edge breakout).
* :class:`FederatedEdgeStudy` — "federated learning at the edge": FL
  round times under 5G-cloud / 5G-edge / 6G-edge deployments.
* :class:`PredictiveSlicingStudy` — "intelligent network slicing":
  reactive versus predictive slice scaling over a diurnal load trace
  (the hypervisor-placement literature "typically operate[s] in a
  reactive rather than predictive manner").
* energy-efficient management lives in :mod:`repro.ran.energy`; the
  trade-off bench combines it with the latency model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .. import units
from ..apps.federated import FederatedConfig, FederatedRoundModel
from ..ran.spectrum import RadioConfig
from .gap import GapAnalysis, GapReport
from .scenario import KlagenfurtScenario

__all__ = ["UpgradeArm", "SixGUpgradeStudy", "FederatedEdgeStudy",
           "PredictiveSlicingStudy"]


# ---------------------------------------------------------------------------
# 6G upgrade of the measured footprint
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UpgradeArm:
    """One deployment arm of the upgrade study."""

    name: str
    radio_config: Optional[RadioConfig]   #: None = deployed 5G
    edge_breakout: bool


class SixGUpgradeStudy:
    """Re-runs the whole Section IV campaign over upgrade arms."""

    ARMS: tuple[UpgradeArm, ...] = (
        UpgradeArm("5G (measured)", None, False),
        UpgradeArm("5G + edge breakout", None, True),
        UpgradeArm("6G radio, core unchanged", "6g", False),
        UpgradeArm("6G + edge breakout", "6g", True),
    )

    def __init__(self, seed: int = 42,
                 mean_positions_per_cell: float = 4.0):
        self.seed = seed
        self.mean_positions_per_cell = mean_positions_per_cell

    def run_arm(self, arm: UpgradeArm) -> GapReport:
        """One campaign under one deployment arm."""
        radio = RadioConfig.nr_6g() if arm.radio_config == "6g" else None
        scenario = KlagenfurtScenario(
            seed=self.seed, radio_config=radio,
            edge_breakout=arm.edge_breakout)
        stats = scenario.statistics(
            scenario.run_campaign(self.mean_positions_per_cell))
        return GapAnalysis().report(stats, scenario.wired_baseline())

    def run(self) -> dict[str, GapReport]:
        """All arms; key = arm name."""
        return {arm.name: self.run_arm(arm) for arm in self.ARMS}

    @staticmethod
    def meets_requirement(report: GapReport,
                          budget_s: float = units.ms(20.0)) -> bool:
        """Does the arm's *worst cell* meet the AR budget?"""
        return report.max_cell_mean_s <= budget_s


# ---------------------------------------------------------------------------
# Federated learning at the edge
# ---------------------------------------------------------------------------

class FederatedEdgeStudy:
    """FL round times across network deployments.

    Deployments differ in access RTT, aggregator distance and cell
    capacity; magnitudes come from the same models as the rest of the
    reproduction (5G mean access RTT from the campaign, 6G from the
    radio model, cloud RTT from the UPF placement study's distances).
    """

    def __init__(self, config: Optional[FederatedConfig] = None):
        self.config = config if config is not None else FederatedConfig()

    def deployments(self) -> dict[str, FederatedRoundModel]:
        """The three FL network deployments (see class docstring)."""
        cfg = self.config
        return {
            # Measured 5G with cloud aggregation: drive-test access RTT,
            # Frankfurt-distance aggregator.
            "5G + cloud aggregation": FederatedRoundModel(
                cfg,
                cell_uplink_bps=units.mbps(100.0),
                cell_downlink_bps=units.mbps(400.0),
                access_rtt_s=units.ms(35.0),
                aggregator_rtt_s=units.ms(16.0)),
            # 5G with the aggregator at the edge UPF site.
            "5G + edge aggregation": FederatedRoundModel(
                cfg,
                cell_uplink_bps=units.mbps(100.0),
                cell_downlink_bps=units.mbps(400.0),
                access_rtt_s=units.ms(8.0),
                aggregator_rtt_s=0.0),
            # 6G edge: terabit-class cell, 100 us air.
            "6G + edge aggregation": FederatedRoundModel(
                cfg,
                cell_uplink_bps=units.gbps(10.0),
                cell_downlink_bps=units.gbps(40.0),
                access_rtt_s=units.ms(0.3),
                aggregator_rtt_s=0.0),
        }

    def compare(self) -> dict[str, dict[str, float]]:
        """Deployment -> {round_time_s, rounds_per_hour, network_share}."""
        out = {}
        for name, model in self.deployments().items():
            out[name] = {
                "round_time_s": model.round_time_s(),
                "rounds_per_hour": model.rounds_per_hour(),
                "network_share": model.network_share(),
            }
        return out


# ---------------------------------------------------------------------------
# Intelligent (predictive) network slicing
# ---------------------------------------------------------------------------

class PredictiveSlicingStudy:
    """Reactive vs predictive slice scaling over a diurnal load trace.

    A slice needs its reservation to track demand.  The *reactive*
    controller resizes after observing a breach (one control-interval
    lag); the *predictive* controller resizes ahead using a one-step
    forecast.  Score: how many intervals the slice runs above its
    safe-utilisation bound (where queueing, and thus latency, blows up).
    """

    def __init__(self, *, capacity_bps: float = units.gbps(10.0),
                 safe_utilisation: float = 0.7,
                 headroom: float = 1.25):
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < safe_utilisation < 1.0:
            raise ValueError("safe utilisation must be in (0, 1)")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        self.capacity_bps = capacity_bps
        self.safe_utilisation = safe_utilisation
        self.headroom = headroom

    def _required_fraction(self, demand_bps: float) -> float:
        """Reservation needed to keep utilisation at the safe bound."""
        return min(1.0, demand_bps
                   / (self.safe_utilisation * self.capacity_bps))

    def run(self, demand_trace_bps: Sequence[float]) -> dict[str, int]:
        """Breach counts for both controllers over the trace."""
        demand = np.asarray(demand_trace_bps, dtype=np.float64)
        if demand.ndim != 1 or demand.size < 3:
            raise ValueError("demand trace must have at least 3 points")
        if demand.min() < 0:
            raise ValueError("demand must be non-negative")
        reactive_breaches = 0
        predictive_breaches = 0
        # Reactive: provision for *yesterday's* observation (lag 1).
        # Predictive: provision for a linear one-step-ahead forecast.
        reactive_frac = self._required_fraction(float(demand[0]))
        predictive_frac = self._required_fraction(float(demand[0]))
        for t in range(1, demand.size):
            need = self._required_fraction(float(demand[t]))
            if need > reactive_frac:
                reactive_breaches += 1
            if need > predictive_frac:
                predictive_breaches += 1
            # Controllers update for the next interval.
            reactive_frac = min(
                1.0, self._required_fraction(float(demand[t]))
                * self.headroom)
            forecast = demand[t] + (demand[t] - demand[t - 1])
            predictive_frac = min(
                1.0, self._required_fraction(float(max(forecast, 0.0)))
                * self.headroom)
        return {"reactive": reactive_breaches,
                "predictive": predictive_breaches}

    @staticmethod
    def diurnal_demand(peak_bps: float, points: int = 96) -> np.ndarray:
        """A smooth diurnal demand trace (15-minute resolution)."""
        if peak_bps <= 0 or points < 4:
            raise ValueError("need positive peak and >= 4 points")
        t = np.linspace(0.0, 2.0 * np.pi, points, endpoint=False)
        # Double-hump day: morning and evening peaks.
        shape = 0.55 - 0.35 * np.cos(t) + 0.25 * np.sin(2 * t - 0.8)
        shape = np.clip(shape, 0.05, None)
        return peak_bps * shape / shape.max()
