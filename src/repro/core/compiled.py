"""Compiled scenarios: the build half of a run, reusable across runs.

:class:`~repro.core.evaluation.InfrastructureEvaluation` rebuilds the
whole world for every run even when a sweep only perturbs sampling
knobs — handover probabilities, congestion anchors, peer radio
situations.  A :class:`CompiledScenario` snapshots everything the build
layers produce (the kernel precompute, the wired baseline, the detour
length, the base campaign config, the seeded extra-load draws) under
its :func:`~repro.scenarios.identity.build_key`, and
:meth:`CompiledScenario.evaluate` replays only the sampling phase for
any spec sharing that key — bit-identical to a from-scratch
``InfrastructureEvaluation(...).run().summary()`` because

* every sampling draw comes from fresh named streams of a fresh
  :class:`~repro.sim.rng.RngRegistry` rooted at the same seed, exactly
  the streams a fresh build would hand the campaign;
* the wired baseline and the route walk live on their own named
  streams, so hoisting them to compile time is invisible;
* sampling-layer config is reconstructed from the *variant* spec on
  top of the compiled draws, mirroring
  ``BuiltScenario._build_campaign_config`` (anchors overwrite the
  seeded draws without consuming any stream).

The object is deliberately lean — no topology, no networkx graphs, no
generators — so it pickles quickly into the on-disk compiled store
(:class:`repro.fleet.compiled.CompiledScenarioCache`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

import numpy as np

from ..geo.grid import CellId, Grid
from ..probes.campaign import CampaignConfig, MobilePeer
from ..probes.kernel import CampaignKernel, KernelPrecompute, sample_run
from ..probes.stats import CellStatistics
from ..scenarios.build import build
from ..scenarios.identity import build_key
from ..scenarios.spec import ScenarioSpec
from ..sim.rng import RngRegistry
from .evaluation import EvaluationSummary
from .gap import GapAnalysis

__all__ = ["CompiledScenario"]


class CompiledScenario:
    """One build's precomputed state, ready to sample any variant.

    Compiling runs the full scenario build plus the kernel precompute
    once; :meth:`evaluate` then costs only the sampling phase.  All
    runs must share this object's ``(build layers, seed, density)`` —
    guarded by the ``build_key`` check.
    """

    #: bump when the pickled layout changes; the on-disk store treats
    #: a mismatch as a miss and recompiles
    SCHEMA = 1

    def __init__(self, spec: ScenarioSpec, seed: int = 42,
                 density: float = 6.0):
        self.schema = self.SCHEMA
        self.seed = int(seed)
        self.density = float(density)
        self.build_key = build_key(spec, seed, density)
        scenario = build(spec, seed=seed)
        kernel = CampaignKernel(scenario.campaign(density))
        self.precompute: KernelPrecompute = kernel.precompute()
        self.stage_seconds = dict(kernel.stage_seconds)
        self.wired_rtts_s: np.ndarray = scenario.wired_baseline()
        self.detour_km: float = scenario.detour_route_km()
        self._grid: Grid = scenario.grid
        self._base_config: CampaignConfig = scenario.campaign_config
        self._extra_load_draws: dict[CellId, float] = \
            scenario.extra_load_draws
        self._site_count = len(self.precompute.gnb_names)

    def _variant_config(self, spec: ScenarioSpec) -> CampaignConfig:
        """The sampling-layer config of ``spec`` over the shared build.

        Mirrors ``BuiltScenario._build_campaign_config`` for every
        sampling-layer field; build-layer fields come verbatim from the
        base config (the ``build_key`` check guarantees they match).
        """
        camp = spec.campaign
        extra_load = dict(self._extra_load_draws)
        for label, value in camp.extra_load_anchors:
            extra_load[CellId.from_label(label)] = value
        peers = {p.name: MobilePeer(
            name=p.name, air_load=p.air_load, sinr_db=p.sinr_db,
            gateway=p.gateway) for p in camp.peers}
        # Same guard DriveTestCampaign.__init__ applies, since no
        # campaign object exists on this path.
        if camp.peer_site_index >= self._site_count:
            raise ValueError(
                f"peer site index {camp.peer_site_index} out of range: "
                f"radio network has {self._site_count} sites")
        return dataclasses.replace(
            self._base_config,
            peers=peers,
            cell_extra_load=extra_load,
            handover_prob={CellId.from_label(label): p
                           for label, p in camp.handover_prob},
            handover_interruption_s=camp.handover_interruption_s,
            max_cell_load=camp.max_cell_load,
            peer_site_index=camp.peer_site_index,
        )

    def evaluate(self, spec: ScenarioSpec, *,
                 block_cache: Optional[dict[Any, np.ndarray]] = None,
                 check_key: bool = True) -> EvaluationSummary:
        """Run ``spec``'s sampling phase against the shared build.

        Returns the :class:`EvaluationSummary` a full
        ``InfrastructureEvaluation(seed, density, spec).run().summary()``
        would, bit for bit.  Pass one ``block_cache`` dict across calls
        to share bit-identical per-cell RTT blocks between runs;
        ``check_key=False`` skips the identity check when the caller
        already grouped specs by build key.
        """
        if check_key and \
                build_key(spec, self.seed, self.density) != self.build_key:
            raise ValueError(
                f"spec {spec.name!r} does not share this compiled "
                f"scenario's build key")
        config = self._variant_config(spec)
        dataset = sample_run(self.precompute, config,
                             RngRegistry(self.seed).stream, block_cache)
        stats = CellStatistics(self._grid, dataset)
        gap = GapAnalysis().report(stats, self.wired_rtts_s)
        return EvaluationSummary(
            scenario=spec.name,
            seed=self.seed,
            mean_positions_per_cell=self.density,
            sample_count=len(dataset),
            mean_matrix_ms=stats.mean_matrix_ms().tolist(),
            std_matrix_ms=stats.std_matrix_ms().tolist(),
            count_matrix=stats.count_matrix().tolist(),
            gap=gap,
            detour_km=self.detour_km,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (f"CompiledScenario(key={self.build_key[:12]}..., "
                f"seed={self.seed}, density={self.density})")
