"""repro — reproduction of '6G Infrastructures for Edge AI: An Analytical
Perspective' (IPPS 2025).

Subpackages:

* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.geo` — coordinates, grid segmentation, population, mobility
* :mod:`repro.net` — internet substrate with Gao-Rexford policy routing
* :mod:`repro.ran` — 5G/6G radio access network
* :mod:`repro.cn` — 5G/6G core network (UPF, QoS, slicing, O-RAN hooks)
* :mod:`repro.probes` — measurement framework (drive-test campaign)
* :mod:`repro.apps` — application workloads (AR game, IoT, domains)
* :mod:`repro.scenarios` — declarative scenario specs + the compiler
* :mod:`repro.core` — the paper's analysis: scenario, evaluation, remedies

Quickstart::

    from repro.core import InfrastructureEvaluation
    result = InfrastructureEvaluation(seed=42).run()
    print(result.figure2())
    print(result.gap.summary())

Scenarios are serializable data compiled by one engine — any registered
city (or a JSON-loaded spec) runs through the same pipeline::

    from repro.scenarios import build, klagenfurt

    scenario = build(klagenfurt(), seed=42)   # == KlagenfurtScenario(42)
    print(scenario.reference_trace().render_table())

    result = InfrastructureEvaluation(seed=42, scenario="skopje").run()

or from the command line: ``python -m repro evaluate --scenario skopje``
(``python -m repro scenarios`` lists the registry).
"""


from __future__ import annotations

from . import units

__version__ = "1.1.0"
__all__ = ["units", "__version__"]
