"""Campaign dataset analysis beyond the paper's mean/std heatmaps.

The paper presents per-cell means and standard deviations; anyone
extending the study (its stated future work) immediately needs more:
distribution comparisons between cells, tail percentiles, per-target
decomposition, and budget-violation maps.  These operate on the
column-oriented :class:`~repro.probes.results.MeasurementDataset`
without materialising row objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo.grid import CellId, Grid
from .results import MeasurementDataset

__all__ = ["Cdf", "DatasetAnalysis"]


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF."""

    values: np.ndarray      #: sorted sample values
    probabilities: np.ndarray

    @classmethod
    def of(cls, samples: np.ndarray) -> "Cdf":
        samples = np.asarray(samples, dtype=np.float64)
        if samples.size == 0:
            raise ValueError("cannot build a CDF from zero samples")
        ordered = np.sort(samples)
        probs = np.arange(1, ordered.size + 1) / ordered.size
        return cls(values=ordered, probabilities=probs)

    def at(self, value: float) -> float:
        """P(X <= value)."""
        return float(np.searchsorted(self.values, value, side="right")
                     / self.values.size)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        index = min(int(np.ceil(q * self.values.size)) - 1,
                    self.values.size - 1)
        return float(self.values[max(index, 0)])


class DatasetAnalysis:
    """Analysis helpers over one campaign dataset."""

    def __init__(self, grid: Grid, dataset: MeasurementDataset):
        if len(dataset) == 0:
            raise ValueError("empty dataset")
        self.grid = grid
        self.dataset = dataset

    # -- distributions ------------------------------------------------------

    def cell_cdf(self, cell: CellId) -> Cdf:
        """Empirical RTT CDF of one cell's samples."""
        rtts = self.dataset.rtts_in(cell)
        if rtts.size == 0:
            raise ValueError(f"no samples in cell {cell.label}")
        return Cdf.of(rtts)

    def overall_cdf(self) -> Cdf:
        """Empirical RTT CDF of the whole campaign."""
        return Cdf.of(self.dataset.rtts)

    def percentile_matrix_ms(self, q: float) -> np.ndarray:
        """(rows x cols) matrix of the q-quantile RTT per cell, ms.

        Cells without samples are 0.0 (the paper's mask convention).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        out = np.zeros((self.grid.rows, self.grid.cols))
        for cell in self.grid.cells():
            rtts = self.dataset.rtts_in(cell)
            if rtts.size:
                out[cell.row, cell.col] = Cdf.of(rtts).quantile(q) * 1e3
        return out

    # -- budget analysis -----------------------------------------------------

    def violation_matrix(self, budget_s: float) -> np.ndarray:
        """Fraction of samples over ``budget_s`` per cell (0 where no
        samples)."""
        if budget_s <= 0:
            raise ValueError("budget must be positive")
        out = np.zeros((self.grid.rows, self.grid.cols))
        for cell in self.grid.cells():
            rtts = self.dataset.rtts_in(cell)
            if rtts.size:
                out[cell.row, cell.col] = float((rtts > budget_s).mean())
        return out

    def worst_cells(self, n: int = 5) -> list[tuple[CellId, float]]:
        """The ``n`` cells with the highest mean RTT."""
        if n < 1:
            raise ValueError("n must be >= 1")
        means = []
        for cell in self.dataset.cells_observed():
            rtts = self.dataset.rtts_in(cell)
            means.append((cell, float(rtts.mean())))
        means.sort(key=lambda pair: pair[1], reverse=True)
        return means[:n]

    # -- per-target decomposition ------------------------------------------

    def target_means_s(self) -> dict[str, float]:
        """Mean RTT per measurement target across the whole campaign."""
        out: dict[str, list[float]] = {}
        for record in self.dataset.records():
            out.setdefault(record.target, []).append(record.rtt_s)
        return {target: float(np.mean(values))
                for target, values in out.items()}

    def wired_vs_peer_gap_s(self, wired_targets: set[str]) -> float:
        """Mean(wired-target RTT) - mean(peer RTT): how much of the
        field is the internet path versus the second air interface."""
        wired, peer = [], []
        for record in self.dataset.records():
            (wired if record.target in wired_targets
             else peer).append(record.rtt_s)
        if not wired or not peer:
            raise ValueError("need both wired and peer samples")
        return float(np.mean(wired) - np.mean(peer))
