"""Per-cell aggregation of campaign measurements (Fig. 2 / Fig. 3 data).

Reproduces the paper's presentation rules exactly:

* per-cell *mean* RTL (Fig. 2) and *standard deviation* (Fig. 3),
* cells with fewer than ten measurements are reported as **0.0** — the
  paper's marker for under-sampled border cells — and excluded from
  summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geo.grid import CellId, Grid
from .results import MeasurementDataset

__all__ = ["CellAggregate", "CellStatistics"]

#: The paper's masking threshold: "fewer than ten measurements".
MIN_SAMPLES: int = 10


@dataclass(frozen=True, slots=True)
class CellAggregate:
    """Aggregated measurements of one cell."""

    cell: CellId
    count: int
    mean_s: float    #: 0.0 when masked
    std_s: float     #: 0.0 when masked
    masked: bool


class CellStatistics:
    """Grid-wide aggregation of a measurement dataset."""

    def __init__(self, grid: Grid, dataset: MeasurementDataset, *,
                 min_samples: int = MIN_SAMPLES):
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.grid = grid
        self.min_samples = min_samples
        self._aggregates: dict[CellId, CellAggregate] = {}
        for cell in grid.cells():
            rtts = dataset.rtts_in(cell)
            count = int(rtts.size)
            if count < min_samples:
                self._aggregates[cell] = CellAggregate(
                    cell, count, 0.0, 0.0, masked=True)
            else:
                self._aggregates[cell] = CellAggregate(
                    cell, count,
                    mean_s=float(rtts.mean()),
                    std_s=float(rtts.std(ddof=1)),
                    masked=False)

    # -- lookup -----------------------------------------------------------

    def aggregate(self, cell: CellId) -> CellAggregate:
        """The aggregate of one grid cell."""
        try:
            return self._aggregates[cell]
        except KeyError:
            raise KeyError(f"cell {cell.label} outside grid") from None

    def measured_cells(self) -> list[CellAggregate]:
        """Aggregates of all unmasked cells, sorted by cell."""
        return [a for _, a in sorted(self._aggregates.items())
                if not a.masked]

    def masked_cells(self) -> list[CellAggregate]:
        """Aggregates of cells below the sample threshold."""
        return [a for _, a in sorted(self._aggregates.items()) if a.masked]

    # -- headline numbers ---------------------------------------------------

    def _require_measured(self) -> list[CellAggregate]:
        cells = self.measured_cells()
        if not cells:
            raise ValueError("no cell reached the sample threshold")
        return cells

    def min_mean_cell(self) -> CellAggregate:
        """The cell with the lowest mean RTL (the paper's C1)."""
        return min(self._require_measured(), key=lambda a: a.mean_s)

    def max_mean_cell(self) -> CellAggregate:
        """The cell with the highest mean RTL (the paper's C3)."""
        return max(self._require_measured(), key=lambda a: a.mean_s)

    def min_std_cell(self) -> CellAggregate:
        """Lowest per-cell standard deviation (the paper's B3)."""
        return min(self._require_measured(), key=lambda a: a.std_s)

    def max_std_cell(self) -> CellAggregate:
        """Highest per-cell standard deviation (the paper's E5)."""
        return max(self._require_measured(), key=lambda a: a.std_s)

    def overall_mean_s(self) -> float:
        """Mean RTL across measured cells (cell-weighted, as in the
        paper's '270 %' figure which compares the field against the
        requirement)."""
        cells = self._require_measured()
        return float(np.mean([a.mean_s for a in cells]))

    # -- matrices for rendering / export ------------------------------------

    def mean_matrix_ms(self) -> np.ndarray:
        """(rows x cols) matrix of mean RTL in ms; masked cells are 0.0."""
        out = np.zeros((self.grid.rows, self.grid.cols))
        for cell, agg in self._aggregates.items():
            out[cell.row, cell.col] = agg.mean_s * 1e3
        return out

    def std_matrix_ms(self) -> np.ndarray:
        """(rows x cols) matrix of RTL std-dev in ms; masked cells 0.0."""
        out = np.zeros((self.grid.rows, self.grid.cols))
        for cell, agg in self._aggregates.items():
            out[cell.row, cell.col] = agg.std_s * 1e3
        return out

    def count_matrix(self) -> np.ndarray:
        """(rows x cols) matrix of per-cell measurement counts."""
        out = np.zeros((self.grid.rows, self.grid.cols), dtype=np.int64)
        for cell, agg in self._aggregates.items():
            out[cell.row, cell.col] = agg.count
        return out
