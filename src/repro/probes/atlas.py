"""Probe registry (RIPE-Atlas substitute).

The paper measures against "the RIPE Atlas probe hosted at the
University of Klagenfurt" plus eight peer nodes per sector.  Atlas
itself is just a registry of measurement endpoints with known locations
that answer ICMP; this module provides exactly that over the simulated
topology: anchors (always-on, wired) and probes, each bound to a
topology node.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from ..geo.coords import GeoPoint
from ..geo.grid import CellId, Grid

__all__ = ["ProbeKind", "Probe", "ProbeRegistry"]


class ProbeKind(enum.Enum):
    """Measurement-endpoint class (anchor vs ordinary probe)."""
    ANCHOR = "anchor"      #: well-connected reference (the university probe)
    PROBE = "probe"        #: ordinary volunteer probe (the 8 peers)


@dataclass(frozen=True, slots=True)
class Probe:
    """A measurement endpoint bound to a topology node."""

    probe_id: int
    name: str
    node_name: str          #: key into the Topology
    location: GeoPoint
    kind: ProbeKind = ProbeKind.PROBE

    def __post_init__(self) -> None:
        if self.probe_id < 0:
            raise ValueError("probe id must be non-negative")
        if not self.name or not self.node_name:
            raise ValueError("probe and node names must be non-empty")


class ProbeRegistry:
    """All measurement endpoints of a campaign."""

    def __init__(self):
        self._probes: dict[int, Probe] = {}
        self._by_name: dict[str, Probe] = {}

    def register(self, probe: Probe) -> Probe:
        """Register a probe; duplicate ids/names are rejected."""
        if probe.probe_id in self._probes:
            raise ValueError(f"duplicate probe id {probe.probe_id}")
        if probe.name in self._by_name:
            raise ValueError(f"duplicate probe name {probe.name!r}")
        self._probes[probe.probe_id] = probe
        self._by_name[probe.name] = probe
        return probe

    def probe(self, probe_id: int) -> Probe:
        """Look up a probe by id."""
        try:
            return self._probes[probe_id]
        except KeyError:
            raise KeyError(f"unknown probe id {probe_id}") from None

    def by_name(self, name: str) -> Probe:
        """Look up a probe by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown probe {name!r}") from None

    def __iter__(self) -> Iterator[Probe]:
        return iter(self._probes.values())

    def __len__(self) -> int:
        return len(self._probes)

    def anchors(self) -> list[Probe]:
        """All always-on anchor probes."""
        return [p for p in self._probes.values()
                if p.kind is ProbeKind.ANCHOR]

    def in_cell(self, grid: Grid, cell: CellId) -> list[Probe]:
        """Probes physically located inside one grid cell."""
        return [p for p in self._probes.values()
                if grid.locate(p.location) == cell]

    def nearest(self, point: GeoPoint, *,
                kind: Optional[ProbeKind] = None) -> Probe:
        """Closest probe to ``point`` (optionally of one kind)."""
        candidates = [p for p in self._probes.values()
                      if kind is None or p.kind is kind]
        if not candidates:
            raise LookupError("no matching probes registered")
        return min(candidates, key=lambda p: p.location.distance_to(point))
