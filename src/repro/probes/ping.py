"""Wired ping measurements between topology nodes.

Used for the *static node* baseline the paper compares against (wired
RTTs of 7-12 ms to a cloud region, [3]) and for probe-to-probe checks.
Each echo independently samples queueing along the policy-selected
route, like a real ping train.
"""

from __future__ import annotations

import numpy as np

from ..net.routing import RouteComputer

__all__ = ["ping"]

#: ICMP echo size.
PING_SIZE_BITS: float = 64.0 * 8.0


def ping(routes: RouteComputer, src: str, dst: str,
         rng: np.random.Generator, *, count: int = 10,
         size_bits: float = PING_SIZE_BITS) -> np.ndarray:
    """RTTs (seconds) of ``count`` echo requests from ``src`` to ``dst``.

    Endpoint stack traversal is included once per direction (the echo
    responder answers in its network stack, billed at the destination
    node's forwarding delay).
    """
    if count < 1:
        raise ValueError("ping count must be >= 1")
    topo = routes.topology
    result = routes.route(src, dst)
    path = list(result.path)
    dst_processing = topo.node(dst).forwarding_delay_s
    rtts = np.empty(count, dtype=np.float64)
    for i in range(count):
        forward = topo.path_latency(path, size_bits, rng)
        back = topo.path_latency(path[::-1], size_bits, rng)
        rtts[i] = forward.total + back.total + dst_processing
    return rtts
