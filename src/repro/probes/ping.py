"""Wired ping measurements between topology nodes.

Used for the *static node* baseline the paper compares against (wired
RTTs of 7-12 ms to a cloud region, [3]) and for probe-to-probe checks.
Each echo independently samples queueing along the policy-selected
route, like a real ping train.
"""

from __future__ import annotations

import numpy as np

from ..net.routing import RouteComputer

__all__ = ["ping"]

#: ICMP echo size.
PING_SIZE_BITS: float = 64.0 * 8.0


def ping(routes: RouteComputer, src: str, dst: str,
         rng: np.random.Generator, *, count: int = 10,
         size_bits: float = PING_SIZE_BITS) -> np.ndarray:
    """RTTs (seconds) of ``count`` echo requests from ``src`` to ``dst``.

    Endpoint stack traversal is included once per direction (the echo
    responder answers in its network stack, billed at the destination
    node's forwarding delay).
    """
    if count < 1:
        raise ValueError("ping count must be >= 1")
    topo = routes.topology
    result = routes.route(src, dst)
    path = list(result.path)
    dst_processing = topo.node(dst).forwarding_delay_s
    # Compile the path once: the per-echo loop then only samples the
    # stochastic queueing draws (bit-identical to walking the graph
    # with path_latency for every echo, at a fraction of the cost).
    compiled = topo.compile_path(path, size_bits)
    rtts = np.empty(count, dtype=np.float64)
    for i in range(count):
        rtts[i] = compiled.sample_echo(rng) + dst_processing
    return rtts
