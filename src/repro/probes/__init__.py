"""Measurement framework: probes, pings, drive-test campaign, statistics."""


from __future__ import annotations

from .analysis import Cdf, DatasetAnalysis
from .atlas import Probe, ProbeKind, ProbeRegistry
from .campaign import CampaignConfig, DriveTestCampaign
from .ping import ping
from .results import MeasurementDataset, MeasurementRecord
from .stats import CellAggregate, CellStatistics, MIN_SAMPLES

__all__ = [
    "Cdf", "DatasetAnalysis",
    "Probe", "ProbeKind", "ProbeRegistry",
    "CampaignConfig", "DriveTestCampaign",
    "ping",
    "MeasurementDataset", "MeasurementRecord",
    "CellAggregate", "CellStatistics", "MIN_SAMPLES",
]
