"""Precompute-then-sample kernel for the drive-test campaign.

:meth:`DriveTestCampaign.run` used to bottom out in a scalar
per-measurement pipeline: every one of the ~1.7k RTT samples re-derived
the serving cell from six full link budgets (each constructing a fresh
shadowing generator), re-walked the same networkx paths link by link,
and re-validated the same immutable configuration.  This module
restructures that hot path into two halves without moving a single
random draw:

1. :class:`KernelPrecompute` — everything that depends only on the
   *build layers* of the scenario (see
   :mod:`repro.scenarios.identity`): the materialised route walk, the
   vectorised serving matrix, per-gNB air constants, per-gateway UPF
   queue parameters, backhaul delays,
   :class:`~repro.net.pathkernel.CompiledPath` tables for every
   (gateway, target) route, and the dataset *template* (times, cells,
   target ids — everything but the RTT column).  Picklable, so a
   compiled scenario can carry it across process boundaries and disk.
2. :func:`sample_run` — one tight loop over measurements that makes
   *exactly* the stochastic draws of the scalar pipeline, in the same
   order, on the same named streams, with the same float operation
   order.  Only sampling-layer values (per-run loads, handover knobs,
   peer radio situations) are read from the campaign config here.

**Batched multi-run sampling.**  Per-cell streams are derived purely
from ``(seed, stream name, cell label)``, so across runs that share a
build (same spec build layers, seed, density) each cell's fresh streams
are identical.  If a cell's complete sampling-parameter fingerprint —
per-gNB clamped loads, handover knobs, and the peer radio situation —
also matches, the cell's whole RTT block is bit-identical and
:func:`sample_run` can copy it from a shared ``block_cache`` instead of
re-drawing.  A campaign-only sweep typically perturbs a few cells per
variant, so most blocks are shared; the scalar draw loop remains the
oracle for every block computed.

The output dataset is bit-identical to the scalar path — guarded by
``tests/test_campaign_kernel.py``, the batched-equivalence suite, and
the golden digests in ``tests/test_golden_digests.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..geo.grid import CellId
from ..net.pathkernel import CompiledPath
from ..net.queueing import md1_wait
from ..ran.channel import ChannelModel
from .results import MeasurementDataset

if TYPE_CHECKING:  # pragma: no cover
    from .campaign import CampaignConfig, DriveTestCampaign, Gateway

__all__ = ["CampaignKernel", "KernelPrecompute", "precompute_count",
           "sample_run"]

#: Process-wide count of kernel precomputations (the expensive half of
#: the build/run split); snapshot around a sweep to assert reuse.
_PRECOMPUTE_COUNT = 0


def precompute_count() -> int:
    """How many kernel precomputes this process performed."""
    return _PRECOMPUTE_COUNT


@dataclass(frozen=True)
class _AirParams:
    """Sampling constants of one radio configuration.

    ``sr_span`` and ``grant_s`` are the precomputed products the scalar
    path evaluates inline (same factors, same single rounding); the
    HARQ term keeps its ``(retx * harq_rtt_slots) * slot`` association.
    """

    slot: float
    proc_base: float
    configured_grant: bool
    sr_span: float
    grant_s: float
    harq_rtt_slots: int
    max_retx: int
    target_bler: float
    buffer_service_s: float


@dataclass(frozen=True)
class _UpfParams:
    """M/M/1 constants of one gateway's user-plane function."""

    rho: float
    service_s: float
    #: exponential scale ``1 / (mu - lambda)``; None when the queue
    #: draws nothing (zero load or zero service time)
    scale: Optional[float]


def _air_params(config) -> _AirParams:
    slot = config.slot_s
    return _AirParams(
        slot=slot,
        proc_base=config.processing_base_s,
        configured_grant=config.configured_grant,
        sr_span=config.sr_period_slots * slot,
        grant_s=config.grant_delay_slots * slot,
        harq_rtt_slots=config.harq_rtt_slots,
        max_retx=config.max_harq_retx,
        target_bler=config.target_bler,
        buffer_service_s=config.buffer_service_s,
    )


def _upf_params(upf, packet_bits: float) -> _UpfParams:
    service = upf.service_time_s(packet_bits)
    rho = upf.load
    if rho == 0.0 or service == 0.0:
        return _UpfParams(rho, service, None)
    mu = 1.0 / service
    lam = rho * mu
    return _UpfParams(rho, service, 1.0 / (mu - lam))


def _sample_upf(rng, p: _UpfParams) -> float:
    """Replica of ``UserPlaneFunction.sample_latency_s`` draws."""
    if p.scale is None:
        return 0.0 + p.service_s
    busy = rng.random() < p.rho
    wait = rng.exponential(p.scale)
    w = float(wait) if busy else 0.0
    return w + p.service_s


def _sample_air_rtt(rng, p: _AirParams, load: float,
                    queue_mean: float, bler: float) -> float:
    """Replica of ``AirInterface.sample_rtt`` (UL + DL) draws.

    ``queue_mean`` is the precomputed M/D/1 wait for ``load`` (unused
    when ``load`` is zero); ``bler`` the precomputed block error rate
    for the measurement's SINR.

    ``Generator.uniform(0, h)`` computes ``h * next_double`` — the
    expanded ``h * random()`` form below is bitwise- and
    stream-equivalent at a third of the call overhead (guarded, like
    every equivalence this module relies on, by the kernel-vs-scalar
    and golden-digest tests).
    """
    random = rng.random
    exponential = rng.exponential
    # Uplink.
    delay = p.proc_base
    if not p.configured_grant:
        delay += p.sr_span * random()       # SR wait ~ U(0, sr period)
        delay += p.grant_s
    delay += p.slot * random()              # frame alignment ~ U(0, slot)
    if load != 0.0:
        delay += float(exponential(queue_mean))
    delay += p.slot
    retx = 0
    if bler > 0.0:
        while retx < p.max_retx and random() < bler:
            retx += 1
    delay += retx * p.harq_rtt_slots * p.slot
    uplink = delay
    # Downlink.
    delay = p.proc_base + p.slot * random()
    if load != 0.0:
        delay += float(exponential(queue_mean))
    delay += p.slot
    retx = 0
    if bler > 0.0:
        while retx < p.max_retx and random() < bler:
            retx += 1
    delay += retx * p.harq_rtt_slots * p.slot
    return uplink + delay


@dataclass(frozen=True)
class _CellBlock:
    """One cell's slice of the campaign, in route-encounter order."""

    cell: CellId
    label: str
    targets: tuple[str, ...]
    #: targets that resolve to mobile peers (subset of ``targets``)
    peer_targets: tuple[str, ...]
    gateway_name: str
    gateway_node: str
    #: distinct serving gNB names in the block, first-seen order
    gnb_names: tuple[str, ...]
    #: indexes into the global sample order (route-walk order)
    sample_indices: tuple[int, ...]
    #: dataset rows this block fills (one per sample x target)
    row_indices: np.ndarray


@dataclass(frozen=True)
class KernelPrecompute:
    """Build-layer tables shared by every run of one compiled scenario.

    Everything here is a pure function of the spec's build layers plus
    ``(seed, density)`` — no sampling-layer field is baked in.  Plain
    values and compiled paths only (generators and id()-keyed tables
    are deliberately absent), so the whole object pickles and
    round-trips through the on-disk compiled-scenario store.
    """

    blocks: tuple[_CellBlock, ...]
    #: gNB registration order (``peer_site_index`` resolves into this)
    gnb_names: tuple[str, ...]
    #: per-gNB sampling constants, keyed by gNB name
    air_params: dict[str, _AirParams]
    #: per-gNB base scheduler load
    gnb_load: dict[str, float]
    #: per-gateway UPF queue constants, keyed by gateway name
    upf_params: dict[str, _UpfParams]
    #: round-trip backhaul seconds per (gNB name, gateway name)
    backhaul2: dict[tuple[str, str], float]
    #: gateway name -> topology node name
    gateway_node: dict[str, str]
    #: compiled internet paths per (gateway node, wired target)
    wired: dict[tuple[str, str], tuple[CompiledPath, float]]
    #: compiled transit paths per (own gateway node, peer gateway node)
    transit: dict[tuple[str, str], CompiledPath]
    #: peer-resolving target names, first-appearance order
    peer_target_names: tuple[str, ...]
    #: per-sample serving gNB name, aligned with the route walk
    sample_gnb: tuple[str, ...]
    #: per-sample precomputed block error rate (serving SINR + config)
    sample_bler: np.ndarray
    #: dataset template: every column except the RTTs
    times: np.ndarray
    cols: np.ndarray
    rows: np.ndarray
    target_col: np.ndarray
    targets: tuple[str, ...]

    @property
    def row_count(self) -> int:
        return int(self.times.shape[0])


#: ``stream_factory(*name_parts) -> Generator`` — either a registry's
#: (position-preserving) ``stream`` or a per-run fresh-stream factory.
StreamFactory = Callable[..., np.random.Generator]


def sample_run(pre: KernelPrecompute, config: "CampaignConfig",
               stream_factory: StreamFactory,
               block_cache: Optional[dict] = None) -> MeasurementDataset:
    """One run's sampling phase against a shared precompute.

    Reads only sampling-layer values from ``config``; every stochastic
    draw replicates the scalar pipeline on the streams
    ``stream_factory`` hands out.  With a ``block_cache`` (shared
    across runs of one build group), a cell whose sampling fingerprint
    matches an earlier run copies that run's RTT block instead of
    re-drawing — bit-identical because per-cell streams restart from
    the same state for every run of the group.
    """
    bler_of = ChannelModel.bler
    interruption = config.handover_interruption_s
    peers = config.peers
    extra_load = config.cell_extra_load
    max_load = config.max_cell_load
    peer_gnb_name = pre.gnb_names[config.peer_site_index]
    peer_params = pre.air_params[peer_gnb_name]

    # Per-run peer constants (sampling layer: air_load/sinr_db/site).
    peer_meta: dict[str, tuple] = {}
    for name in pre.peer_target_names:
        peer = peers[name]
        peer_meta[name] = (
            peer,
            md1_wait(peer.air_load, peer_params.buffer_service_s)
            if peer.air_load != 0.0 else 0.0,
            bler_of(peer.sinr_db, target_bler=peer_params.target_bler),
        )

    rtts = np.empty(pre.row_count, dtype=np.float64)
    for block in pre.blocks:
        p_ho = config.handover_prob.get(block.cell, 0.0)
        # Per-run per-gNB tables for this cell: clamped load + M/D/1
        # wait (pure functions — recomputing per cell is bit-identical
        # to the old global memo).
        extra = extra_load.get(block.cell, 0.0)
        loads: dict[str, float] = {}
        qmeans: dict[str, float] = {}
        for gname in block.gnb_names:
            load = float(np.clip(pre.gnb_load[gname] + extra,
                                 0.0, max_load))
            loads[gname] = load
            qmeans[gname] = (
                md1_wait(load, pre.air_params[gname].buffer_service_s)
                if load != 0.0 else 0.0)

        cache_key = None
        if block_cache is not None:
            # The complete sampling-layer fingerprint of this block:
            # equal fingerprints (within one build group) mean every
            # draw and every float op repeats exactly.
            cache_key = (
                block.label,
                tuple(loads[g] for g in block.gnb_names),
                p_ho,
                interruption if p_ho > 0.0 else 0.0,
                tuple((peers[t].air_load, peers[t].sinr_db)
                      for t in block.peer_targets),
                config.peer_site_index if block.peer_targets else 0,
            )
            shared = block_cache.get(cache_key)
            if shared is not None:
                rtts[block.row_indices] = shared
                continue

        rng_air = stream_factory("campaign.air", block.label)
        rng_net = stream_factory("campaign.net", block.label)
        rng_ho = stream_factory("campaign.handover", block.label)
        own_upf = pre.upf_params[block.gateway_name]
        block_rtts = np.empty(block.row_indices.shape[0],
                              dtype=np.float64)
        pos = 0
        for i in block.sample_indices:
            gname = pre.sample_gnb[i]
            params = pre.air_params[gname]
            load = loads[gname]
            qmean = qmeans[gname]
            own_backhaul = pre.backhaul2[(gname, block.gateway_name)]
            bler = pre.sample_bler[i]
            for target in block.targets:
                # Own radio access + core legs.
                rtt = _sample_air_rtt(rng_air, params, load, qmean, bler)
                rtt += own_backhaul
                rtt += 2.0 * _sample_upf(rng_net, own_upf)

                meta = peer_meta.get(target)
                if meta is not None:
                    # Hairpin to a mobile peer.
                    peer, peer_qmean, peer_bler = meta
                    leg = 0.0
                    peer_gw = block.gateway_name \
                        if peer.gateway is None else peer.gateway
                    if peer_gw != block.gateway_name:
                        leg += pre.transit[
                            (block.gateway_node,
                             pre.gateway_node[peer_gw])
                        ].sample_round_trip(rng_net)
                    leg += 2.0 * _sample_upf(
                        rng_net, pre.upf_params[peer_gw])
                    leg += pre.backhaul2[(peer_gnb_name, peer_gw)]
                    leg += _sample_air_rtt(rng_air, peer_params,
                                           peer.air_load, peer_qmean,
                                           peer_bler)
                    rtt += leg
                else:
                    # Policy-routed internet to a wired target.
                    compiled, forwarding = \
                        pre.wired[(block.gateway_node, target)]
                    leg = compiled.sample_round_trip(rng_net)
                    leg += forwarding
                    rtt += leg

                # Handover interruption landing in the window.
                # 0.5 + 0.5*r is the expanded uniform(0.5, 1.0).
                if p_ho > 0.0 and rng_ho.random() < p_ho:
                    rtt += interruption * (0.5 + 0.5 * rng_ho.random())
                block_rtts[pos] = rtt
                pos += 1
        if block_cache is not None:
            block_cache[cache_key] = block_rtts
        rtts[block.row_indices] = block_rtts

    return MeasurementDataset.from_columns(
        pre.times, pre.cols, pre.rows, pre.target_col, pre.targets, rtts)


class CampaignKernel:
    """Runs one campaign through the precomputed fast path.

    Build from a :class:`~repro.probes.campaign.DriveTestCampaign`;
    :meth:`run` returns the same :class:`MeasurementDataset` (bitwise)
    as the scalar pipeline.  ``stage_seconds`` holds the wall time of
    each kernel phase after a run — the benchmark reads it.
    :meth:`precompute` exposes the build half on its own for the
    compiled-scenario cache (:mod:`repro.core.compiled`).
    """

    def __init__(self, campaign: "DriveTestCampaign"):
        self.campaign = campaign
        self.stage_seconds: dict[str, float] = {}

    # -- precomputed tables -------------------------------------------------

    def _wired_entry(self, gateway: "Gateway", target: str):
        """Compiled internet round trip gateway -> wired target."""
        from .campaign import PING_SIZE_BITS
        camp = self.campaign
        path = list(camp.routes.route(gateway.node_name, target).path)
        compiled = camp.routes.topology.compile_path(path, PING_SIZE_BITS)
        forwarding = camp.routes.topology.node(target).forwarding_delay_s
        return compiled, forwarding

    def _transit_entry(self, own: "Gateway", peer_gw: "Gateway"):
        """Compiled inter-gateway transit for cross-breakout hairpins."""
        from .campaign import PING_SIZE_BITS
        camp = self.campaign
        path = list(camp.routes.route(own.node_name,
                                      peer_gw.node_name).path)
        return camp.routes.topology.compile_path(path, PING_SIZE_BITS)

    def precompute(self) -> KernelPrecompute:
        """Materialise the build-layer tables (route, serving, paths).

        Fills the ``route_walk``/``serving_matrix``/``tables`` entries
        of ``stage_seconds``; :meth:`run` (or a compiled scenario's
        sampling) adds ``sampling``.
        """
        global _PRECOMPUTE_COUNT
        _PRECOMPUTE_COUNT += 1
        from .campaign import PING_SIZE_BITS
        camp = self.campaign
        config = camp.config
        bler_of = camp.radio.channel.bler

        # Phase 1: materialise the route (draws stay on its stream).
        t0 = time.perf_counter()
        samples = [s for s in camp.route.walk() if s.cell is not None]
        t1 = time.perf_counter()

        # Phase 2a: vectorised serving-cell selection for every position.
        serving = camp.radio.serving_many([s.position for s in samples])
        t2 = time.perf_counter()

        # Phase 2b: per-cell / per-gateway / per-path tables.
        gnbs = camp.radio.gnbs()
        gnb_names = tuple(g.name for g in gnbs)
        air_params = {g.name: _air_params(g.config) for g in gnbs}
        gnb_load = {g.name: g.load for g in gnbs}
        upf_params: dict[str, _UpfParams] = {}
        backhaul2: dict[tuple[str, str], float] = {}
        gateway_node = {name: config.gateways[name].node_name
                        for name in sorted(config.gateways)}
        wired: dict[tuple[str, str], tuple[CompiledPath, float]] = {}
        transit: dict[tuple[str, str], CompiledPath] = {}

        def gateway_tables(gw: "Gateway") -> None:
            if gw.name in upf_params:
                return
            upf_params[gw.name] = _upf_params(gw.upf, PING_SIZE_BITS)
            for gnb in gnbs:
                backhaul2[(gnb.name, gw.name)] = \
                    2.0 * camp._backhaul_one_way_s(gnb.location, gw)

        # Group samples into per-cell blocks, route-encounter order.
        cell_order: list[CellId] = []
        cell_info: dict[CellId, dict] = {}
        peer_names: list[str] = []
        for i, sample in enumerate(samples):
            cell = sample.cell
            info = cell_info.get(cell)
            if info is None:
                targets = config.targets.get(cell, config.default_targets)
                gateway = camp._gateway_for(cell)
                gateway_tables(gateway)
                peer_targets = []
                for target in targets:
                    peer = config.peers.get(target)
                    if peer is None:
                        key = (gateway.node_name, target)
                        if key not in wired:
                            wired[key] = self._wired_entry(gateway, target)
                        continue
                    peer_targets.append(target)
                    if target not in peer_names:
                        peer_names.append(target)
                    peer_gw = gateway if peer.gateway is None \
                        else config.gateways[peer.gateway]
                    gateway_tables(peer_gw)
                    if peer_gw.name != gateway.name:
                        tkey = (gateway.node_name, peer_gw.node_name)
                        if tkey not in transit:
                            transit[tkey] = self._transit_entry(
                                gateway, peer_gw)
                info = {"targets": tuple(targets),
                        "peer_targets": tuple(peer_targets),
                        "gateway": gateway,
                        "gnb_order": [],
                        "indices": []}
                cell_info[cell] = info
                cell_order.append(cell)
            info["indices"].append(i)
            gname = serving[i][0].name
            if gname not in info["gnb_order"]:
                info["gnb_order"].append(gname)

        # Per-sample serving constants (pure functions of the build).
        sample_gnb = tuple(serving[i][0].name
                           for i in range(len(samples)))
        sample_bler = np.empty(len(samples), dtype=np.float64)
        for i in range(len(samples)):
            gnb, sinr_db = serving[i]
            sample_bler[i] = bler_of(
                sinr_db, target_bler=air_params[gnb.name].target_bler)

        # The dataset template: every column but the RTTs, in exactly
        # the order the scalar pipeline's ``add`` loop appends rows.
        total_rows = sum(
            len(cell_info[c]["indices"]) * len(cell_info[c]["targets"])
            for c in cell_order)
        times = np.empty(total_rows, dtype=np.float64)
        cols = np.empty(total_rows, dtype=np.int32)
        rows_arr = np.empty(total_rows, dtype=np.int32)
        target_col = np.empty(total_rows, dtype=np.int32)
        targets_list: list[str] = []
        target_ids: dict[str, int] = {}
        blocks: list[_CellBlock] = []
        row = 0
        for cell in cell_order:
            info = cell_info[cell]
            start = row
            for i in info["indices"]:
                t = samples[i].time
                for target in info["targets"]:
                    tid = target_ids.get(target)
                    if tid is None:
                        tid = len(targets_list)
                        targets_list.append(target)
                        target_ids[target] = tid
                    times[row] = t
                    cols[row] = cell.col
                    rows_arr[row] = cell.row
                    target_col[row] = tid
                    row += 1
            gateway = info["gateway"]
            blocks.append(_CellBlock(
                cell=cell, label=cell.label,
                targets=info["targets"],
                peer_targets=info["peer_targets"],
                gateway_name=gateway.name,
                gateway_node=gateway.node_name,
                gnb_names=tuple(info["gnb_order"]),
                sample_indices=tuple(info["indices"]),
                row_indices=np.arange(start, row),
            ))
        t3 = time.perf_counter()

        self.stage_seconds = {
            "route_walk": t1 - t0,
            "serving_matrix": t2 - t1,
            "tables": t3 - t2,
        }
        return KernelPrecompute(
            blocks=tuple(blocks),
            gnb_names=gnb_names,
            air_params=air_params,
            gnb_load=gnb_load,
            upf_params=upf_params,
            backhaul2=backhaul2,
            gateway_node=gateway_node,
            wired=wired,
            transit=transit,
            peer_target_names=tuple(peer_names),
            sample_gnb=sample_gnb,
            sample_bler=sample_bler,
            times=times,
            cols=cols,
            rows=rows_arr,
            target_col=target_col,
            targets=tuple(targets_list),
        )

    # -- execution ----------------------------------------------------------

    def run(self) -> MeasurementDataset:
        """Precompute + sample on the campaign's own registry streams.

        Stream positions advance exactly as the scalar pipeline's
        would (``tests/test_campaign_kernel.py`` pins this), so a
        kernel run composes with any surrounding registry use.
        """
        pre = self.precompute()
        t3 = time.perf_counter()
        dataset = sample_run(pre, self.campaign.config,
                             self.campaign.rng.stream, None)
        self.stage_seconds["sampling"] = time.perf_counter() - t3
        return dataset
