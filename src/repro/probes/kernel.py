"""Precompute-then-sample kernel for the drive-test campaign.

:meth:`DriveTestCampaign.run` used to bottom out in a scalar
per-measurement pipeline: every one of the ~1.7k RTT samples re-derived
the serving cell from six full link budgets (each constructing a fresh
shadowing generator), re-walked the same networkx paths link by link,
and re-validated the same immutable configuration.  This module
restructures that hot path into three phases without moving a single
random draw:

1. **route materialisation** — consume the route walk (its draws live
   on their own named stream, so materialising up front is invisible);
2. **table precomputation** — the site x position distance matrix
   (:func:`~repro.geo.coords.haversine_many`), the SINR matrix and its
   argmax (serving cells), the shadowing tile field, per-config air
   constants, per-gateway UPF queue parameters, backhaul one-way
   delays, and :class:`~repro.net.pathkernel.CompiledPath` tables for
   every (gateway, target) route;
3. **stream-preserving sampling** — one tight loop over measurements
   that makes *exactly* the stochastic draws of the scalar pipeline, in
   the same order, on the same named streams, with the same float
   operation order.

The output dataset is bit-identical to the scalar path — guarded by
``tests/test_campaign_kernel.py`` and the golden digests in
``tests/test_golden_digests.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..net.pathkernel import CompiledPath
from ..net.queueing import md1_wait
from .results import MeasurementDataset

if TYPE_CHECKING:  # pragma: no cover
    from .campaign import DriveTestCampaign, Gateway

__all__ = ["CampaignKernel"]


@dataclass(frozen=True)
class _AirParams:
    """Sampling constants of one radio configuration.

    ``sr_span`` and ``grant_s`` are the precomputed products the scalar
    path evaluates inline (same factors, same single rounding); the
    HARQ term keeps its ``(retx * harq_rtt_slots) * slot`` association.
    """

    slot: float
    proc_base: float
    configured_grant: bool
    sr_span: float
    grant_s: float
    harq_rtt_slots: int
    max_retx: int
    target_bler: float
    buffer_service_s: float


@dataclass(frozen=True)
class _UpfParams:
    """M/M/1 constants of one gateway's user-plane function."""

    rho: float
    service_s: float
    #: exponential scale ``1 / (mu - lambda)``; None when the queue
    #: draws nothing (zero load or zero service time)
    scale: Optional[float]


def _air_params(config) -> _AirParams:
    slot = config.slot_s
    return _AirParams(
        slot=slot,
        proc_base=config.processing_base_s,
        configured_grant=config.configured_grant,
        sr_span=config.sr_period_slots * slot,
        grant_s=config.grant_delay_slots * slot,
        harq_rtt_slots=config.harq_rtt_slots,
        max_retx=config.max_harq_retx,
        target_bler=config.target_bler,
        buffer_service_s=config.buffer_service_s,
    )


def _upf_params(upf, packet_bits: float) -> _UpfParams:
    service = upf.service_time_s(packet_bits)
    rho = upf.load
    if rho == 0.0 or service == 0.0:
        return _UpfParams(rho, service, None)
    mu = 1.0 / service
    lam = rho * mu
    return _UpfParams(rho, service, 1.0 / (mu - lam))


def _sample_upf(rng, p: _UpfParams) -> float:
    """Replica of ``UserPlaneFunction.sample_latency_s`` draws."""
    if p.scale is None:
        return 0.0 + p.service_s
    busy = rng.random() < p.rho
    wait = rng.exponential(p.scale)
    w = float(wait) if busy else 0.0
    return w + p.service_s


def _sample_air_rtt(rng, p: _AirParams, load: float,
                    queue_mean: float, bler: float) -> float:
    """Replica of ``AirInterface.sample_rtt`` (UL + DL) draws.

    ``queue_mean`` is the precomputed M/D/1 wait for ``load`` (unused
    when ``load`` is zero); ``bler`` the precomputed block error rate
    for the measurement's SINR.

    ``Generator.uniform(0, h)`` computes ``h * next_double`` — the
    expanded ``h * random()`` form below is bitwise- and
    stream-equivalent at a third of the call overhead (guarded, like
    every equivalence this module relies on, by the kernel-vs-scalar
    and golden-digest tests).
    """
    random = rng.random
    exponential = rng.exponential
    # Uplink.
    delay = p.proc_base
    if not p.configured_grant:
        delay += p.sr_span * random()       # SR wait ~ U(0, sr period)
        delay += p.grant_s
    delay += p.slot * random()              # frame alignment ~ U(0, slot)
    if load != 0.0:
        delay += float(exponential(queue_mean))
    delay += p.slot
    retx = 0
    if bler > 0.0:
        while retx < p.max_retx and random() < bler:
            retx += 1
    delay += retx * p.harq_rtt_slots * p.slot
    uplink = delay
    # Downlink.
    delay = p.proc_base + p.slot * random()
    if load != 0.0:
        delay += float(exponential(queue_mean))
    delay += p.slot
    retx = 0
    if bler > 0.0:
        while retx < p.max_retx and random() < bler:
            retx += 1
    delay += retx * p.harq_rtt_slots * p.slot
    return uplink + delay


class CampaignKernel:
    """Runs one campaign through the precomputed fast path.

    Build from a :class:`~repro.probes.campaign.DriveTestCampaign`;
    :meth:`run` returns the same :class:`MeasurementDataset` (bitwise)
    as the scalar pipeline.  ``stage_seconds`` holds the wall time of
    each kernel phase after a run — the benchmark reads it.
    """

    def __init__(self, campaign: "DriveTestCampaign"):
        self.campaign = campaign
        self.stage_seconds: dict[str, float] = {}

    # -- precomputed tables -------------------------------------------------

    def _cell_context(self, cell):
        """Per-cell constants: targets, gateway, streams, handover."""
        camp = self.campaign
        config = camp.config
        gateway = camp._gateway_for(cell)
        return (
            config.targets.get(cell, config.default_targets),
            gateway,
            config.handover_prob.get(cell, 0.0),
            camp.rng.stream("campaign.air", cell.label),
            camp.rng.stream("campaign.net", cell.label),
            camp.rng.stream("campaign.handover", cell.label),
        )

    def _wired_entry(self, gateway: "Gateway", target: str):
        """Compiled internet round trip gateway -> wired target."""
        from .campaign import PING_SIZE_BITS
        camp = self.campaign
        path = list(camp.routes.route(gateway.node_name, target).path)
        compiled = camp.routes.topology.compile_path(path, PING_SIZE_BITS)
        forwarding = camp.routes.topology.node(target).forwarding_delay_s
        return compiled, forwarding

    def _transit_entry(self, own: "Gateway", peer_gw: "Gateway"):
        """Compiled inter-gateway transit for cross-breakout hairpins."""
        from .campaign import PING_SIZE_BITS
        camp = self.campaign
        path = list(camp.routes.route(own.node_name,
                                      peer_gw.node_name).path)
        return camp.routes.topology.compile_path(path, PING_SIZE_BITS)

    # -- execution ----------------------------------------------------------

    def run(self) -> MeasurementDataset:
        from .campaign import PING_SIZE_BITS
        camp = self.campaign
        config = camp.config
        channel = camp.radio.channel
        bler_of = channel.bler
        interruption = config.handover_interruption_s

        # Phase 1: materialise the route (draws stay on its stream).
        t0 = time.perf_counter()
        samples = [s for s in camp.route.walk() if s.cell is not None]
        t1 = time.perf_counter()

        # Phase 2a: vectorised serving-cell selection for every position.
        serving = camp.radio.serving_many([s.position for s in samples])
        t2 = time.perf_counter()

        # Phase 2b: per-cell / per-gateway / per-path tables.
        cell_ctx = {}
        for sample in samples:
            if sample.cell not in cell_ctx:
                cell_ctx[sample.cell] = self._cell_context(sample.cell)

        air_params: dict[int, _AirParams] = {}
        for gnb in camp.radio.gnbs():
            if id(gnb.config) not in air_params:
                air_params[id(gnb.config)] = _air_params(gnb.config)

        peer_gnb = camp.radio.gnbs()[config.peer_site_index]
        peer_params = air_params[id(peer_gnb.config)]
        upf_params: dict[str, _UpfParams] = {}
        backhaul2: dict[tuple[str, str], float] = {}
        peer_backhaul2: dict[str, float] = {}
        transit: dict[tuple[str, str], CompiledPath] = {}

        def gateway_tables(gw: "Gateway") -> None:
            if gw.name in upf_params:
                return
            upf_params[gw.name] = _upf_params(gw.upf, PING_SIZE_BITS)
            for gnb in camp.radio.gnbs():
                backhaul2[(gnb.name, gw.name)] = \
                    2.0 * camp._backhaul_one_way_s(gnb.location, gw)
            peer_backhaul2[gw.name] = \
                2.0 * camp._backhaul_one_way_s(peer_gnb.location, gw)

        wired: dict[tuple[str, str], tuple[CompiledPath, float]] = {}
        peer_meta: dict[str, tuple] = {}
        for cell, (targets, gateway, _, _, _, _) in cell_ctx.items():
            gateway_tables(gateway)
            for target in targets:
                peer = config.peers.get(target)
                if peer is None:
                    key = (gateway.node_name, target)
                    if key not in wired:
                        wired[key] = self._wired_entry(gateway, target)
                    continue
                peer_gw = gateway if peer.gateway is None \
                    else config.gateways[peer.gateway]
                gateway_tables(peer_gw)
                if peer_gw.name != gateway.name:
                    tkey = (gateway.node_name, peer_gw.node_name)
                    if tkey not in transit:
                        transit[tkey] = self._transit_entry(
                            gateway, peer_gw)
                if target not in peer_meta:
                    peer_meta[target] = (
                        peer,
                        md1_wait(peer.air_load,
                                 peer_params.buffer_service_s)
                        if peer.air_load != 0.0 else 0.0,
                        bler_of(peer.sinr_db,
                                target_bler=peer_params.target_bler),
                    )

        load_cache: dict[tuple, float] = {}
        queue_mean: dict[tuple[float, float], float] = {}
        t3 = time.perf_counter()

        # Phase 3: the sampling loop — every draw in scalar order.
        dataset = MeasurementDataset()
        add = dataset.add
        for i, sample in enumerate(samples):
            cell = sample.cell
            targets, gateway, p_ho, rng_air, rng_net, rng_ho = \
                cell_ctx[cell]
            gnb, sinr_db = serving[i]
            lkey = (cell, gnb.name)
            load = load_cache.get(lkey)
            if load is None:
                load = camp._cell_load(cell, gnb.load)
                load_cache[lkey] = load
            params = air_params[id(gnb.config)]
            if load != 0.0:
                qkey = (load, params.buffer_service_s)
                qmean = queue_mean.get(qkey)
                if qmean is None:
                    qmean = md1_wait(load, params.buffer_service_s)
                    queue_mean[qkey] = qmean
            else:
                qmean = 0.0
            own_backhaul = backhaul2[(gnb.name, gateway.name)]
            own_upf = upf_params[gateway.name]
            bler = bler_of(sinr_db, target_bler=params.target_bler)
            time_s = sample.time

            for target in targets:
                # Own radio access + core legs.
                rtt = _sample_air_rtt(rng_air, params, load, qmean, bler)
                rtt += own_backhaul
                rtt += 2.0 * _sample_upf(rng_net, own_upf)

                meta = peer_meta.get(target)
                if meta is not None:
                    # Hairpin to a mobile peer.
                    peer, peer_qmean, peer_bler = meta
                    leg = 0.0
                    peer_gw = gateway if peer.gateway is None \
                        else config.gateways[peer.gateway]
                    if peer_gw.name != gateway.name:
                        leg += transit[
                            (gateway.node_name, peer_gw.node_name)
                        ].sample_round_trip(rng_net)
                    leg += 2.0 * _sample_upf(
                        rng_net, upf_params[peer_gw.name])
                    leg += peer_backhaul2[peer_gw.name]
                    leg += _sample_air_rtt(rng_air, peer_params,
                                           peer.air_load, peer_qmean,
                                           peer_bler)
                    rtt += leg
                else:
                    # Policy-routed internet to a wired target.
                    compiled, forwarding = \
                        wired[(gateway.node_name, target)]
                    leg = compiled.sample_round_trip(rng_net)
                    leg += forwarding
                    rtt += leg

                # Handover interruption landing in the window.
                # 0.5 + 0.5*r is the expanded uniform(0.5, 1.0).
                if p_ho > 0.0 and rng_ho.random() < p_ho:
                    rtt += interruption * (0.5 + 0.5 * rng_ho.random())
                add(time_s, cell, target, rtt)
        t4 = time.perf_counter()

        self.stage_seconds = {
            "route_walk": t1 - t0,
            "serving_matrix": t2 - t1,
            "tables": t3 - t2,
            "sampling": t4 - t3,
        }
        return dataset
