"""Measurement records and the campaign dataset.

A campaign produces tens of thousands of RTT samples.  The dataset
stores them column-wise in NumPy arrays (times, cell indices, target
ids, RTTs) so per-cell aggregation in :mod:`repro.probes.stats` is a
masked reduction, not a Python loop; row-wise dataclass records are
materialised only at the API boundary.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence

import numpy as np

from ..geo.grid import CellId

__all__ = ["MeasurementRecord", "MeasurementDataset"]


@dataclass(frozen=True, slots=True)
class MeasurementRecord:
    """One RTT measurement."""

    time: float          #: campaign time, seconds
    cell: CellId         #: grid cell the mobile node was in
    target: str          #: destination probe/node name
    rtt_s: float

    def __post_init__(self) -> None:
        if self.rtt_s < 0:
            raise ValueError("RTT must be non-negative")


class MeasurementDataset:
    """Column-oriented store of measurement records."""

    _INITIAL = 1024

    def __init__(self):
        self._times = np.empty(self._INITIAL, dtype=np.float64)
        self._cols = np.empty(self._INITIAL, dtype=np.int32)
        self._rows = np.empty(self._INITIAL, dtype=np.int32)
        self._rtts = np.empty(self._INITIAL, dtype=np.float64)
        self._targets: list[str] = []
        self._target_ids: dict[str, int] = {}
        self._target_col = np.empty(self._INITIAL, dtype=np.int32)
        self._n = 0

    # -- ingest ---------------------------------------------------------

    def _grow(self) -> None:
        cap = self._times.shape[0] * 2
        for name in ("_times", "_cols", "_rows", "_rtts", "_target_col"):
            setattr(self, name, np.resize(getattr(self, name), cap))

    def add(self, time: float, cell: CellId, target: str,
            rtt_s: float) -> None:
        """Append one measurement."""
        if rtt_s < 0:
            raise ValueError("RTT must be non-negative")
        if self._n == self._times.shape[0]:
            self._grow()
        tid = self._target_ids.get(target)
        if tid is None:
            tid = len(self._targets)
            self._targets.append(target)
            self._target_ids[target] = tid
        self._times[self._n] = time
        self._cols[self._n] = cell.col
        self._rows[self._n] = cell.row
        self._rtts[self._n] = rtt_s
        self._target_col[self._n] = tid
        self._n += 1

    @classmethod
    def from_columns(cls, times: np.ndarray, cols: np.ndarray,
                     rows: np.ndarray, target_col: np.ndarray,
                     targets: Sequence[str],
                     rtts: np.ndarray) -> "MeasurementDataset":
        """Bulk constructor from parallel column arrays.

        The batched campaign kernel assembles whole datasets at once;
        this produces exactly the state ``add`` would have built row by
        row (same dtypes, same first-appearance target ids), enforcing
        the same invariants.  Arrays are copied, so callers may share
        one template across many datasets.
        """
        n = len(times)
        if not (len(cols) == len(rows) == len(target_col)
                == len(rtts) == n):
            raise ValueError("column arrays must share one length")
        rtts = np.array(rtts, dtype=np.float64)
        if n and float(rtts.min()) < 0:
            raise ValueError("RTT must be non-negative")
        target_col = np.array(target_col, dtype=np.int32)
        if n and not (0 <= int(target_col.min())
                      and int(target_col.max()) < len(targets)):
            raise ValueError("target column indexes out of range")
        ds = cls()
        if n:  # keep the default capacity when empty (``_grow`` doubles)
            ds._times = np.array(times, dtype=np.float64)
            ds._cols = np.array(cols, dtype=np.int32)
            ds._rows = np.array(rows, dtype=np.int32)
            ds._rtts = rtts
            ds._target_col = target_col
        ds._targets = list(targets)
        ds._target_ids = {name: i for i, name in enumerate(ds._targets)}
        if len(ds._target_ids) != len(ds._targets):
            raise ValueError("target names must be unique")
        ds._n = n
        return ds

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def rtts(self) -> np.ndarray:
        view = self._rtts[:self._n]
        view.flags.writeable = False
        return view

    @property
    def times(self) -> np.ndarray:
        view = self._times[:self._n]
        view.flags.writeable = False
        return view

    def cell_mask(self, cell: CellId) -> np.ndarray:
        """Boolean mask of samples taken in ``cell``."""
        return ((self._cols[:self._n] == cell.col)
                & (self._rows[:self._n] == cell.row))

    def rtts_in(self, cell: CellId) -> np.ndarray:
        """RTT samples recorded in one cell."""
        return self._rtts[:self._n][self.cell_mask(cell)]

    def cells_observed(self) -> list[CellId]:
        """Distinct cells with at least one sample, sorted."""
        pairs = np.unique(
            np.stack([self._cols[:self._n], self._rows[:self._n]], axis=1),
            axis=0)
        return sorted(CellId(int(c), int(r)) for c, r in pairs)

    def records(self) -> Iterator[MeasurementRecord]:
        """Materialise records (API-boundary convenience)."""
        for i in range(self._n):
            yield MeasurementRecord(
                time=float(self._times[i]),
                cell=CellId(int(self._cols[i]), int(self._rows[i])),
                target=self._targets[self._target_col[i]],
                rtt_s=float(self._rtts[i]),
            )

    # -- persistence -----------------------------------------------------

    def save_csv(self, path: str | Path) -> None:
        """Write the dataset as CSV (time, cell, target, rtt_ms)."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time_s", "cell", "target", "rtt_ms"])
            for rec in self.records():
                writer.writerow([f"{rec.time:.3f}", rec.cell.label,
                                 rec.target, f"{rec.rtt_s * 1e3:.3f}"])

    @classmethod
    def load_csv(cls, path: str | Path) -> "MeasurementDataset":
        """Read a dataset written by :meth:`save_csv`."""
        ds = cls()
        with open(path, newline="") as fh:
            reader = csv.DictReader(fh)
            required = {"time_s", "cell", "target", "rtt_ms"}
            if reader.fieldnames is None or \
                    not required.issubset(reader.fieldnames):
                raise ValueError(
                    f"CSV at {path} missing columns {required}")
            for row in reader:
                ds.add(float(row["time_s"]),
                       CellId.from_label(row["cell"]),
                       row["target"],
                       float(row["rtt_ms"]) / 1e3)
        return ds
