"""The drive-test measurement campaign (Section IV-B/IV-C).

Orchestrates the full end-to-end pipeline for every measurement the
mobile node takes.  Two kinds of measurement targets exist, matching
the paper's setup:

* **mobile peers** — "eight other nodes within the same sector", which
  are themselves 5G UEs.  Their RTT crosses *two* air interfaces plus a
  gateway hairpin (UE -> gNB -> gateway -> gNB' -> UE'), which is why
  mobile-to-mobile RTL sits far above the wired baseline (the paper's
  "factor of seven").
* **wired targets** — the RIPE-Atlas-style anchor at the university.
  Its RTT crosses one air interface, the mobile core, and then the
  *policy-routed public internet* (the Table I / Fig. 4 detour).

Gateway breakout: mobile operators terminate user-plane sessions at
CGNAT/UPF sites in a handful of cities, and which breakout a session
lands on is operator policy, not geography.  The scenario can therefore
assign entire cells to different gateways (e.g. a Frankfurt breakout),
which adds large *deterministic* propagation — the mechanism behind
high-mean/low-variance cells such as the paper's B3.

Every stochastic draw comes from named streams of one
:class:`~repro.sim.rng.RngRegistry`, so a campaign is a pure function
of (scenario, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from .. import units
from ..cn.upf import UserPlaneFunction
from ..geo.grid import CellId, Grid
from ..geo.mobility import DriveTestRoute
from ..net.routing import RouteComputer
from ..ran.gnb import RadioNetwork
from ..sim.rng import RngRegistry
from .results import MeasurementDataset

__all__ = ["Gateway", "MobilePeer", "CampaignConfig", "DriveTestCampaign"]

#: Echo payload over the air / wire.
PING_SIZE_BITS: float = 64.0 * 8.0


@dataclass(frozen=True)
class Gateway:
    """A user-plane breakout site (UPF + CGNAT) of the mobile operator."""

    name: str
    node_name: str             #: egress node in the internet topology
    upf: UserPlaneFunction

    def __post_init__(self) -> None:
        if not self.name or not self.node_name:
            raise ValueError("gateway and node names must be non-empty")


@dataclass(frozen=True)
class MobilePeer:
    """A peer UE target, described by its radio situation."""

    name: str
    air_load: float = 0.6       #: scheduler load at the peer's cell
    sinr_db: float = 12.0
    #: peer's gateway (None = same gateway as the measuring UE)
    gateway: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("peer name must be non-empty")
        if not 0.0 <= self.air_load < 1.0:
            raise ValueError("peer air load must be in [0, 1)")


@dataclass
class CampaignConfig:
    """Per-cell scenario knobs for the campaign."""

    #: cell -> target names; names resolve to mobile peers first, then
    #: to wired topology nodes.
    targets: Mapping[CellId, Sequence[str]]
    #: gateway registry; must contain ``default_gateway``
    gateways: Mapping[str, Gateway]
    default_gateway: str
    #: mobile-peer registry (targets not listed here must be topology nodes)
    peers: Mapping[str, MobilePeer] = field(default_factory=dict)
    default_targets: Sequence[str] = ()
    #: cell -> gateway name (breakout assignment)
    gateway_by_cell: Mapping[CellId, str] = field(default_factory=dict)
    #: per-cell scheduler-load deviation from the serving gNB's base
    #: load (may be negative for quiet cells; the total is clamped)
    cell_extra_load: Mapping[CellId, float] = field(default_factory=dict)
    #: chance a measurement window contains a handover interruption
    handover_prob: Mapping[CellId, float] = field(default_factory=dict)
    handover_interruption_s: float = 45e-3
    max_cell_load: float = 0.93
    #: which radio site (index into the network's gNB list) approximates
    #: the peer UEs' serving cell in the hairpin leg
    peer_site_index: int = 0

    def __post_init__(self) -> None:
        if not self.targets and not self.default_targets:
            raise ValueError("campaign needs targets")
        if self.default_gateway not in self.gateways:
            raise ValueError(
                f"default gateway {self.default_gateway!r} not registered")
        for cell, gw in self.gateway_by_cell.items():
            if gw not in self.gateways:
                raise ValueError(f"cell {cell.label} assigned to unknown "
                                 f"gateway {gw!r}")
        for cell, p in self.handover_prob.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"handover prob for {cell.label} not in [0, 1]")
        if self.handover_interruption_s < 0:
            raise ValueError("interruption must be non-negative")
        if not 0.0 < self.max_cell_load < 1.0:
            raise ValueError("max cell load must be in (0, 1)")
        if self.peer_site_index < 0:
            raise ValueError("peer site index must be non-negative")


class DriveTestCampaign:
    """Runs the mobile measurement campaign over a built scenario."""

    def __init__(self, *, grid: Grid, route: DriveTestRoute,
                 radio: RadioNetwork, routes: RouteComputer,
                 config: CampaignConfig, rng: RngRegistry):
        topo = routes.topology
        for gw in config.gateways.values():
            if not topo.has_node(gw.node_name):
                raise KeyError(
                    f"gateway node {gw.node_name!r} not in topology")
        if config.peer_site_index >= len(radio.gnbs()):
            raise ValueError(
                f"peer site index {config.peer_site_index} out of range: "
                f"radio network has {len(radio.gnbs())} sites")
        self.grid = grid
        self.route = route
        self.radio = radio
        self.routes = routes
        self.config = config
        self.rng = rng

    # -- helpers -----------------------------------------------------------

    def _gateway_for(self, cell: CellId) -> Gateway:
        name = self.config.gateway_by_cell.get(
            cell, self.config.default_gateway)
        return self.config.gateways[name]

    def _cell_load(self, cell: CellId, base: float) -> float:
        extra = self.config.cell_extra_load.get(cell, 0.0)
        return float(np.clip(base + extra, 0.0, self.config.max_cell_load))

    def _backhaul_one_way_s(self, gnb_location, gateway: Gateway) -> float:
        gw_loc = self.routes.topology.node(gateway.node_name).location
        return units.fibre_delay(gnb_location.distance_to(gw_loc) * 1.05)

    # -- single measurement ---------------------------------------------------

    def sample_rtt(self, position, cell: CellId, target: str) -> float:
        """One end-to-end RTT measurement from ``position`` to ``target``."""
        rng_air = self.rng.stream("campaign.air", cell.label)
        rng_net = self.rng.stream("campaign.net", cell.label)
        rng_ho = self.rng.stream("campaign.handover", cell.label)
        gateway = self._gateway_for(cell)

        # Own radio access leg.
        gnb, sinr_db = self.radio.serving(position)
        load = self._cell_load(cell, gnb.load)
        air = self.radio.air_interface(gnb)
        rtt = air.sample_rtt(rng_air, load=load, sinr_db=sinr_db)

        # Own core leg: backhaul both ways + gateway processing each way.
        rtt += 2.0 * self._backhaul_one_way_s(gnb.location, gateway)
        rtt += 2.0 * gateway.upf.sample_latency_s(
            rng_net, packet_bits=PING_SIZE_BITS)

        peer = self.config.peers.get(target)
        if peer is not None:
            rtt += self._peer_leg(peer, gateway, rng_air, rng_net)
        else:
            rtt += self._wired_leg(target, gateway, rng_net)

        # Handover interruption landing in the measurement window.
        p_ho = self.config.handover_prob.get(cell, 0.0)
        if p_ho > 0.0 and rng_ho.random() < p_ho:
            rtt += self.config.handover_interruption_s * \
                rng_ho.uniform(0.5, 1.0)
        return rtt

    def _peer_leg(self, peer: MobilePeer, own_gateway: Gateway,
                  rng_air, rng_net) -> float:
        """Hairpin to a mobile peer: optional inter-gateway transit, the
        peer's core leg, and the peer's own air interface."""
        leg = 0.0
        peer_gateway = own_gateway if peer.gateway is None \
            else self.config.gateways[peer.gateway]
        if peer_gateway.name != own_gateway.name:
            path = list(self.routes.route(own_gateway.node_name,
                                          peer_gateway.node_name).path)
            leg += self.routes.topology.round_trip(
                path, PING_SIZE_BITS, rng_net).total
        # Peer's core leg: its gateway's processing + backhaul back down
        # to the peer's serving gNB (approximated by the site selected
        # by ``config.peer_site_index``, default the first).
        leg += 2.0 * peer_gateway.upf.sample_latency_s(
            rng_net, packet_bits=PING_SIZE_BITS)
        peer_gnb = self.radio.gnbs()[self.config.peer_site_index]
        leg += 2.0 * self._backhaul_one_way_s(
            peer_gnb.location, peer_gateway)
        # Peer's air interface.
        peer_air = self.radio.air_interface(peer_gnb)
        leg += peer_air.sample_rtt(rng_air, load=peer.air_load,
                                   sinr_db=peer.sinr_db)
        return leg

    def _wired_leg(self, target: str, gateway: Gateway, rng_net) -> float:
        """Policy-routed internet round trip to a wired target."""
        path = list(self.routes.route(gateway.node_name, target).path)
        leg = self.routes.topology.round_trip(
            path, PING_SIZE_BITS, rng_net).total
        leg += self.routes.topology.node(target).forwarding_delay_s
        return leg

    # -- full campaign -----------------------------------------------------

    def run(self, kernel: bool = True) -> MeasurementDataset:
        """Drive the route; measure each position against the cell's
        targets; return the dataset.

        By default runs through the precomputed measurement kernel
        (:class:`~repro.probes.kernel.CampaignKernel`), which is
        bit-identical to the scalar pipeline but roughly an order of
        magnitude faster.  ``kernel=False`` forces the scalar
        reference path (one :meth:`sample_rtt` per measurement) —
        the equivalence tests diff the two.
        """
        if kernel:
            from .kernel import CampaignKernel
            return CampaignKernel(self).run()
        dataset = MeasurementDataset()
        for sample in self.route.walk():
            cell = sample.cell
            if cell is None:
                continue
            targets = self.config.targets.get(
                cell, self.config.default_targets)
            for target in targets:
                rtt = self.sample_rtt(sample.position, cell, target)
                dataset.add(sample.time, cell, target, rtt)
        return dataset
