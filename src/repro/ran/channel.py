"""Radio channel model: path loss, shadowing, SINR, BLER.

A deliberately compact link-budget chain, sufficient to make *where the
UE stands* matter the way it does in the drive test:

* 3GPP TR 38.901 urban-macro (UMa) path loss,
* log-normal shadowing with a per-location deterministic draw (the same
  spot always sees the same shadowing — spatially consistent fading),
* SINR from a fixed noise floor plus an interference margin that grows
  with network load,
* a logistic SINR->BLER curve anchored at the link-adaptation operating
  point.

The output feeds HARQ statistics in :mod:`repro.ran.phy`: low SINR means
more retransmissions, which means latency tails in exactly the cells far
from a gNB — one of the two drivers (with load) of the Fig. 2/3 spatial
structure.
"""

from __future__ import annotations

import math
import threading
from typing import Sequence

import numpy as np

from ..geo.coords import GeoPoint
from ..sim.rng import stable_seed
from ..sim.sync import guarded_by

__all__ = ["ChannelModel"]


class ChannelModel:
    """Link-budget model for one carrier frequency.

    The shadowing-tile memo is shared whenever one compiled scenario
    is sampled by several threads (the ``thread`` executor backend),
    so it is ``guarded_by`` a plain :class:`threading.RLock` — plain
    rather than a :class:`~repro.sim.sync.WatchedLock` because this
    sits on the sampling hot path (~2k lookups per evaluation) and
    the stdlib lock's C fast path matters here.  The draw itself is a
    pure function of ``(seed, sigma, tile)``, so locking is
    observationally invisible to the golden digests.
    """

    #: memoised tile -> shadowing value, LRU in dict order
    _shadow_cache: dict[tuple[int, int], float] = \
        guarded_by("_shadow_lock")
    #: the (seed, sigma) the memo was filled under
    _shadow_inputs: tuple[int, float] = guarded_by("_shadow_lock")

    #: Upper bound on memoised shadowing tiles.  ~10 m tiles over a
    #: city-scale grid stay far below this, but a long-lived process
    #: sweeping many large scenarios must not grow the memo without
    #: bound.  Eviction is least-recently-used and only ever forces a
    #: re-derivation — the draw is a pure function of
    #: ``(seed, sigma, tile)``, so values never change.
    SHADOW_CACHE_CAPACITY = 65536

    def __init__(self, carrier_frequency_hz: float, *,
                 tx_power_dbm: float = 44.0,
                 antenna_gain_db: float = 8.0,
                 noise_figure_db: float = 9.0,
                 bandwidth_hz: float = 100e6,
                 shadowing_sigma_db: float = 6.0,
                 seed: int = 0):
        if carrier_frequency_hz <= 0:
            raise ValueError("carrier frequency must be positive")
        if bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")
        self.fc_hz = carrier_frequency_hz
        self.tx_power_dbm = tx_power_dbm
        self.antenna_gain_db = antenna_gain_db
        self.noise_figure_db = noise_figure_db
        self.bandwidth_hz = bandwidth_hz
        self.shadowing_sigma_db = shadowing_sigma_db
        self.seed = seed
        #: tile -> shadowing memo in recency order, bounded at
        #: ``SHADOW_CACHE_CAPACITY`` entries (LRU); the draw is a pure
        #: function of (seed, sigma, quantized tile), so caching it is
        #: observationally invisible.  ``_shadow_inputs`` guards the
        #: memo against post-hoc mutation of the public attributes.
        self._shadow_lock = threading.RLock()
        self._shadow_cache = {}
        self._shadow_inputs = (seed, shadowing_sigma_db)

    def __getstate__(self) -> dict[str, object]:
        # Locks do not pickle/deepcopy; the memo is derived state and
        # rebuilds lazily on the other side.
        state = dict(self.__dict__)
        state.pop("_shadow_lock", None)
        state["_shadow_cache"] = {}
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__["_shadow_lock"] = threading.RLock()
        self.__dict__.update(state)

    # -- link budget ----------------------------------------------------

    def pathloss_db(self, distance_m: float) -> float:
        """TR 38.901 UMa NLOS-style path loss.

        ``PL = 13.54 + 39.08 log10(d) + 20 log10(fc_GHz)`` with a 10 m
        close-in floor (the model is not defined below that).
        """
        if distance_m < 0:
            raise ValueError("distance must be non-negative")
        d = max(distance_m, 10.0)
        fc_ghz = self.fc_hz / 1e9
        return 13.54 + 39.08 * math.log10(d) + 20.0 * math.log10(fc_ghz)

    def pathloss_db_many(self, distances_m: np.ndarray) -> np.ndarray:
        """Batch path loss, element-wise bitwise-equal to ``pathloss_db``.

        ``log10`` runs through :func:`math.log10` per element (NumPy's
        SIMD ``log10`` may differ from libm in the last ulp); the
        surrounding arithmetic keeps the scalar's operation order.
        """
        d = np.asarray(distances_m, dtype=np.float64)
        if np.any(d < 0):
            raise ValueError("distance must be non-negative")
        d = np.maximum(d, 10.0)
        logs = np.empty_like(d)
        flat_in, flat_out = d.ravel(), logs.ravel()
        log10 = math.log10
        for i in range(flat_in.size):
            flat_out[i] = log10(flat_in[i])
        fc_ghz = self.fc_hz / 1e9
        return (13.54 + 39.08 * logs) + 20.0 * math.log10(fc_ghz)

    def shadowing_db(self, location: GeoPoint) -> float:
        """Spatially consistent shadowing: a deterministic draw per spot.

        Quantising the location to ~10 m tiles gives nearby points the
        same shadowing value, approximating the de-correlation distance
        of urban log-normal shadowing.
        """
        tile = (round(location.lat * 1e4), round(location.lon * 1e4))
        with self._shadow_lock:
            inputs = (self.seed, self.shadowing_sigma_db)
            if inputs != self._shadow_inputs:
                self._shadow_cache.clear()
                self._shadow_inputs = inputs
            cache = self._shadow_cache
            value = cache.pop(tile, None)
            if value is None:
                rng = np.random.Generator(np.random.PCG64(
                    stable_seed(self.seed, "shadow", *tile)))
                value = float(rng.normal(0.0, self.shadowing_sigma_db))
                while len(cache) >= self.SHADOW_CACHE_CAPACITY:
                    del cache[next(iter(cache))]
            # (Re-)insert at the back: dict order is recency order, so
            # the eviction above drops the least recently used tile.
            cache[tile] = value
        return value

    def shadowing_db_many(self, locations: Sequence[GeoPoint]) -> np.ndarray:
        """Shadowing for a batch of locations (populates the tile memo).

        Each unique tile derives its generator exactly once; repeated
        tiles along a drive route are free.  Element ``i`` equals
        ``shadowing_db(locations[i])`` bitwise.
        """
        return np.array([self.shadowing_db(p) for p in locations],
                        dtype=np.float64)

    @property
    def noise_dbm(self) -> float:
        """Thermal noise over the carrier bandwidth plus noise figure."""
        return (-174.0 + 10.0 * math.log10(self.bandwidth_hz)
                + self.noise_figure_db)

    def sinr_db(self, distance_m: float, location: GeoPoint,
                load: float = 0.0) -> float:
        """SINR at ``distance_m`` from the serving gNB.

        ``load`` in [0, 1] adds an interference margin up to 6 dB: a
        fully loaded neighbour layer costs roughly one MCS step, the
        standard rule of thumb for inter-cell interference.
        """
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        rx_dbm = (self.tx_power_dbm + self.antenna_gain_db
                  - self.pathloss_db(distance_m)
                  - self.shadowing_db(location))
        interference_margin = 6.0 * load
        return rx_dbm - self.noise_dbm - interference_margin

    def sinr_db_grid(self, distances_m: np.ndarray,
                     locations: Sequence[GeoPoint],
                     loads: Sequence[float]) -> np.ndarray:
        """SINR matrix over sites x positions, bitwise-equal to scalars.

        ``distances_m`` is the ``(sites, positions)`` great-circle
        matrix, ``locations`` the positions (for shadowing), ``loads``
        the per-site scheduler loads.  Element ``[i, j]`` equals
        ``sinr_db(distances_m[i, j], locations[j], loads[i])`` bitwise —
        the guarantee that lets serving-cell selection become an argmax
        over this matrix.
        """
        loads_arr = np.asarray(loads, dtype=np.float64)
        if loads_arr.size and (loads_arr.min() < 0.0
                               or loads_arr.max() > 1.0):
            raise ValueError("load must be in [0, 1]")
        pl = self.pathloss_db_many(distances_m)
        shadow = self.shadowing_db_many(locations)
        rx = ((self.tx_power_dbm + self.antenna_gain_db) - pl) - shadow
        margins = 6.0 * loads_arr
        return (rx - self.noise_dbm) - margins[:, None]

    # -- error performance -----------------------------------------------

    @staticmethod
    def bler(sinr_db: float, *, operating_sinr_db: float = 8.0,
             target_bler: float = 0.1, slope: float = 0.7) -> float:
        """Initial-transmission block error rate at ``sinr_db``.

        Logistic curve anchored so that BLER equals ``target_bler`` at
        the link-adaptation operating point: above it, errors vanish
        quickly; below it, they saturate towards 1 — the familiar
        waterfall shape of coded block error curves.
        """
        if not 0.0 < target_bler < 1.0:
            raise ValueError("target BLER must be in (0, 1)")
        if slope <= 0:
            raise ValueError("slope must be positive")
        # logit(target) fixes the curve's anchor at the operating point.
        logit_target = math.log(target_bler / (1.0 - target_bler))
        x = logit_target - slope * (sinr_db - operating_sinr_db)
        return 1.0 / (1.0 + math.exp(-x))

    def spectral_efficiency(self, sinr_db: float,
                            max_bps_hz: float = 7.4) -> float:
        """Shannon-bounded spectral efficiency, capped at 256-QAM rates."""
        sinr = 10.0 ** (sinr_db / 10.0)
        return min(math.log2(1.0 + sinr), max_bps_hz)

    def achievable_rate_bps(self, sinr_db: float,
                            bandwidth_share: float = 1.0) -> float:
        """Achievable PHY rate given a share of the carrier bandwidth."""
        if not 0.0 < bandwidth_share <= 1.0:
            raise ValueError("bandwidth share must be in (0, 1]")
        return (self.spectral_efficiency(sinr_db)
                * self.bandwidth_hz * bandwidth_share)
