"""Energy model for radio sites (the paper's future-work direction
"energy-efficient network management").

Uses the EARTH-style affine power model that underpins most RAN energy
literature: a site draws a fixed baseline when active plus a
load-proportional dynamic term, and can enter a deep-sleep state during
idle periods.  6G adds two levers the paper's outlook anticipates:
micro-sleep (fast on/off within the frame structure) and a leaner
baseline from integrated massive-MIMO front-ends.

The interesting trade-off is quantified by
:meth:`EnergyModel.daily_energy_kwh` over a diurnal load profile and by
the latency cost of sleep (a sleeping site adds wake-up delay to the
first packet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .spectrum import Generation

__all__ = ["SitePowerModel", "EnergyModel", "DIURNAL_URBAN_PROFILE"]


@dataclass(frozen=True)
class SitePowerModel:
    """Affine site power: ``P = P0 + delta * load`` when active."""

    generation: Generation
    #: baseline draw when active but unloaded, watts
    baseline_w: float
    #: additional draw at full load, watts
    dynamic_w: float
    #: deep-sleep draw, watts
    sleep_w: float
    #: wake-up latency from deep sleep, seconds
    wakeup_s: float
    #: minimum load below which the site may micro-sleep between slots
    microsleep_threshold: float = 0.0

    def __post_init__(self) -> None:
        if min(self.baseline_w, self.dynamic_w, self.sleep_w,
               self.wakeup_s) < 0:
            raise ValueError("power-model magnitudes must be non-negative")
        if self.sleep_w > self.baseline_w:
            raise ValueError("sleep draw cannot exceed the active baseline")
        if not 0.0 <= self.microsleep_threshold <= 1.0:
            raise ValueError("micro-sleep threshold must be in [0, 1]")

    @classmethod
    def macro_5g(cls) -> "SitePowerModel":
        """A 5G massive-MIMO macro site (EARTH-calibrated magnitudes)."""
        return cls(Generation.FIVE_G, baseline_w=800.0, dynamic_w=600.0,
                   sleep_w=150.0, wakeup_s=2.0,
                   microsleep_threshold=0.0)

    @classmethod
    def macro_6g(cls) -> "SitePowerModel":
        """Projected 6G site: leaner baseline, aggressive micro-sleep."""
        return cls(Generation.SIX_G, baseline_w=450.0, dynamic_w=550.0,
                   sleep_w=40.0, wakeup_s=10e-3,
                   microsleep_threshold=0.1)

    def power_w(self, load: float, asleep: bool = False) -> float:
        """Instantaneous draw at ``load`` (deep sleep overrides load)."""
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load!r}")
        if asleep:
            return self.sleep_w
        if load < self.microsleep_threshold:
            # Micro-sleep: dynamic part off, baseline scaled by the duty
            # cycle the residual load requires.
            duty = load / self.microsleep_threshold \
                if self.microsleep_threshold > 0 else 0.0
            return self.sleep_w + (self.baseline_w - self.sleep_w) * duty \
                + self.dynamic_w * load
        return self.baseline_w + self.dynamic_w * load


#: Hourly urban load profile (fraction of peak), a standard diurnal
#: double hump: commute peaks, deep night trough.
DIURNAL_URBAN_PROFILE: tuple[float, ...] = (
    0.10, 0.06, 0.05, 0.04, 0.05, 0.10,   # 00-05
    0.25, 0.55, 0.75, 0.70, 0.65, 0.70,   # 06-11
    0.75, 0.70, 0.65, 0.70, 0.80, 0.90,   # 12-17
    0.85, 0.75, 0.60, 0.45, 0.30, 0.18,   # 18-23
)


class EnergyModel:
    """Fleet-level energy accounting over load profiles."""

    def __init__(self, site: SitePowerModel, n_sites: int = 1, *,
                 sleep_threshold: float = 0.05):
        if n_sites < 1:
            raise ValueError("need at least one site")
        if not 0.0 <= sleep_threshold < 1.0:
            raise ValueError("sleep threshold must be in [0, 1)")
        self.site = site
        self.n_sites = n_sites
        self.sleep_threshold = sleep_threshold

    def daily_energy_kwh(self, profile: Sequence[float] =
                         DIURNAL_URBAN_PROFILE, *,
                         allow_sleep: bool = True) -> float:
        """Fleet energy over one day of the hourly ``profile``."""
        hours = np.asarray(profile, dtype=np.float64)
        if hours.ndim != 1 or hours.size == 0:
            raise ValueError("profile must be a non-empty 1-D sequence")
        if hours.min() < 0 or hours.max() > 1:
            raise ValueError("profile values must be in [0, 1]")
        total_w_hours = 0.0
        for load in hours:
            asleep = allow_sleep and load < self.sleep_threshold
            total_w_hours += self.site.power_w(float(load), asleep=asleep)
        return total_w_hours * self.n_sites / 1e3

    def sleep_saving_fraction(self, profile: Sequence[float] =
                              DIURNAL_URBAN_PROFILE) -> float:
        """Fraction of daily energy saved by the sleep policy."""
        awake = self.daily_energy_kwh(profile, allow_sleep=False)
        asleep = self.daily_energy_kwh(profile, allow_sleep=True)
        return 1.0 - asleep / awake

    def first_packet_penalty_s(self, load: float) -> float:
        """Latency cost of the sleep policy for the first packet that
        arrives while the site sleeps (zero if it would be awake)."""
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        return self.site.wakeup_s if load < self.sleep_threshold else 0.0
