"""gNodeB sites and the radio network layer.

A :class:`GNodeB` is one macro site: a location, a radio configuration,
and a load level (fraction of scheduler capacity in use).  The
:class:`RadioNetwork` owns all sites on one carrier and answers the
question the drive test asks at every sample: *which site serves this
position, and at what SINR?* — by maximum received power, which is how
idle-mode cell selection works.

The CU/DU split of Sec. V-C is represented by ``cu_name``: several
radio heads (sites) can share a centralised baseband unit; the O-RAN
control plane in :mod:`repro.ran.oran` attaches at that level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..geo.coords import GeoPoint, haversine_many
from .channel import ChannelModel
from .phy import AirInterface
from .spectrum import RadioConfig

__all__ = ["GNodeB", "RadioNetwork"]


@dataclass
class GNodeB:
    """One macro site."""

    name: str
    location: GeoPoint
    config: RadioConfig
    #: scheduler utilisation in [0, 1); set by the load model / scenario
    load: float = 0.0
    #: centralised unit this radio head homes to (ORAN CU/DU split)
    cu_name: str = ""
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("gNB name must be non-empty")
        if not 0.0 <= self.load < 1.0:
            raise ValueError(f"gNB load must be in [0, 1), got {self.load}")
        if not self.cu_name:
            self.cu_name = f"cu-{self.name}"


class RadioNetwork:
    """All gNBs of one operator on one carrier."""

    def __init__(self, channel: ChannelModel,
                 gnbs: Optional[Iterable[GNodeB]] = None):
        self.channel = channel
        self._gnbs: dict[str, GNodeB] = {}
        for gnb in gnbs or ():
            self.add(gnb)

    def add(self, gnb: GNodeB) -> GNodeB:
        """Register a site; duplicate names are rejected."""
        if gnb.name in self._gnbs:
            raise ValueError(f"duplicate gNB name {gnb.name!r}")
        self._gnbs[gnb.name] = gnb
        return gnb

    def gnb(self, name: str) -> GNodeB:
        """Look up one site by name."""
        try:
            return self._gnbs[name]
        except KeyError:
            raise KeyError(f"unknown gNB {name!r}") from None

    def gnbs(self) -> list[GNodeB]:
        """All registered sites."""
        return list(self._gnbs.values())

    @property
    def count(self) -> int:
        return len(self._gnbs)

    # -- serving-cell selection ----------------------------------------------

    def serving(self, position: GeoPoint,
                load_aware: bool = True) -> tuple[GNodeB, float]:
        """Best server at ``position``: ``(gnb, sinr_db)``.

        Selection is by maximum SINR (equivalently RSRP here, since noise
        and interference margins are common across sites except for
        load).  ``load_aware=False`` ignores per-site load in the SINR,
        for pure coverage analyses.
        """
        if not self._gnbs:
            raise RuntimeError("radio network has no gNBs")
        best: Optional[GNodeB] = None
        best_sinr = -float("inf")
        for gnb in self._gnbs.values():
            load = gnb.load if load_aware else 0.0
            sinr = self.channel.sinr_db(
                gnb.location.distance_to(position), position, load=load)
            if sinr > best_sinr:
                best, best_sinr = gnb, sinr
        assert best is not None
        return best, best_sinr

    def serving_many(self, positions: Sequence[GeoPoint],
                     load_aware: bool = True
                     ) -> list[tuple[GNodeB, float]]:
        """Best server for a batch of positions, bitwise-equal to
        :meth:`serving` per element.

        Precomputes the full site x position distance and SINR matrices
        (one vectorised pass instead of ``sites`` scalar link budgets
        per position) and reduces by argmax.  NumPy's argmax returns the
        *first* maximum, matching the scalar loop's strict ``>`` update
        over sites in registration order, so ties resolve identically.
        """
        if not self._gnbs:
            raise RuntimeError("radio network has no gNBs")
        positions = list(positions)
        if not positions:
            return []
        sites = list(self._gnbs.values())
        site_lats = np.array([g.location.lat for g in sites])
        site_lons = np.array([g.location.lon for g in sites])
        pos_lats = np.array([p.lat for p in positions])
        pos_lons = np.array([p.lon for p in positions])
        distances = haversine_many(site_lats[:, None], site_lons[:, None],
                                   pos_lats[None, :], pos_lons[None, :])
        loads = [g.load if load_aware else 0.0 for g in sites]
        sinr = self.channel.sinr_db_grid(distances, positions, loads)
        best = np.argmax(sinr, axis=0)
        return [(sites[i], float(sinr[i, j]))
                for j, i in enumerate(best)]

    def air_interface(self, gnb: GNodeB | str) -> AirInterface:
        """Air-interface sampler for one site's configuration."""
        if isinstance(gnb, str):
            gnb = self.gnb(gnb)
        return AirInterface(gnb.config, self.channel)

    def coverage_sinr(self, positions: Iterable[GeoPoint]) -> list[float]:
        """Best-server SINR at each position (coverage-map helper)."""
        return [sinr for _, sinr in
                self.serving_many(list(positions), load_aware=False)]
