"""Connected-mode DRX: the sleep/latency trade-off inside a connection.

C-DRX lets a connected UE sleep between scheduled on-durations: downlink
data arriving during the sleep phase waits for the next on-duration.
This is the *device-side* half of the energy story
(:mod:`repro.ran.energy` models the network side), and it matters for
the paper's applications: an AR headset cannot afford long DRX cycles,
while a massive-IoT sensor lives on them.

Model (3GPP long-DRX, no short-cycle refinement):

* a cycle of length ``cycle_s`` starts with ``on_duration_s`` of
  monitoring;
* packets arriving during the on-duration see no added delay;
* packets arriving in the sleep phase wait for the next cycle start;
* the inactivity timer keeps the UE awake after activity, so bursts
  after a wake-up are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DrxConfig", "DrxModel"]


@dataclass(frozen=True)
class DrxConfig:
    """One C-DRX configuration."""

    cycle_s: float
    on_duration_s: float
    inactivity_timer_s: float = 0.0
    #: UE modem draw while monitoring vs sleeping, watts
    active_power_w: float = 1.2
    sleep_power_w: float = 0.02

    def __post_init__(self) -> None:
        if self.cycle_s <= 0:
            raise ValueError("cycle must be positive")
        if not 0.0 < self.on_duration_s <= self.cycle_s:
            raise ValueError("on-duration must be in (0, cycle]")
        if self.inactivity_timer_s < 0:
            raise ValueError("inactivity timer must be non-negative")
        if self.active_power_w <= 0 or self.sleep_power_w < 0:
            raise ValueError("power draws must be positive/non-negative")
        if self.sleep_power_w >= self.active_power_w:
            raise ValueError("sleep draw must be below active draw")

    @classmethod
    def latency_first(cls) -> "DrxConfig":
        """AR-grade: 10 ms cycle, mostly awake."""
        return cls(cycle_s=10e-3, on_duration_s=8e-3,
                   inactivity_timer_s=100e-3)

    @classmethod
    def balanced(cls) -> "DrxConfig":
        """Smartphone default: 160 ms cycle, 10 ms on."""
        return cls(cycle_s=160e-3, on_duration_s=10e-3,
                   inactivity_timer_s=100e-3)

    @classmethod
    def battery_first(cls) -> "DrxConfig":
        """Massive-IoT: 2.56 s cycle, 10 ms on."""
        return cls(cycle_s=2.56, on_duration_s=10e-3,
                   inactivity_timer_s=20e-3)


class DrxModel:
    """Latency and energy consequences of a DRX configuration."""

    def __init__(self, config: DrxConfig):
        self.config = config

    # -- latency -----------------------------------------------------------

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the UE monitors the channel (idle traffic)."""
        return self.config.on_duration_s / self.config.cycle_s

    def mean_added_delay_s(self) -> float:
        """Expected extra downlink delay for a random (idle) arrival.

        An arrival in the on-duration waits 0; an arrival at offset
        ``t`` into the sleep phase waits ``cycle - t``... averaging over
        a uniform arrival: ``(1 - duty)^2 * cycle / 2``.
        """
        cfg = self.config
        sleep = cfg.cycle_s - cfg.on_duration_s
        return (sleep / cfg.cycle_s) * (sleep / 2.0)

    def worst_added_delay_s(self) -> float:
        """A packet arriving right after the on-duration ends."""
        return self.config.cycle_s - self.config.on_duration_s

    def sample_added_delay_s(self, rng: np.random.Generator,
                             size: int | None = None):
        """Sampled added delay for uniformly random arrivals."""
        cfg = self.config
        n = 1 if size is None else size
        offsets = rng.uniform(0.0, cfg.cycle_s, n)
        delays = np.where(offsets < cfg.on_duration_s, 0.0,
                          cfg.cycle_s - offsets)
        return float(delays[0]) if size is None else delays

    # -- energy --------------------------------------------------------------

    def mean_power_w(self) -> float:
        """Average modem draw with idle traffic (pure cycling)."""
        cfg = self.config
        duty = self.duty_cycle
        return (cfg.active_power_w * duty
                + cfg.sleep_power_w * (1.0 - duty))

    def battery_life_hours(self, battery_wh: float) -> float:
        """Idle battery life on a given battery capacity."""
        if battery_wh <= 0:
            raise ValueError("battery capacity must be positive")
        return battery_wh / self.mean_power_w()

    # -- the trade-off ---------------------------------------------------

    def meets_budget(self, rtt_budget_s: float,
                     network_rtt_s: float) -> bool:
        """Can this DRX config serve an application whose round trip,
        including the *worst-case* DRX wake-up, must stay within
        budget?"""
        if rtt_budget_s <= 0 or network_rtt_s < 0:
            raise ValueError("budgets must be positive")
        return network_rtt_s + self.worst_added_delay_s() <= rtt_budget_s
