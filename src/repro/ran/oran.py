"""O-RAN control architecture: SMO, RICs, xApps, E2/A1/O1 interfaces.

Section V-C argues for consolidating session and mobility management at
the network edge by hosting subscriber policy in the **Near-RT RIC**
instead of the centralised 5G core ([38]).  The latency arithmetic is
simple but needs real structure to be computed honestly:

* a control decision made in the core costs UE -> gNB (air) -> backhaul
  to the core site -> NF processing -> back;
* the same decision at the Near-RT RIC replaces the long backhaul legs
  with the RIC's E2 attachment near the CU.

This module models the components, their placement, and signalling
procedures as sequences of legs so that the CPF-enhancement experiment
(`repro.core.cpf_strategy`) can move functions around and measure the
consequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .. import units
from ..geo.coords import GeoPoint

__all__ = [
    "RicTier",
    "XApp",
    "NearRTRIC",
    "NonRTRIC",
    "ServiceManagementOrchestration",
    "ControlProcedure",
    "SignallingLeg",
]


class RicTier(enum.Enum):
    """Control-loop tiers with their O-RAN latency envelopes."""

    REAL_TIME = "rt"          #: < 10 ms, in the DU/CU (scheduler itself)
    NEAR_REAL_TIME = "near_rt"  #: 10 ms - 1 s loop, Near-RT RIC
    NON_REAL_TIME = "non_rt"    #: > 1 s loop, Non-RT RIC / SMO

#: (lower, upper) control-loop bounds per tier, seconds.
TIER_LOOP_BOUNDS: dict[RicTier, tuple[float, float]] = {
    RicTier.REAL_TIME: (0.0, units.ms(10.0)),
    RicTier.NEAR_REAL_TIME: (units.ms(10.0), 1.0),
    RicTier.NON_REAL_TIME: (1.0, float("inf")),
}


@dataclass(frozen=True, slots=True)
class XApp:
    """A control application hosted on a RIC."""

    name: str
    tier: RicTier
    #: decision-making latency of the app itself, seconds
    processing_s: float = 2e-3

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("xApp name must be non-empty")
        if self.processing_s < 0:
            raise ValueError("processing latency must be non-negative")
        lo, hi = TIER_LOOP_BOUNDS[self.tier]
        if not lo <= self.processing_s <= hi:
            raise ValueError(
                f"xApp {self.name!r} processing {self.processing_s}s "
                f"outside its {self.tier.value} tier bounds [{lo}, {hi}]s")


@dataclass
class NearRTRIC:
    """Near-real-time RAN intelligent controller at an edge site."""

    name: str
    location: GeoPoint
    #: one-way E2 latency to its attached CUs, seconds
    e2_latency_s: float = 1e-3
    xapps: dict[str, XApp] = field(default_factory=dict)

    def deploy(self, xapp: XApp) -> XApp:
        """Host a near-RT xApp on this RIC."""
        if xapp.tier is not RicTier.NEAR_REAL_TIME:
            raise ValueError(
                f"xApp {xapp.name!r} is {xapp.tier.value}, not near-rt")
        if xapp.name in self.xapps:
            raise ValueError(f"xApp {xapp.name!r} already deployed")
        self.xapps[xapp.name] = xapp
        return xapp

    def xapp(self, name: str) -> XApp:
        """Look up a deployed xApp."""
        try:
            return self.xapps[name]
        except KeyError:
            raise KeyError(f"no xApp {name!r} on {self.name}") from None


@dataclass
class NonRTRIC:
    """Non-real-time RIC inside the SMO (policy/training plane)."""

    name: str
    #: A1 policy-delivery latency to Near-RT RICs, seconds
    a1_latency_s: float = 0.5


@dataclass
class ServiceManagementOrchestration:
    """The SMO framework: owns the Non-RT RIC and O1 management."""

    name: str
    non_rt_ric: NonRTRIC
    #: O1 configuration-push latency, seconds
    o1_latency_s: float = 2.0

    def policy_deployment_latency(self, near_rt: NearRTRIC) -> float:
        """Time for a new policy to reach xApps on ``near_rt`` via A1."""
        return self.non_rt_ric.a1_latency_s + near_rt.e2_latency_s


@dataclass(frozen=True, slots=True)
class SignallingLeg:
    """One hop of a control procedure."""

    description: str
    latency_s: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("leg latency must be non-negative")


@dataclass
class ControlProcedure:
    """A named sequence of signalling legs (e.g. PDU session setup)."""

    name: str
    legs: list[SignallingLeg] = field(default_factory=list)

    def add(self, description: str, latency_s: float) -> "ControlProcedure":
        """Append one signalling leg; returns self for chaining."""
        self.legs.append(SignallingLeg(description, latency_s))
        return self

    @property
    def total_s(self) -> float:
        return sum(leg.latency_s for leg in self.legs)

    def breakdown(self) -> dict[str, float]:
        """Leg description -> latency (aggregating repeated legs)."""
        out: dict[str, float] = {}
        for leg in self.legs:
            out[leg.description] = out.get(leg.description, 0.0) \
                + leg.latency_s
        return out

    def __len__(self) -> int:
        return len(self.legs)
