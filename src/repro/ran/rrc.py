"""RRC connection-state machine: the cold-start tax.

A UE is not always connected: after ``inactivity_s`` without traffic it
drops to RRC-inactive, and later to RRC-idle.  The first packet of a
new burst then pays a state-transition cost *before* any air-interface
latency — the "cold event" an AR controller hits after the player
stands still, and the reason idle-period spacing shows up in latency
measurements.

Transitions and their latency-bearing procedures:

* idle -> connected: full random access + RRC setup + (NAS) service
  request — tens of milliseconds on 5G;
* inactive -> connected: RRC resume, a single RACH plus one RTT to the
  anchor gNB — several milliseconds;
* connected: no cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .access import AccessProcedure
from .spectrum import RadioConfig

__all__ = ["RrcState", "RrcConfig", "RrcStateMachine"]


class RrcState(enum.Enum):
    """The three RRC connection states."""
    IDLE = "idle"
    INACTIVE = "inactive"
    CONNECTED = "connected"


@dataclass(frozen=True)
class RrcConfig:
    """Timers and per-transition costs."""

    #: connected -> inactive after this much silence
    inactivity_s: float = 10.0
    #: inactive -> idle after this much further silence
    release_s: float = 60.0
    #: RRC setup + service request on top of random access (idle path)
    setup_signalling_s: float = 12e-3
    #: RRC resume cost on top of random access (inactive path)
    resume_signalling_s: float = 4e-3

    def __post_init__(self) -> None:
        if self.inactivity_s <= 0 or self.release_s <= 0:
            raise ValueError("timers must be positive")
        if self.setup_signalling_s < 0 or self.resume_signalling_s < 0:
            raise ValueError("signalling costs must be non-negative")


class RrcStateMachine:
    """Tracks one UE's RRC state over a traffic timeline."""

    def __init__(self, radio: RadioConfig,
                 config: RrcConfig | None = None):
        self.radio = radio
        self.config = config if config is not None else RrcConfig()
        self.access = AccessProcedure(radio)
        self._state = RrcState.IDLE
        self._last_activity: float | None = None

    @property
    def state(self) -> RrcState:
        return self._state

    def state_at(self, now: float) -> RrcState:
        """State the UE would be in at time ``now`` (timer expiry)."""
        if self._last_activity is None:
            return RrcState.IDLE
        silence = now - self._last_activity
        if silence < 0:
            raise ValueError("time went backwards")
        if self._state is RrcState.CONNECTED or \
                self._state is RrcState.INACTIVE:
            if silence >= self.config.inactivity_s + self.config.release_s:
                return RrcState.IDLE
            if silence >= self.config.inactivity_s:
                return RrcState.INACTIVE
            return self._state
        return RrcState.IDLE

    def wakeup_cost_s(self, now: float,
                      rng: np.random.Generator) -> float:
        """Transition latency for a packet arriving at ``now``.

        Advances the machine: after the call the UE is CONNECTED with
        its activity clock at ``now``.
        """
        state = self.state_at(now)
        if state is RrcState.CONNECTED:
            cost = 0.0
        elif state is RrcState.INACTIVE:
            cost = (self.access.sample_attach(rng)
                    + self.config.resume_signalling_s)
        else:
            cost = (self.access.sample_attach(rng)
                    + self.config.setup_signalling_s)
        self._state = RrcState.CONNECTED
        self._last_activity = now
        return cost

    def mean_wakeup_cost_s(self, state: RrcState) -> float:
        """Expected transition cost from a given state."""
        if state is RrcState.CONNECTED:
            return 0.0
        base = self.access.mean_attach()
        if state is RrcState.INACTIVE:
            return base + self.config.resume_signalling_s
        return base + self.config.setup_signalling_s

    def burst_timeline_costs(self, arrival_times: np.ndarray,
                             rng: np.random.Generator) -> np.ndarray:
        """Wake-up cost paid by the first packet of each burst.

        ``arrival_times`` must be non-decreasing; returns one cost per
        arrival (zero while connected).
        """
        times = np.asarray(arrival_times, dtype=np.float64)
        if times.size == 0:
            raise ValueError("no arrivals supplied")
        if (np.diff(times) < 0).any():
            raise ValueError("arrival times must be non-decreasing")
        return np.array([self.wakeup_cost_s(float(t), rng)
                         for t in times])
