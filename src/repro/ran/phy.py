"""Air-interface latency: PHY + MAC scheduling + HARQ.

One-way delay of a packet over the air decomposes as

* **SR wait** (uplink only, without configured grant) — the packet waits
  for the next scheduling-request occasion: ``U(0, sr_period)``,
* **grant delay** (uplink only) — gNB turns the SR into a UL grant,
* **frame alignment** — wait for the next slot boundary: ``U(0, slot)``,
* **queueing** — M/D/1 wait on the shared RLC/MAC buffer at the cell
  load (service quantum ``RadioConfig.buffer_service_s``; this is the
  bufferbloat term that dominates loaded 5G cells),
* **transmission** — one slot per transport block (small packets),
* **HARQ** — each failed attempt costs ``harq_rtt_slots``; failures are
  geometric with the BLER of the current SINR,
* **processing** — UE modem + gNB baseband pipeline
  (``RadioConfig.processing_base_s`` per direction).

Calibration cross-check (Sec. IV-C, Fezeu et al. [22]): with the 5G
defaults and a lightly loaded cell at good SINR, a few percent of
*downlink* packets complete in under 1 ms and ~20 % in under 3 ms —
reproduced by ``benchmarks/bench_phy_distribution.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..net.queueing import md1_wait
from .channel import ChannelModel
from .spectrum import RadioConfig

__all__ = ["AirInterface", "AirSample"]


class AirSample(float):
    """One sampled air-interface delay (seconds) with its HARQ count.

    Subclassing float keeps hot loops allocation-light while letting
    analyses inspect ``retx`` when they care.
    """

    __slots__ = ("retx",)

    def __new__(cls, value: float, retx: int = 0):
        obj = super().__new__(cls, value)
        obj.retx = retx
        return obj


class AirInterface:
    """Samples one-way air-interface delays for a radio configuration."""

    def __init__(self, config: RadioConfig, channel: ChannelModel):
        self.config = config
        self.channel = channel

    # -- HARQ ------------------------------------------------------------

    def _harq_attempts(self, bler: float, rng: np.random.Generator) -> int:
        """Number of *re*-transmissions (0 = first attempt succeeded)."""
        if bler <= 0.0:
            return 0
        retx = 0
        while retx < self.config.max_harq_retx and rng.random() < bler:
            retx += 1
        return retx

    def expected_retx(self, bler: float) -> float:
        """Mean retransmission count for a given BLER (truncated geometric)."""
        if not 0.0 <= bler < 1.0:
            raise ValueError("BLER must be in [0, 1)")
        n = self.config.max_harq_retx
        # E[min(G, n)] for G ~ Geometric(success = 1 - bler) counting failures
        return sum(bler ** k for k in range(1, n + 1))

    # -- one-way delays -------------------------------------------------------

    def sample_uplink(self, rng: np.random.Generator, *,
                      load: float = 0.0,
                      sinr_db: float = 20.0) -> AirSample:
        """One uplink packet's air latency."""
        cfg = self.config
        slot = cfg.slot_s
        delay = cfg.processing_base_s
        if not cfg.configured_grant:
            delay += rng.uniform(0.0, cfg.sr_period_slots * slot)  # SR wait
            delay += cfg.grant_delay_slots * slot                  # grant
        delay += rng.uniform(0.0, slot)                            # alignment
        delay += self._queue_wait(load, rng)
        delay += slot                                              # transmit
        bler = self.channel.bler(sinr_db, target_bler=cfg.target_bler)
        retx = self._harq_attempts(bler, rng)
        delay += retx * cfg.harq_rtt_slots * slot
        return AirSample(delay, retx)

    def sample_downlink(self, rng: np.random.Generator, *,
                        load: float = 0.0,
                        sinr_db: float = 20.0) -> AirSample:
        """One downlink packet's air latency (no SR/grant cycle)."""
        cfg = self.config
        slot = cfg.slot_s
        delay = cfg.processing_base_s + rng.uniform(0.0, slot)
        delay += self._queue_wait(load, rng)
        delay += slot
        bler = self.channel.bler(sinr_db, target_bler=cfg.target_bler)
        retx = self._harq_attempts(bler, rng)
        delay += retx * cfg.harq_rtt_slots * slot
        return AirSample(delay, retx)

    def sample_rtt(self, rng: np.random.Generator, *,
                   load: float = 0.0, sinr_db: float = 20.0) -> float:
        """Air-interface contribution to a ping RTT (UL out, DL back)."""
        return (self.sample_uplink(rng, load=load, sinr_db=sinr_db)
                + self.sample_downlink(rng, load=load, sinr_db=sinr_db))

    def _queue_wait(self, load: float, rng: np.random.Generator) -> float:
        """Sampled scheduler queueing delay at cell load ``load``.

        M/D/1 mean on the buffer quantum, scaled by an exponential
        draw: quantised service gives lighter tails than M/M/1, but
        per-packet variation is still exponential-ish in practice.
        """
        if not 0.0 <= load < 1.0:
            raise ValueError(f"cell load must be in [0, 1), got {load!r}")
        if load == 0.0:
            return 0.0
        mean = md1_wait(load, self.config.buffer_service_s)
        return float(rng.exponential(mean))

    # -- analytic means (planning / fast paths) ---------------------------

    def mean_uplink(self, *, load: float = 0.0,
                    sinr_db: float = 20.0) -> float:
        """Expected uplink air latency (closed form, no sampling)."""
        cfg = self.config
        slot = cfg.slot_s
        mean = cfg.processing_base_s
        if not cfg.configured_grant:
            mean += cfg.sr_period_slots * slot / 2.0
            mean += cfg.grant_delay_slots * slot
        mean += slot / 2.0
        mean += md1_wait(load, cfg.buffer_service_s)
        mean += slot
        bler = self.channel.bler(sinr_db, target_bler=cfg.target_bler)
        mean += self.expected_retx(bler) * cfg.harq_rtt_slots * slot
        return mean

    def mean_downlink(self, *, load: float = 0.0,
                      sinr_db: float = 20.0) -> float:
        """Expected downlink air latency (closed form)."""
        cfg = self.config
        slot = cfg.slot_s
        mean = (cfg.processing_base_s + slot / 2.0
                + md1_wait(load, cfg.buffer_service_s) + slot)
        bler = self.channel.bler(sinr_db, target_bler=cfg.target_bler)
        mean += self.expected_retx(bler) * cfg.harq_rtt_slots * slot
        return mean

    def mean_rtt(self, *, load: float = 0.0, sinr_db: float = 20.0) -> float:
        """Expected air RTT contribution."""
        return (self.mean_uplink(load=load, sinr_db=sinr_db)
                + self.mean_downlink(load=load, sinr_db=sinr_db))
