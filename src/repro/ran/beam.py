"""FR2/sub-THz beam management.

mmWave (and later sub-THz) links are directional: the gNB and UE must
agree on a beam pair, re-sweep periodically, and recover when a beam
is blocked (a hand, a bus, a wall).  This is the mechanism behind the
heavy mmWave latency tails the paper cites from Fezeu et al. [22], and
it only gets harder at 6G carrier frequencies — the narrower the beam,
the bigger the sweep space and the more frequent the blockage.

Model:

* a codebook of ``n_beams`` beams swept at ``ssb_period_s`` intervals
  (one SSB burst covers ``beams_per_burst`` beams);
* initial beam acquisition = sweeping the full codebook;
* blockage events arrive at ``blockage_rate_hz``; each triggers beam
  failure recovery: detection (a few SSB periods) plus a RACH-based
  recovery, during which the link is down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BeamConfig", "BeamManager"]


@dataclass(frozen=True)
class BeamConfig:
    """Beam-management parameters for one carrier."""

    n_beams: int = 64
    beams_per_burst: int = 8
    ssb_period_s: float = 20e-3
    #: SSB periods without a usable beam before failure is declared
    failure_detection_bursts: int = 2
    #: RACH-based recovery once failure is declared
    recovery_s: float = 10e-3
    #: mean blockage events per second (urban pedestrian: ~0.1-0.2)
    blockage_rate_hz: float = 0.1

    def __post_init__(self) -> None:
        if self.n_beams < 1 or self.beams_per_burst < 1:
            raise ValueError("beam counts must be >= 1")
        if self.beams_per_burst > self.n_beams:
            raise ValueError("burst cannot exceed the codebook")
        if self.ssb_period_s <= 0 or self.recovery_s < 0:
            raise ValueError("timings must be positive")
        if self.failure_detection_bursts < 1:
            raise ValueError("detection needs at least one burst")
        if self.blockage_rate_hz < 0:
            raise ValueError("blockage rate must be non-negative")


class BeamManager:
    """Latency consequences of beam management."""

    def __init__(self, config: BeamConfig):
        self.config = config

    @property
    def sweep_bursts(self) -> int:
        """SSB bursts needed to sweep the full codebook."""
        cfg = self.config
        return -(-cfg.n_beams // cfg.beams_per_burst)

    def initial_acquisition_s(self) -> float:
        """Worst-case time to find the best beam from cold."""
        return self.sweep_bursts * self.config.ssb_period_s

    def failure_outage_s(self) -> float:
        """Link outage per beam failure: detection + recovery."""
        cfg = self.config
        return (cfg.failure_detection_bursts * cfg.ssb_period_s
                + cfg.recovery_s)

    def mean_outage_rate(self) -> float:
        """Long-run fraction of time the link is in beam recovery."""
        outage = self.failure_outage_s()
        cycle = 1.0 / self.config.blockage_rate_hz + outage \
            if self.config.blockage_rate_hz > 0 else float("inf")
        return outage / cycle if cycle != float("inf") else 0.0

    def sample_session_outages(self, duration_s: float,
                               rng: np.random.Generator) -> np.ndarray:
        """Outage start times within a session (Poisson blockages)."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rate = self.config.blockage_rate_hz
        if rate == 0:
            return np.empty(0)
        n = rng.poisson(rate * duration_s)
        return np.sort(rng.uniform(0.0, duration_s, n))

    def latency_with_blockage(self, base_latency_s: float,
                              rng: np.random.Generator,
                              size: int = 1) -> np.ndarray:
        """Per-packet latency including the chance of hitting an outage.

        A packet sent during an outage waits for recovery completion
        (uniform residual of the outage window).
        """
        if base_latency_s < 0:
            raise ValueError("base latency must be non-negative")
        p_outage = self.mean_outage_rate()
        hit = rng.random(size) < p_outage
        residual = rng.uniform(0.0, self.failure_outage_s(), size)
        return base_latency_s + np.where(hit, residual, 0.0)
