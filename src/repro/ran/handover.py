"""Handover along mobility traces.

A drive test hands over whenever a neighbouring site becomes better
than the serving one by the A3 offset, sustained for the time-to-trigger
window.  Each 5G handover interrupts the user plane for tens of
milliseconds (break-before-make); the 6G literature targets ~0 ms via
make-before-break / dual connectivity.  Handover interruptions landing
inside a measurement window are one source of the extreme per-cell
latency spreads in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..geo.mobility import MobilitySample
from .gnb import GNodeB, RadioNetwork
from .spectrum import Generation

__all__ = ["HandoverEvent", "HandoverModel"]


@dataclass(frozen=True, slots=True)
class HandoverEvent:
    """One completed handover."""

    time: float
    source: str          #: gNB names
    target: str
    interruption_s: float


class HandoverModel:
    """A3-event handover with hysteresis and time-to-trigger."""

    #: Default user-plane interruption by generation, seconds.
    DEFAULT_INTERRUPTION = {
        Generation.FIVE_G: 45e-3,    # measured 5G NSA/SA handovers
        Generation.SIX_G: 0.5e-3,    # make-before-break target
    }

    def __init__(self, network: RadioNetwork, *,
                 a3_offset_db: float = 3.0,
                 time_to_trigger_s: float = 0.16,
                 interruption_s: Optional[float] = None,
                 interruption_jitter: float = 0.3):
        if a3_offset_db < 0:
            raise ValueError("A3 offset must be non-negative")
        if time_to_trigger_s < 0:
            raise ValueError("time-to-trigger must be non-negative")
        if not 0.0 <= interruption_jitter < 1.0:
            raise ValueError("interruption jitter must be in [0, 1)")
        self.network = network
        self.a3_offset_db = a3_offset_db
        self.time_to_trigger_s = time_to_trigger_s
        self._interruption_s = interruption_s
        self.interruption_jitter = interruption_jitter

    def interruption_for(self, gnb: GNodeB) -> float:
        """Nominal interruption when handing over *to* ``gnb``."""
        if self._interruption_s is not None:
            return self._interruption_s
        return self.DEFAULT_INTERRUPTION[gnb.config.generation]

    def sample_interruption(self, gnb: GNodeB,
                            rng: np.random.Generator) -> float:
        """Interruption with multiplicative jitter."""
        nominal = self.interruption_for(gnb)
        jitter = self.interruption_jitter
        return float(nominal * rng.uniform(1.0 - jitter, 1.0 + jitter))

    def walk(self, trace: Iterable[MobilitySample],
             rng: np.random.Generator) -> list[HandoverEvent]:
        """Handover events produced by a mobility trace.

        The A3 condition (candidate better than serving by the offset)
        must hold continuously for ``time_to_trigger_s`` before the
        handover executes — re-evaluated at each trace sample, which is
        exact for traces sampled faster than the TTT and conservative
        otherwise.
        """
        events: list[HandoverEvent] = []
        serving: Optional[GNodeB] = None
        candidate: Optional[GNodeB] = None
        candidate_since = 0.0
        for sample in trace:
            best, best_sinr = self.network.serving(sample.position)
            if serving is None:
                serving = best
                continue
            if best.name == serving.name:
                candidate = None
                continue
            serving_sinr = self.network.channel.sinr_db(
                serving.location.distance_to(sample.position),
                sample.position, load=serving.load)
            if best_sinr < serving_sinr + self.a3_offset_db:
                candidate = None
                continue
            if candidate is None or candidate.name != best.name:
                candidate = best
                candidate_since = sample.time
                continue
            if sample.time - candidate_since >= self.time_to_trigger_s:
                events.append(HandoverEvent(
                    time=sample.time,
                    source=serving.name,
                    target=best.name,
                    interruption_s=self.sample_interruption(best, rng),
                ))
                serving = best
                candidate = None
        return events

    def total_interruption(self, events: Iterable[HandoverEvent]) -> float:
        """Summed user-plane outage across events, seconds."""
        return sum(e.interruption_s for e in events)
