"""Spectrum, numerology and frame structure for 5G NR and 6G.

3GPP NR organises the air interface around a *numerology* ``mu``:
subcarrier spacing ``15 * 2^mu`` kHz and slot duration ``1 / 2^mu`` ms.
5G deployments in FR1 typically run ``mu = 1`` (30 kHz, 0.5 ms slots);
mmWave FR2 runs ``mu = 3``.  The 6G literature the paper cites ([5], [8])
projects sub-THz carriers with microsecond-scale slots and an
air-interface budget of ~100 us — ten times below 5G's 1 ms target —
which we model as extended numerologies ``mu = 5, 6``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import units

__all__ = ["Generation", "Band", "Numerology", "RadioConfig"]


class Generation(enum.Enum):
    """Radio generation (drives defaults; physics comes from the config)."""

    FIVE_G = "5g"
    SIX_G = "6g"


class Band(enum.Enum):
    """Frequency range groups."""

    FR1 = "fr1"          #: sub-6 GHz
    FR2 = "fr2"          #: mmWave 24-52 GHz
    SUB_THZ = "sub_thz"  #: 6G candidate bands, 100-300 GHz


#: Representative carrier frequency per band, Hz.
CARRIER_FREQUENCY_HZ: dict[Band, float] = {
    Band.FR1: 3.5e9,
    Band.FR2: 28e9,
    Band.SUB_THZ: 140e9,
}


@dataclass(frozen=True, slots=True)
class Numerology:
    """An NR numerology ``mu``."""

    mu: int

    def __post_init__(self) -> None:
        if not 0 <= self.mu <= 6:
            raise ValueError(f"numerology mu must be in [0, 6], got {self.mu}")

    @property
    def subcarrier_spacing_hz(self) -> float:
        return 15e3 * (1 << self.mu)

    @property
    def slot_duration_s(self) -> float:
        return units.ms(1.0) / (1 << self.mu)

    @property
    def slots_per_subframe(self) -> int:
        return 1 << self.mu

    def __str__(self) -> str:
        return (f"mu={self.mu} "
                f"({self.subcarrier_spacing_hz / 1e3:.0f} kHz SCS, "
                f"{units.to_us(self.slot_duration_s):.1f} us slots)")


@dataclass(frozen=True)
class RadioConfig:
    """Air-interface timing parameters.

    The latency-relevant knobs, with 3GPP-typical values for 5G and
    projected values for 6G:

    * ``sr_period_slots`` — scheduling-request opportunity spacing; an
      uplink packet first waits for an SR occasion.
    * ``grant_delay_slots`` — gNB processing between SR and UL grant
      (k2-style delay).
    * ``harq_rtt_slots`` — retransmission round trip on NACK.
    * ``target_bler`` — initial-transmission block error rate the link
      adaptation aims for (HARQ retransmits failures).
    * ``max_harq_retx`` — retransmission budget before MAC gives up.
    * ``configured_grant`` — 6G-style grant-free uplink: skips the
      SR/grant cycle entirely (also available in 5G URLLC profiles).
    * ``processing_base_s`` — UE modem + gNB baseband processing per
      direction.  Measured 5G stacks spend ~1-2 ms here (Fezeu et al.
      attribute most sub-PHY latency to processing); 6G design targets
      push it to tens of microseconds.
    * ``buffer_service_s`` — effective per-flow service quantum of the
      shared RLC/MAC buffer.  This is the bufferbloat term: deployed 5G
      macro cells show tens of milliseconds of buffer delay under load,
      far above slot-level queueing; the M/D/1 wait on this quantum at
      the cell load reproduces that.  6G scheduling targets push the
      quantum to sub-millisecond.
    """

    generation: Generation
    numerology: Numerology
    band: Band
    sr_period_slots: int = 8
    grant_delay_slots: int = 3
    harq_rtt_slots: int = 8
    target_bler: float = 0.1
    max_harq_retx: int = 3
    configured_grant: bool = False
    processing_base_s: float = 1.2e-3
    buffer_service_s: float = 6e-3

    def __post_init__(self) -> None:
        if self.processing_base_s < 0:
            raise ValueError("processing latency must be non-negative")
        if self.buffer_service_s < 0:
            raise ValueError("buffer service quantum must be non-negative")
        if self.sr_period_slots < 1 or self.grant_delay_slots < 0:
            raise ValueError("scheduling parameters must be non-negative "
                             "(sr period >= 1)")
        if self.harq_rtt_slots < 1:
            raise ValueError("HARQ RTT must be at least one slot")
        if not 0.0 <= self.target_bler < 1.0:
            raise ValueError("target BLER must be in [0, 1)")
        if self.max_harq_retx < 0:
            raise ValueError("HARQ budget must be non-negative")

    @property
    def slot_s(self) -> float:
        return self.numerology.slot_duration_s

    @property
    def carrier_frequency_hz(self) -> float:
        return CARRIER_FREQUENCY_HZ[self.band]

    @classmethod
    def nr_5g(cls, **overrides) -> "RadioConfig":
        """Mid-band 5G NR as deployed in central-European macro cells."""
        defaults = dict(
            generation=Generation.FIVE_G,
            numerology=Numerology(1),       # 30 kHz SCS, 0.5 ms slots
            band=Band.FR1,
            sr_period_slots=8,              # 4 ms SR periodicity
            grant_delay_slots=3,
            harq_rtt_slots=8,
            target_bler=0.1,
            max_harq_retx=3,
            configured_grant=False,
            processing_base_s=1.2e-3,
            buffer_service_s=6e-3,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def nr_5g_urllc(cls, **overrides) -> "RadioConfig":
        """5G URLLC profile: the standard's own low-latency mechanisms.

        Mini-slot-like operation (``mu = 2``), configured grants (no
        SR/grant cycle), tight BLER target and a leaner processing
        pipeline.  This is the radio profile the UPF-integration studies
        cited in Sec. V-B ([30], [31]) operate under — without it their
        5-6.2 ms end-to-end numbers are unreachable on any core.
        """
        defaults = dict(
            generation=Generation.FIVE_G,
            numerology=Numerology(2),       # 60 kHz SCS, 0.25 ms slots
            band=Band.FR1,
            sr_period_slots=4,
            grant_delay_slots=2,
            harq_rtt_slots=6,
            target_bler=0.01,
            max_harq_retx=2,
            configured_grant=True,
            processing_base_s=0.8e-3,
            buffer_service_s=1e-3,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def nr_6g(cls, **overrides) -> "RadioConfig":
        """Projected 6G: sub-THz, microsecond slots, grant-free uplink.

        With ``mu = 6`` (15.6 us slots) and a configured grant, the
        one-way air budget lands near the 100 us target of [5].
        """
        defaults = dict(
            generation=Generation.SIX_G,
            numerology=Numerology(6),
            band=Band.SUB_THZ,
            sr_period_slots=2,
            grant_delay_slots=1,
            harq_rtt_slots=4,
            target_bler=0.01,               # URLLC-grade operating point
            max_harq_retx=2,
            configured_grant=True,
            processing_base_s=20e-6,
            buffer_service_s=0.1e-3,
        )
        defaults.update(overrides)
        return cls(**defaults)
