"""MAC-layer resource sharing across users.

Converts *how many devices are active in a cell* into the scheduler
utilisation that :class:`~repro.ran.phy.AirInterface` turns into
queueing delay — the mechanism behind the paper's scalability argument
(Sec. II-C / III-C): 5G's ~10^5 devices/km2 ceiling versus 6G's ~10^6.

Two policies are modelled at the level that matters for latency:

* **Round robin** shares capacity equally; no multi-user diversity.
* **Proportional fair** schedules users near their channel peaks,
  extracting a multi-user diversity gain that grows ~logarithmically
  with the user count (the classic PF result), i.e. the same offered
  load produces *less* utilisation.
"""

from __future__ import annotations

import enum
import math

from .channel import ChannelModel

__all__ = ["SchedulerPolicy", "CellLoadModel"]


class SchedulerPolicy(enum.Enum):
    """MAC scheduling policy (round robin vs proportional fair)."""
    ROUND_ROBIN = "rr"
    PROPORTIONAL_FAIR = "pf"


class CellLoadModel:
    """Maps active-device populations to scheduler utilisation."""

    def __init__(self, channel: ChannelModel, *,
                 policy: SchedulerPolicy = SchedulerPolicy.PROPORTIONAL_FAIR,
                 pf_diversity_coeff: float = 0.25,
                 reference_sinr_db: float = 12.0,
                 overhead_fraction: float = 0.25):
        """
        Parameters
        ----------
        pf_diversity_coeff:
            Strength of the PF multi-user diversity gain
            ``1 + coeff * ln(n)``; 0.2-0.3 matches published PF/RR
            throughput ratios for 8-32 users.
        reference_sinr_db:
            Cell-average SINR used to convert bandwidth to capacity.
        overhead_fraction:
            Fraction of capacity consumed by control channels, reference
            signals and retransmissions.
        """
        if pf_diversity_coeff < 0:
            raise ValueError("diversity coefficient must be non-negative")
        if not 0.0 <= overhead_fraction < 1.0:
            raise ValueError("overhead fraction must be in [0, 1)")
        self.channel = channel
        self.policy = policy
        self.pf_diversity_coeff = pf_diversity_coeff
        self.reference_sinr_db = reference_sinr_db
        self.overhead_fraction = overhead_fraction

    # -- capacity ------------------------------------------------------------

    def cell_capacity_bps(self, n_users: int = 1) -> float:
        """Usable cell throughput for ``n_users`` active devices."""
        if n_users < 1:
            raise ValueError("user count must be at least 1")
        base = self.channel.achievable_rate_bps(self.reference_sinr_db)
        base *= 1.0 - self.overhead_fraction
        if self.policy is SchedulerPolicy.PROPORTIONAL_FAIR and n_users > 1:
            base *= 1.0 + self.pf_diversity_coeff * math.log(n_users)
        return base

    def utilisation(self, n_users: int, per_user_rate_bps: float) -> float:
        """Scheduler utilisation for a homogeneous user population.

        Saturates at 0.99 rather than raising: an over-subscribed cell
        is a meaningful state the scalability sweep must be able to
        represent (devices get throttled; latency diverges).
        """
        if per_user_rate_bps < 0:
            raise ValueError("per-user rate must be non-negative")
        if n_users < 0:
            raise ValueError("user count must be non-negative")
        if n_users == 0 or per_user_rate_bps == 0.0:
            return 0.0
        offered = n_users * per_user_rate_bps
        rho = offered / self.cell_capacity_bps(n_users)
        return min(rho, 0.99)

    def max_supported_users(self, per_user_rate_bps: float,
                            max_utilisation: float = 0.9) -> int:
        """Largest population keeping utilisation at or below the target.

        Solved by bisection because PF capacity itself grows with the
        population (no closed form).
        """
        if per_user_rate_bps <= 0:
            raise ValueError("per-user rate must be positive")
        if not 0.0 < max_utilisation < 1.0:
            raise ValueError("max utilisation must be in (0, 1)")
        lo, hi = 0, 1
        while (self.utilisation(hi, per_user_rate_bps) < max_utilisation
               and hi < 10 ** 9):
            hi *= 2
        while lo < hi - 1:
            mid = (lo + hi) // 2
            if self.utilisation(mid, per_user_rate_bps) <= max_utilisation:
                lo = mid
            else:
                hi = mid
        return lo
