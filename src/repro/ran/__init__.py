"""Radio access network: spectrum, PHY/MAC latency, channel, sites, O-RAN."""


from __future__ import annotations

from .access import AccessProcedure
from .beam import BeamConfig, BeamManager
from .channel import ChannelModel
from .drx import DrxConfig, DrxModel
from .energy import DIURNAL_URBAN_PROFILE, EnergyModel, SitePowerModel
from .gnb import GNodeB, RadioNetwork
from .handover import HandoverEvent, HandoverModel
from .phy import AirInterface, AirSample
from .rrc import RrcConfig, RrcState, RrcStateMachine
from .scheduler import CellLoadModel, SchedulerPolicy
from .spectrum import Band, Generation, Numerology, RadioConfig
from .oran import (
    ControlProcedure,
    NearRTRIC,
    NonRTRIC,
    RicTier,
    ServiceManagementOrchestration,
    SignallingLeg,
    XApp,
)

__all__ = [
    "AccessProcedure",
    "BeamConfig", "BeamManager",
    "ChannelModel",
    "EnergyModel", "SitePowerModel", "DIURNAL_URBAN_PROFILE",
    "DrxConfig", "DrxModel",
    "GNodeB", "RadioNetwork",
    "HandoverEvent", "HandoverModel",
    "AirInterface", "AirSample",
    "RrcConfig", "RrcState", "RrcStateMachine",
    "CellLoadModel", "SchedulerPolicy",
    "Band", "Generation", "Numerology", "RadioConfig",
    "ControlProcedure", "NearRTRIC", "NonRTRIC", "RicTier",
    "ServiceManagementOrchestration", "SignallingLeg", "XApp",
]
