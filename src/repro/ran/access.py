"""Random-access (RACH) and connection-setup procedures.

Idle-to-connected transitions matter for the AR use case: a controller
event arriving while the UE has drifted to RRC-idle pays the full
four-step random access before the first byte moves.  The model follows
the 3GPP contention-based procedure:

1. wait for the next PRACH occasion,
2. transmit the preamble; await the random-access response (RAR),
3. send Msg3 (RRC request) on the granted UL resources,
4. contention resolution (Msg4).

Collisions (two UEs picking the same preamble) force a backoff and
retry, which is what couples setup latency to device density — the
scalability requirement of Sec. III-C.
"""

from __future__ import annotations

import numpy as np

from .spectrum import RadioConfig

__all__ = ["AccessProcedure"]


class AccessProcedure:
    """Contention-based random access for one radio configuration."""

    def __init__(self, config: RadioConfig, *,
                 prach_period_s: float = 10e-3,
                 rar_window_s: float = 5e-3,
                 n_preambles: int = 54,
                 max_attempts: int = 10,
                 backoff_s: float = 20e-3):
        if prach_period_s <= 0 or rar_window_s <= 0 or backoff_s <= 0:
            raise ValueError("procedure timings must be positive")
        if n_preambles < 1 or max_attempts < 1:
            raise ValueError("preamble and attempt counts must be >= 1")
        self.config = config
        self.prach_period_s = prach_period_s
        self.rar_window_s = rar_window_s
        self.n_preambles = n_preambles
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s

    def collision_probability(self, contenders: int) -> float:
        """P(chosen preamble is also chosen by someone else).

        For ``m`` other contenders over ``K`` preambles:
        ``1 - (1 - 1/K)^m``.
        """
        if contenders < 0:
            raise ValueError("contender count must be non-negative")
        others = max(contenders - 1, 0)
        return 1.0 - (1.0 - 1.0 / self.n_preambles) ** others

    def sample_attach(self, rng: np.random.Generator, *,
                      contenders: int = 1) -> float:
        """One full attach latency, seconds.

        Raises :class:`RuntimeError` after ``max_attempts`` failures —
        a cell so overloaded that attach fails is a real outcome the
        scalability sweep needs to see, not an infinite loop.
        """
        p_coll = self.collision_probability(contenders)
        slot = self.config.slot_s
        total = 0.0
        for _ in range(self.max_attempts):
            total += rng.uniform(0.0, self.prach_period_s)   # PRACH occasion
            total += rng.uniform(slot, self.rar_window_s)    # RAR wait
            if rng.random() < p_coll:
                total += rng.uniform(0.0, self.backoff_s)
                continue
            total += 2 * slot          # Msg3
            total += 2 * slot          # contention resolution (Msg4)
            return total
        raise RuntimeError(
            f"random access failed after {self.max_attempts} attempts "
            f"({contenders} contenders)")

    def mean_attach(self, contenders: int = 1) -> float:
        """Expected attach latency (ignoring the failure truncation)."""
        p = self.collision_probability(contenders)
        if p >= 1.0:
            raise ValueError("collision probability saturated; "
                             "mean attach undefined")
        slot = self.config.slot_s
        per_attempt = (self.prach_period_s / 2.0
                       + (slot + self.rar_window_s) / 2.0)
        success_tail = 4 * slot
        # Geometric number of attempts with success probability 1-p.
        mean_attempts = 1.0 / (1.0 - p)
        mean_backoffs = (mean_attempts - 1.0) * self.backoff_s / 2.0
        return per_attempt * mean_attempts + mean_backoffs + success_tail
