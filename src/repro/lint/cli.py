"""``python -m repro lint`` — the determinism + concurrency gate.

Exit codes: 0 when the tree is clean against the committed baseline,
1 when any new REP finding exists, 2 for configuration/usage errors.
``--format json`` emits a machine-readable report for CI annotation
(each finding carries its ``category``); ``--select``/``--ignore``
filter by rule code or family (``determinism``/``concurrency``) so CI
can gate the two families independently; ``--explain REPxxx`` prints a
rule's contract and fix guidance; ``--write-baseline`` accepts the
current findings as the new baseline (use sparingly — every entry is a
reviewed exception, not a snooze button).
"""

from __future__ import annotations

import json
import os.path
import sys
from pathlib import Path, PurePath
from typing import Sequence, TextIO

from .baseline import Baseline, BaselineMatch, apply_baseline
from .config import load_config
from .engine import check_paths, iter_files
from .findings import Finding, rule_category
from .rules import RULES, rule_by_code, rule_catalog

__all__ = ["run_lint"]

_CATEGORIES = ("determinism", "concurrency")


def _render_text(match: BaselineMatch, checked_paths: Sequence[str],
                 out: TextIO) -> None:
    for finding in match.new:
        print(finding.render(), file=out)
        if finding.code_line:
            print(f"    {finding.code_line}", file=out)
    summary = (f"{len(match.new)} violation(s), "
               f"{len(match.accepted)} baseline-accepted, "
               f"{len(match.stale)} stale baseline entr"
               f"{'y' if len(match.stale) == 1 else 'ies'} "
               f"({', '.join(checked_paths)})")
    print(summary, file=out)
    for entry in match.stale:
        print(f"  stale: {entry.path} {entry.rule} "
              f"{entry.fingerprint} — flagged code no longer present; "
              f"drop it from the baseline", file=out)
    if not match.new:
        print("determinism and concurrency contracts hold.", file=out)


def _render_json(match: BaselineMatch, checked_paths: Sequence[str],
                 out: TextIO) -> None:
    payload = {
        "paths": list(checked_paths),
        "clean": not match.new,
        "violations": [f.to_dict() for f in match.new],
        "accepted": [f.to_dict() for f in match.accepted],
        "stale_baseline": [e.to_dict() for e in match.stale],
        "rules": [{"code": code, "category": category, "title": title}
                  for code, category, title in rule_catalog()],
    }
    print(json.dumps(payload, indent=2, sort_keys=True), file=out)


def _explain(code: str, out: TextIO, err: TextIO) -> int:
    cls = rule_by_code(code)
    if cls is None:
        known = ", ".join(c.code for c in RULES)
        print(f"error: unknown rule {code!r}; known: {known}",
              file=err)
        return 2
    print(f"{cls.code} [{cls.category}] — {cls.title}", file=out)
    doc = (cls.__doc__ or "").strip("\n")
    if doc:
        # Strip the class-body indentation without bringing in
        # textwrap for one call site.
        lines = doc.splitlines()
        body = lines[1:]
        indents = [len(ln) - len(ln.lstrip()) for ln in body
                   if ln.strip()]
        cut = min(indents) if indents else 0
        print("", file=out)
        print("\n".join([lines[0].strip()]
                        + [ln[cut:] for ln in body]), file=out)
    return 0


def _valid_filters(tokens: Sequence[str], flag: str,
                   err: TextIO) -> bool:
    known = {cls.code for cls in RULES} | set(_CATEGORIES)
    for token in tokens:
        if token not in known:
            print(f"error: {flag} {token!r} is neither a rule code "
                  f"nor a category ({'|'.join(_CATEGORIES)})",
                  file=err)
            return False
    return True


def _rule_chosen(code: str, select: Sequence[str],
                 ignore: Sequence[str]) -> bool:
    tags = (code, rule_category(code))
    if any(tag in ignore for tag in tags):
        return False
    return not select or any(tag in select for tag in tags)


def run_lint(paths: Sequence[str] = (), *, root: str = ".",
             output_format: str = "text", write_baseline: bool = False,
             no_baseline: bool = False, list_rules: bool = False,
             select: Sequence[str] = (), ignore: Sequence[str] = (),
             explain: str | None = None,
             out: TextIO | None = None,
             err: TextIO | None = None) -> int:
    """Run the linter; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    if explain is not None:
        return _explain(explain, out, err)
    if list_rules:
        for code, category, title in rule_catalog():
            print(f"{code}  [{category}]  {title}", file=out)
        return 0
    if output_format not in ("text", "json"):
        print(f"error: unknown lint format {output_format!r} "
              f"(text|json)", file=err)
        return 2
    if (select or ignore) and write_baseline:
        print("error: --write-baseline with --select/--ignore would "
              "drop the filtered-out families from the baseline; run "
              "it unfiltered", file=err)
        return 2
    if not _valid_filters(tuple(select) + tuple(ignore),
                          "--select/--ignore", err):
        return 2
    try:
        config = load_config(root)
        findings: list[Finding] = check_paths(
            tuple(paths) or None, root=root, config=config)
    except (FileNotFoundError, KeyError, TypeError, ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"error: {message}", file=err)
        return 2

    baseline_path = Path(root) / config.baseline
    if write_baseline:
        saved = Baseline.from_findings(findings).save(baseline_path)
        print(f"baseline with {len(findings)} accepted finding(s) "
              f"written to {saved}", file=out)
        return 0

    baseline = Baseline() if no_baseline else \
        Baseline.load(baseline_path)
    if select or ignore:
        findings = [f for f in findings
                    if _rule_chosen(f.rule, select, ignore)]
        # Filter the baseline the same way: an unselected family's
        # entries must not surface as stale.
        baseline = Baseline(entries=tuple(
            e for e in baseline.entries
            if _rule_chosen(e.rule, select, ignore)))
    checked = tuple(paths) or config.paths
    base = Path(root)
    checked_files = tuple(
        PurePath(os.path.relpath(f, base)).as_posix()
        for f in iter_files(checked, root=base))
    match = apply_baseline(findings, baseline,
                           checked_paths=checked_files)
    if output_format == "json":
        _render_json(match, checked, out)
    else:
        _render_text(match, checked, out)
    return 1 if match.new else 0
