"""``python -m repro lint`` — the determinism-contract gate.

Exit codes: 0 when the tree is clean against the committed baseline,
1 when any new REP finding exists, 2 for configuration/usage errors.
``--format json`` emits a machine-readable report for CI annotation;
``--write-baseline`` accepts the current findings as the new baseline
(use sparingly — every entry is a reviewed exception, not a snooze
button).
"""

from __future__ import annotations

import json
import os.path
import sys
from pathlib import Path, PurePath
from typing import Sequence, TextIO

from .baseline import Baseline, BaselineMatch, apply_baseline
from .config import load_config
from .engine import check_paths, iter_files
from .findings import Finding
from .rules import rule_catalog

__all__ = ["run_lint"]


def _render_text(match: BaselineMatch, checked_paths: Sequence[str],
                 out: TextIO) -> None:
    for finding in match.new:
        print(finding.render(), file=out)
        if finding.code_line:
            print(f"    {finding.code_line}", file=out)
    summary = (f"{len(match.new)} violation(s), "
               f"{len(match.accepted)} baseline-accepted, "
               f"{len(match.stale)} stale baseline entr"
               f"{'y' if len(match.stale) == 1 else 'ies'} "
               f"({', '.join(checked_paths)})")
    print(summary, file=out)
    for entry in match.stale:
        print(f"  stale: {entry.path} {entry.rule} "
              f"{entry.fingerprint} — flagged code no longer present; "
              f"drop it from the baseline", file=out)
    if not match.new:
        print("determinism contracts hold.", file=out)


def _render_json(match: BaselineMatch, checked_paths: Sequence[str],
                 out: TextIO) -> None:
    payload = {
        "paths": list(checked_paths),
        "clean": not match.new,
        "violations": [f.to_dict() for f in match.new],
        "accepted": [f.to_dict() for f in match.accepted],
        "stale_baseline": [e.to_dict() for e in match.stale],
        "rules": [{"code": code, "title": title}
                  for code, title in rule_catalog()],
    }
    print(json.dumps(payload, indent=2, sort_keys=True), file=out)


def run_lint(paths: Sequence[str] = (), *, root: str = ".",
             output_format: str = "text", write_baseline: bool = False,
             no_baseline: bool = False, list_rules: bool = False,
             out: TextIO | None = None,
             err: TextIO | None = None) -> int:
    """Run the linter; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    if list_rules:
        for code, title in rule_catalog():
            print(f"{code}  {title}", file=out)
        return 0
    if output_format not in ("text", "json"):
        print(f"error: unknown lint format {output_format!r} "
              f"(text|json)", file=err)
        return 2
    try:
        config = load_config(root)
        findings: list[Finding] = check_paths(
            tuple(paths) or None, root=root, config=config)
    except (FileNotFoundError, KeyError, TypeError, ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"error: {message}", file=err)
        return 2

    baseline_path = Path(root) / config.baseline
    if write_baseline:
        saved = Baseline.from_findings(findings).save(baseline_path)
        print(f"baseline with {len(findings)} accepted finding(s) "
              f"written to {saved}", file=out)
        return 0

    baseline = Baseline() if no_baseline else \
        Baseline.load(baseline_path)
    checked = tuple(paths) or config.paths
    base = Path(root)
    checked_files = tuple(
        PurePath(os.path.relpath(f, base)).as_posix()
        for f in iter_files(checked, root=base))
    match = apply_baseline(findings, baseline,
                           checked_paths=checked_files)
    if output_format == "json":
        _render_json(match, checked, out)
    else:
        _render_text(match, checked, out)
    return 1 if match.new else 0
