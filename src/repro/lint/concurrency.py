"""The six thread-safety rules (REP101..REP106).

The concurrency siblings of the determinism family: they run in the
*same* shared AST walk (:mod:`repro.lint.engine` dispatches one
traversal to both families — no second parse pass) and are driven by
the in-code annotations :mod:`repro.sim.sync` provides:

REP101  guarded-attribute access outside its lock — an attribute
        declared ``guarded_by("<lock>")`` may only be touched inside
        ``with self.<lock>:`` (or in a helper whose signature carries
        the ``# lint: holds(<lock>)`` escape).
REP102  blocking call under a lock — HTTP, subprocess, sleeps,
        evaluation entry points, and non-atomic disk writes must never
        run while a declared lock is held.
REP103  mutable class-level attribute on a shared singleton class —
        a ``dict``/``list``/``set`` in the class body of a
        once-instantiated, cross-thread object is process-global
        state in disguise.
REP104  ``threading.Thread`` without an explicit ``daemon=`` — the
        shutdown behavior of every thread must be a decision, not a
        default.
REP105  nested acquisition of a different declared lock — static
        lock-order discipline; pairs must be whitelisted in
        ``[tool.repro-lint] lock-order`` as ``"outer->inner"``.
REP106  shared-cache mutation from executor-boundary code on an object
        not declared thread-safe — caches crossing thread boundaries
        must be internally synchronized.
"""

from __future__ import annotations

import ast

from .config import LintConfig, path_selected
from .engine import ModuleContext, _call_name, _is_self_attr
from .rules import Rule

__all__ = ["CONCURRENCY_RULES"]

#: methods where lock-free guarded access is fine: the object is not
#: yet (or no longer) shared, or the interpreter guarantees exclusivity.
_REP101_EXEMPT = frozenset({
    "__init__", "__new__", "__post_init__",
    "__getstate__", "__setstate__", "__del__",
})

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "defaultdict", "deque", "OrderedDict",
    "Counter",
})


class Rep101GuardedAccess(Rule):
    """Guarded attributes may only be touched while their lock is held.

    A class-level ``attr = guarded_by("_lock")`` declaration is a
    contract: every read or write of ``self.attr`` in the class body
    must sit inside ``with self._lock:``.  Helpers documented as
    called-under-lock carry ``# lint: holds(_lock)`` on their ``def``
    line, which this rule honors (and the runtime watchdog verifies).
    Fix: widen the ``with`` block, add the ``holds()`` escape to a
    caller-holds-the-lock helper, or stop sharing the attribute.
    """

    code = "REP101"
    category = "concurrency"
    title = "guarded attribute accessed without its lock"
    interests = (ast.Attribute,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Attribute)
        info = ctx.current_class
        if info is None:
            return
        attr = _is_self_attr(node)
        if attr is None or attr not in info.guarded:
            return
        where = ctx.current_function
        if where is None or where in _REP101_EXEMPT:
            return
        lock = info.guarded[attr]
        if lock in ctx.held_locks:
            return
        ctx.report(
            self.code, node,
            f"'self.{attr}' is declared guarded_by({lock!r}) but is "
            f"accessed in {where}() without holding self.{lock}; wrap "
            f"in 'with self.{lock}:' or mark the helper with "
            f"'# lint: holds({lock})'")


class Rep102BlockingUnderLock(Rule):
    """Never block (or write files non-atomically) while holding a lock.

    A lock held across HTTP, subprocess, ``time.sleep``, an
    ``evaluate``/``sample_run`` call, or a plain disk write serializes
    every other thread behind I/O latencies.  Fix: compute the value
    outside the critical section and only publish it under the lock
    (racing duplicate work is fine when the value is a pure function
    of its key); only atomic renames (``os.replace``) of pre-written
    temp files are exempt.  Reviewed-safe remnants go into the
    baseline with a reason.
    """

    code = "REP102"
    category = "concurrency"
    title = "blocking call while holding a lock"
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        if not ctx.held_locks:
            return
        held = ctx.held_locks[-1]
        resolved = ctx.resolve(node.func)
        if resolved is not None:
            for entry in self.config.rep102_blocking:
                matched = resolved.startswith(entry) \
                    if entry.endswith(".") else resolved == entry
                if matched:
                    ctx.report(
                        self.code, node,
                        f"'{resolved}' may block while self.{held} is "
                        f"held; move it outside the critical section")
                    return
        name = _call_name(node.func)
        if name in self.config.rep102_blocking_methods:
            ctx.report(
                self.code, node,
                f"'.{name}()' is a blocking/IO entry point called "
                f"while self.{held} is held; compute outside the lock "
                f"and publish the result under it")


class Rep103MutableClassAttr(Rule):
    """Shared singleton classes must not carry mutable class attributes.

    The configured classes (broker, caches, stores, clients) are
    instantiated once and shared across threads; a ``dict``/``list``/
    ``set`` in their class body is shared by *every* instance and
    mutates without any lock ever being declared for it.  Fix: move
    the attribute into ``__init__`` (and guard it), or make it an
    immutable tuple/frozenset/constant.
    """

    code = "REP103"
    category = "concurrency"
    title = "mutable class-level attribute on a shared class"
    interests = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.ClassDef)
        if node.name not in self.config.rep103_classes:
            return
        for stmt in node.body:
            target: str | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target, value = stmt.targets[0].id, stmt.value
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                target, value = stmt.target.id, stmt.value
            if target is None or value is None:
                continue
            if self._is_mutable(value):
                ctx.report(
                    self.code, value,
                    f"class-level '{target}' on shared class "
                    f"'{node.name}' is mutable and visible to every "
                    f"thread; move it into __init__ under a lock or "
                    f"make it immutable")

    @staticmethod
    def _is_mutable(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set,
                              ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        return (isinstance(value, ast.Call)
                and _call_name(value.func) in _MUTABLE_CONSTRUCTORS)


class Rep104ThreadDaemon(Rule):
    """Every thread must pick its shutdown story explicitly.

    ``threading.Thread(...)`` without ``daemon=`` inherits the parent's
    flag — usually non-daemon, so a forgotten thread blocks process
    exit (or, flipped, dies mid-write).  Fix: pass ``daemon=True`` for
    best-effort background work, or ``daemon=False`` plus an explicit
    join/stop path for work that must complete.
    """

    code = "REP104"
    category = "concurrency"
    title = "threading.Thread without explicit daemon="
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        if ctx.resolve(node.func) != "threading.Thread":
            return
        if any(kw.arg == "daemon" for kw in node.keywords):
            return
        ctx.report(
            self.code, node,
            "threading.Thread created without explicit daemon=; "
            "decide the shutdown behavior (daemon=True, or "
            "daemon=False with a join/stop path)")


class Rep105LockOrder(Rule):
    """Acquiring a second declared lock needs a whitelisted order.

    Nested ``with self.<lockB>:`` inside ``with self.<lockA>:`` (for
    different declared locks) is how deadlocks are built; any such
    pair must be declared in ``[tool.repro-lint] lock-order`` as
    ``"lockA->lockB"`` — making the global acquisition order a
    reviewed, single-direction contract.  The runtime
    ``WatchedLock`` watchdog enforces the same ordering dynamically.
    Fix: restructure to one lock per critical section, or whitelist
    the ordered pair.
    """

    code = "REP105"
    category = "concurrency"
    title = "nested acquisition of a different declared lock"
    interests = (ast.With, ast.AsyncWith)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, (ast.With, ast.AsyncWith))
        entered = ctx.with_locks(node)
        if not entered:
            return
        allowed = {"".join(entry.split())
                   for entry in self.config.lock_order}
        for inner in entered:
            for outer in ctx.held_locks:
                if outer == inner:
                    continue  # reentrant re-acquisition
                if f"{outer}->{inner}" in allowed:
                    continue
                ctx.report(
                    self.code, node,
                    f"acquiring self.{inner} while holding "
                    f"self.{outer}; whitelist "
                    f"'{outer}->{inner}' in [tool.repro-lint] "
                    f"lock-order or restructure to one lock per "
                    f"critical section")


class Rep106SharedCacheMutation(Rule):
    """Executor-boundary code may only mutate thread-safe caches.

    In the configured executor-boundary modules (thread-pool
    executors, worker loops), ``self.<cache>.<mutator>(...)`` runs on
    arbitrary pool threads; the attribute must be built from a class
    reviewed as internally synchronized ([tool.repro-lint]
    rep106-threadsafe).  Fix: synchronize the cache class (declare
    its state ``guarded_by`` a lock) and add it to the thread-safe
    list, or marshal mutations back to a single owner thread.
    """

    code = "REP106"
    category = "concurrency"
    title = "shared-cache mutation from executor-boundary code"
    interests = (ast.Call,)

    @classmethod
    def applies_to(cls, config: LintConfig, rel_path: str) -> bool:
        if not config.rule_enabled(cls.code):
            return False
        return path_selected(rel_path, config.rep106_exec_paths)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in self.config.rep106_mutators:
            return
        attr = _is_self_attr(func.value)
        if attr is None or attr not in self.config.rep106_shared_attrs:
            return
        info = ctx.current_class
        types = info.attr_types.get(attr, set()) if info else set()
        if not types:
            return  # provenance unknown; stay silent, not wrong
        if types & set(self.config.rep106_threadsafe):
            return
        built = ", ".join(sorted(types))
        ctx.report(
            self.code, node,
            f"'self.{attr}.{func.attr}()' mutates a shared object "
            f"(built from {built}) on an executor-boundary path, but "
            f"none of its types are declared rep106-threadsafe; "
            f"synchronize the class or marshal the mutation to one "
            f"thread")


#: the concurrency family, in code order.
CONCURRENCY_RULES: tuple[type[Rule], ...] = (
    Rep101GuardedAccess,
    Rep102BlockingUnderLock,
    Rep103MutableClassAttr,
    Rep104ThreadDaemon,
    Rep105LockOrder,
    Rep106SharedCacheMutation,
)
