"""Linter configuration: mechanism in code, policy in ``pyproject.toml``.

The rules in :mod:`repro.lint.rules` are generic mechanisms; *which*
modules sit on the bit-identity or serialization paths is repository
policy and therefore lives in ``[tool.repro-lint]`` of
``pyproject.toml``, not in code.  :func:`load_config` reads that table
(via :mod:`tomllib`; Python >= 3.11) and overlays it on the built-in
defaults, which keep every path-scoped rule dormant — an unconfigured
tree only gets the globally-safe rules (REP001/REP002/REP005/REP006
heuristics).

Path scoping convention: an entry ending in ``/`` selects every module
under that directory; any other entry selects exactly that file.  All
paths are repo-relative posix paths (``src/repro/geo/coords.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Mapping

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback, CI-tested
    tomllib = None  # type: ignore[assignment]

__all__ = ["LintConfig", "load_config", "path_selected"]

#: pyproject table the configuration is read from.
PYPROJECT_TABLE = "repro-lint"


def path_selected(rel_path: str, patterns: tuple[str, ...]) -> bool:
    """Whether ``rel_path`` matches any scoping pattern.

    ``"pkg/sub/"`` matches every file under the directory;
    ``"pkg/mod.py"`` matches only that module.
    """
    for pattern in patterns:
        if pattern.endswith("/"):
            if rel_path.startswith(pattern):
                return True
        elif rel_path == pattern:
            return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Every knob of the determinism linter, with dormant defaults."""

    #: directories/files checked when the CLI gets no explicit paths
    paths: tuple[str, ...] = ("src/repro/",)
    #: committed accepted-findings file, repo-relative
    baseline: str = "lint-baseline.json"
    #: rule codes disabled outright
    disabled_rules: tuple[str, ...] = ()

    #: REP002 — modules where wall-clock/entropy reads are acceptable
    #: (CLI, fleet timing fields, benchmarks live outside ``paths``)
    rep002_exempt: tuple[str, ...] = ()
    #: REP003 — modules on the stream/serialization path where
    #: unordered set/dict iteration must go through ``sorted(...)``
    rep003_paths: tuple[str, ...] = ()
    #: REP004 — bit-identity-critical modules where array-form NumPy
    #: transcendentals must route through the libm helpers
    rep004_paths: tuple[str, ...] = ()
    #: REP004 — the NumPy functions whose float64 array form may take a
    #: SIMD path that differs from libm in the last ulp
    rep004_functions: tuple[str, ...] = (
        "sin", "cos", "tan", "arcsin", "arccos", "arctan", "arctan2",
        "sinh", "cosh", "tanh", "arcsinh", "arccosh", "arctanh",
        "exp", "exp2", "expm1", "log", "log2", "log10", "log1p",
        "power", "float_power", "square", "cbrt",
    )
    #: REP005 — methods allowed to mutate frozen dataclasses
    rep005_allowed_methods: tuple[str, ...] = ("__post_init__",)
    #: REP006 — modules whose payload functions are return-checked
    rep006_paths: tuple[str, ...] = ()
    #: REP006 — worker entry points that must return plain data
    rep006_payload_functions: tuple[str, ...] = ()
    #: REP006 — constructors too heavy/unpicklable to cross the
    #: Executor boundary
    rep006_heavy_types: tuple[str, ...] = ()

    #: REP102 — dotted call origins that may block (trailing ``.`` is a
    #: prefix match on the resolved import origin)
    rep102_blocking: tuple[str, ...] = (
        "urllib.request.",
        "http.client.",
        "socket.",
        "subprocess.",
        "requests.",
        "time.sleep",
    )
    #: REP102 — bare method/function names that may block or perform
    #: non-atomic disk writes (repository policy names its evaluation
    #: and persistence entry points here)
    rep102_blocking_methods: tuple[str, ...] = (
        "evaluate",
        "sample_run",
        "urlopen",
    )
    #: REP103 — classes instantiated once and shared across threads;
    #: mutable class-level attributes on them are process-global state
    rep103_classes: tuple[str, ...] = ()
    #: REP105 — whitelisted nested acquisitions, ``"outer->inner"``
    lock_order: tuple[str, ...] = ()
    #: REP106 — executor-boundary modules where shared-cache mutation
    #: is policed
    rep106_exec_paths: tuple[str, ...] = ()
    #: REP106 — ``self.<attr>`` names that hold shared caches/stores
    rep106_shared_attrs: tuple[str, ...] = ()
    #: REP106 — methods on those attributes that mutate shared state
    rep106_mutators: tuple[str, ...] = ()
    #: REP106 — classes reviewed as internally synchronized; calls on
    #: attributes built from (only) these constructors are fine
    rep106_threadsafe: tuple[str, ...] = ()

    def rule_enabled(self, code: str) -> bool:
        return code not in self.disabled_rules


def _coerce(value: Any, name: str) -> Any:
    """Validate one pyproject entry against the dataclass field kinds."""
    if isinstance(value, str):
        if name in ("baseline",):
            return value
        raise TypeError(
            f"[tool.{PYPROJECT_TABLE}] {name} must be a list of "
            f"strings, got a bare string {value!r}")
    if isinstance(value, (list, tuple)):
        items = tuple(value)
        for item in items:
            if not isinstance(item, str):
                raise TypeError(
                    f"[tool.{PYPROJECT_TABLE}] {name} entries must be "
                    f"strings, got {item!r}")
        return items
    raise TypeError(
        f"[tool.{PYPROJECT_TABLE}] {name} has unsupported value "
        f"{value!r}")


def config_from_mapping(data: Mapping[str, Any]) -> LintConfig:
    """Build a config from a ``[tool.repro-lint]``-shaped mapping.

    Unknown keys raise — a typo in pyproject must not silently disable
    a contract.  TOML dashes are accepted for field-name underscores.
    """
    known = {f.name for f in fields(LintConfig)}
    updates: dict[str, Any] = {}
    for raw_key, value in data.items():
        key = raw_key.replace("-", "_")
        if key not in known:
            raise KeyError(
                f"unknown [tool.{PYPROJECT_TABLE}] key {raw_key!r}; "
                f"known: {', '.join(sorted(known))}")
        updates[key] = _coerce(value, key)
    return replace(LintConfig(), **updates)


def load_config(root: str | Path = ".") -> LintConfig:
    """The repository's lint configuration.

    Reads ``<root>/pyproject.toml`` ``[tool.repro-lint]`` when present;
    otherwise (no file, no table, or a Python without :mod:`tomllib`)
    returns the dormant defaults.
    """
    pyproject = Path(root) / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return LintConfig()
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get(PYPROJECT_TABLE)
    if table is None:
        return LintConfig()
    if not isinstance(table, Mapping):
        raise TypeError(f"[tool.{PYPROJECT_TABLE}] must be a table")
    return config_from_mapping(table)
