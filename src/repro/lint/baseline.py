"""Committed baseline of *accepted* findings.

Some findings are the documented design: ``haversine_matrix`` is
allowed SIMD transcendentals because it is explicitly the
non-bit-identical fast variant, and several fleet aggregations iterate
dicts in first-seen order as their contract.  Those live in
``lint-baseline.json`` — reviewed once, committed, and matched by
content fingerprint so they keep suppressing exactly that code and
nothing else.  New findings always fail the lint run; deleting the
flagged code makes its baseline entry *stale*, which the report calls
out so the file shrinks over time instead of fossilising.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .findings import Finding

__all__ = ["Baseline", "BaselineMatch", "apply_baseline"]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: identity plus human-facing context."""

    rule: str
    path: str
    fingerprint: str
    line: int = 0            #: informational; not used for matching
    code_line: str = ""      #: informational copy of the flagged text
    reason: str = ""         #: reviewer's note on why this is accepted

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.fingerprint)

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "rule": self.rule, "path": self.path,
            "fingerprint": self.fingerprint, "line": self.line,
            "code_line": self.code_line,
        }
        if self.reason:
            data["reason"] = self.reason
        return data


@dataclass(frozen=True)
class Baseline:
    """The committed accepted-findings set."""

    entries: tuple[BaselineEntry, ...] = ()

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.is_file():
            return cls()
        data = json.loads(file_path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != _VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in "
                f"{file_path} (expected {_VERSION})")
        entries = tuple(
            BaselineEntry(
                rule=str(item["rule"]), path=str(item["path"]),
                fingerprint=str(item["fingerprint"]),
                line=int(item.get("line", 0)),
                code_line=str(item.get("code_line", "")),
                reason=str(item.get("reason", "")))
            for item in data.get("findings", []))
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(entries=tuple(
            BaselineEntry(rule=f.rule, path=f.path,
                          fingerprint=f.fingerprint, line=f.line,
                          code_line=f.code_line)
            for f in findings))

    def save(self, path: str | Path) -> Path:
        """Write the baseline deterministically (sorted, stable JSON)."""
        file_path = Path(path)
        ordered = sorted(self.entries,
                         key=lambda e: (e.path, e.line, e.rule,
                                        e.fingerprint))
        payload = {
            "version": _VERSION,
            "comment": ("Accepted determinism-lint findings; matched "
                        "by content fingerprint. Regenerate with "
                        "'python -m repro lint --write-baseline'."),
            "findings": [entry.to_dict() for entry in ordered],
        }
        file_path.write_text(json.dumps(payload, indent=2) + "\n",
                             encoding="utf-8")
        return file_path


@dataclass(frozen=True)
class BaselineMatch:
    """The three-way split of a lint run against a baseline."""

    new: tuple[Finding, ...]           #: violations — fail the run
    accepted: tuple[Finding, ...]      #: matched baseline entries
    stale: tuple[BaselineEntry, ...]   #: entries matching nothing


def apply_baseline(findings: list[Finding], baseline: Baseline, *,
                   checked_paths: Iterable[str] | None = None
                   ) -> BaselineMatch:
    """Split findings into new vs accepted, and spot stale entries.

    An entry is *stale* only when the file it points at was actually
    checked this run (or ``checked_paths`` is ``None``, meaning the
    full configured tree ran) yet nothing matched — linting one file
    must not declare the rest of the baseline dead.
    """
    entry_keys = {entry.key() for entry in baseline.entries}
    new: list[Finding] = []
    accepted: list[Finding] = []
    matched: set[tuple[str, str, str]] = set()
    for finding in findings:
        key = finding.key()
        if key in entry_keys:
            accepted.append(finding)
            matched.add(key)
        else:
            new.append(finding)
    checked = None if checked_paths is None else set(checked_paths)
    stale = tuple(
        entry for entry in baseline.entries
        if entry.key() not in matched
        and (checked is None or entry.path in checked))
    return BaselineMatch(new=tuple(new), accepted=tuple(accepted),
                         stale=stale)
