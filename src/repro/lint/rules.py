"""The determinism-contract rules (REP001..REP006) and the rule base.

Each rule is a small visitor the shared walk in
:mod:`repro.lint.engine` dispatches matching nodes to.  The thread-
safety family (REP101..REP106) lives in
:mod:`repro.lint.concurrency` and is aggregated into :data:`RULES`
here, so both families run in the one traversal.  The determinism
rules encode the invariants every digest in this repository rests on:

REP001  ambient randomness — all stochastic draws must come from a
        named :class:`~repro.sim.rng.RngRegistry` stream (or a
        Generator parameter); ``random.*``, the legacy global
        ``np.random.<fn>`` state, and *unseeded* bit-generator
        factories all smuggle process-global or OS entropy in.
REP002  wall-clock/entropy reads inside evaluation code — a result
        that depends on ``time.time()``/``uuid4()``/``os.urandom``
        can never be content-addressed.
REP003  unordered ``set``/``dict`` iteration on the stream or
        serialization path — draw order and canonical JSON both
        depend on iteration order, so it must be ``sorted(...)`` (or
        explicitly accepted into the baseline when insertion order is
        the documented contract).
REP004  NumPy SIMD transcendental hazard — float64 array forms of
        ``np.sin``/``np.arcsin``/``np.log10``/... may be dispatched
        to vendor SIMD kernels that differ from libm by one ulp;
        inside bit-identity-critical modules they must route through
        the per-element libm helpers (``repro.geo.coords``).
REP005  frozen-spec mutation — ``object.__setattr__`` outside
        ``__post_init__`` breaks the "specs are immutable values"
        contract content hashing relies on.
REP006  heavy/unpicklable Executor payloads — only plain-data records
        may cross ``Executor.submit``/``map``; lambdas, nested
        functions, and live model objects must stay in-process.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from .config import LintConfig, path_selected
from .engine import ModuleContext

__all__ = ["CONCURRENCY_RULES", "DETERMINISM_RULES", "RULES", "Rule",
           "active_rules", "rule_by_code", "rule_catalog"]


class Rule:
    """Base class: a code, a one-line contract, and a node visitor.

    The class docstring of each concrete rule is user-facing: it is
    what ``python -m repro lint --explain REPxxx`` prints, so it
    states the contract *and* the fix guidance.
    """

    code: ClassVar[str] = "REP000"
    title: ClassVar[str] = "internal"
    #: which family the rule belongs to (CI gates them independently)
    category: ClassVar[str] = "determinism"
    #: node types the shared walk dispatches to this rule
    interests: ClassVar[tuple[type, ...]] = ()

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    @classmethod
    def applies_to(cls, config: LintConfig, rel_path: str) -> bool:
        """Whether this rule is active for the given module."""
        return config.rule_enabled(cls.code)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        raise NotImplementedError  # pragma: no cover


def _is_sorted_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted")


#: numpy.random attributes that are *factories taking a seed*: calling
#: them without arguments pulls OS entropy instead.
_SEEDABLE_FACTORIES = frozenset({
    "default_rng", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    "SeedSequence", "RandomState",
})

#: numpy.random attributes that are legitimate *types/modules* to name
#: (constructing a Generator around a seeded bit generator is the
#: blessed pattern), as opposed to legacy global-state draw functions.
_RANDOM_NAMESPACE_OK = frozenset({"Generator", "BitGenerator"})


class Rep001AmbientRandomness(Rule):
    """All stochastic draws must come from named, seeded streams.

    ``random.*``, legacy ``np.random.<fn>`` global-state draws, and
    unseeded bit-generator factories smuggle process-global or OS
    entropy into results.  Fix: draw from a named
    :class:`repro.sim.rng.RngRegistry` stream or accept a Generator
    parameter; seed factories explicitly (``stable_seed``).
    """

    code = "REP001"
    title = "ambient randomness outside RngRegistry streams"
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved == "random" or resolved.startswith("random."):
            ctx.report(self.code, node,
                       f"stdlib '{resolved}' draws from process-global "
                       f"state; use a named RngRegistry stream or a "
                       f"Generator parameter")
            return
        if not resolved.startswith("numpy.random."):
            return
        tail = resolved[len("numpy.random."):]
        if "." in tail or tail in _RANDOM_NAMESPACE_OK:
            return
        if tail in _SEEDABLE_FACTORIES:
            if not node.args and not node.keywords:
                ctx.report(self.code, node,
                           f"unseeded 'np.random.{tail}()' pulls OS "
                           f"entropy; pass an explicit seed (e.g. via "
                           f"sim.rng.stable_seed)")
            return
        ctx.report(self.code, node,
                   f"module-level 'np.random.{tail}' uses the legacy "
                   f"global RandomState; draw from a named RngRegistry "
                   f"stream instead")


#: calls whose result observes the host rather than the inputs.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "uuid.uuid1", "uuid.uuid4",
    "os.urandom", "os.getrandom",
})


class Rep002WallClock(Rule):
    """Evaluation output must not observe the host.

    ``time.time()``, ``uuid4()``, ``os.urandom`` and friends make a
    result impossible to content-address.  Fix: thread timestamps in
    as explicit inputs, or move the read into an exempt module
    (CLI/fleet metadata, configured via rep002-exempt).
    """

    code = "REP002"
    title = "wall-clock/entropy reads inside evaluation code"
    interests = (ast.Call,)

    @classmethod
    def applies_to(cls, config: LintConfig, rel_path: str) -> bool:
        if not config.rule_enabled(cls.code):
            return False
        return not path_selected(rel_path, config.rep002_exempt)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved in _WALL_CLOCK_CALLS or \
                resolved.startswith("secrets."):
            ctx.report(self.code, node,
                       f"'{resolved}' reads wall-clock/OS entropy; "
                       f"evaluation output must be a pure function of "
                       f"(spec, seed, density)")


class Rep003UnorderedIteration(Rule):
    """Iteration feeding draws or serialization must be ordered.

    Draw order and canonical JSON both depend on iteration order;
    ``set`` iteration and raw ``.items()``/``.keys()``/``.values()``
    on the stream path must go through ``sorted(...)`` — or be
    accepted into the baseline when insertion order is the documented
    contract.
    """

    code = "REP003"
    title = "unordered set/dict iteration on the stream path"
    interests = (ast.For, ast.ListComp, ast.SetComp, ast.DictComp,
                 ast.GeneratorExp)

    @classmethod
    def applies_to(cls, config: LintConfig, rel_path: str) -> bool:
        if not config.rule_enabled(cls.code):
            return False
        return path_selected(rel_path, config.rep003_paths)

    def _check_iterable(self, iterable: ast.expr,
                        ctx: ModuleContext) -> None:
        if _is_sorted_call(iterable):
            return
        if isinstance(iterable, ast.Call) and \
                isinstance(iterable.func, ast.Attribute) and \
                iterable.func.attr in ("items", "keys", "values"):
            ctx.report(
                self.code, iterable,
                f"iterating '.{iterable.func.attr}()' on the "
                f"stream/serialization path relies on dict order; wrap "
                f"in sorted(...) or accept into the baseline if "
                f"insertion order is the contract")
            return
        is_set_literal = isinstance(iterable, (ast.Set, ast.SetComp))
        is_set_call = (isinstance(iterable, ast.Call)
                       and isinstance(iterable.func, ast.Name)
                       and iterable.func.id in ("set", "frozenset"))
        if is_set_literal or is_set_call:
            ctx.report(
                self.code, iterable,
                "iterating a set has no defined order; wrap in "
                "sorted(...) before it can feed draws or serialization")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.For):
            self._check_iterable(node.iter, ctx)
        else:
            assert isinstance(node, (ast.ListComp, ast.SetComp,
                                     ast.DictComp, ast.GeneratorExp))
            for generator in node.generators:
                self._check_iterable(generator.iter, ctx)


class Rep004SimdTranscendental(Rule):
    """Bit-identity modules must route transcendentals through libm.

    float64 array forms of ``np.sin``/``np.log10``/... may dispatch to
    vendor SIMD kernels one ulp off libm — enough to flip a serving
    argmax.  Fix: use the per-element helpers in
    :mod:`repro.geo.coords` inside the configured rep004-paths.
    """

    code = "REP004"
    title = "NumPy SIMD transcendental in a bit-identity module"
    interests = (ast.Call, ast.BinOp)

    @classmethod
    def applies_to(cls, config: LintConfig, rel_path: str) -> bool:
        if not config.rule_enabled(cls.code):
            return False
        return path_selected(rel_path, config.rep004_paths)

    def _is_numpy_transcendental(self, node: ast.expr,
                                 ctx: ModuleContext) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        resolved = ctx.resolve(node.func)
        if resolved is None or not resolved.startswith("numpy."):
            return None
        tail = resolved[len("numpy."):]
        if tail in self.config.rep004_functions:
            return tail
        return None

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.Call):
            name = self._is_numpy_transcendental(node, ctx)
            if name is not None:
                ctx.report(
                    self.code, node,
                    f"array-form 'np.{name}' may take a SIMD path one "
                    f"ulp off libm and flip a serving argmax; route "
                    f"through the per-element libm helpers "
                    f"(repro.geo.coords) in bit-identity modules")
            return
        assert isinstance(node, ast.BinOp)
        if not isinstance(node.op, ast.Pow):
            return
        if not (isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)):
            return
        if self._is_numpy_transcendental(node.left, ctx) is not None:
            ctx.report(
                self.code, node,
                "'np.<fn>(...) ** n' squares an array through NumPy's "
                "power loop, which need not match CPython float pow "
                "bit-for-bit; use the libm helpers")


class Rep005FrozenMutation(Rule):
    """Frozen specs are immutable values once constructed.

    ``object.__setattr__`` outside ``__post_init__`` mutates hashed
    content after the fact.  Fix: rebuild via
    ``dataclasses.replace`` / ``with_overrides``.
    """

    code = "REP005"
    title = "frozen-spec mutation outside __post_init__"
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"):
            return
        where = ctx.current_function
        if where in self.config.rep005_allowed_methods:
            return
        place = f"in {where}()" if where else "at module level"
        ctx.report(
            self.code, node,
            f"object.__setattr__ {place} mutates a frozen spec after "
            f"construction; frozen specs are hashed content — rebuild "
            f"via dataclasses.replace / with_overrides instead")


class Rep006ExecutorPayload(Rule):
    """Only plain data may cross the Executor boundary.

    Lambdas, nested functions, and live model objects do not pickle
    into workers (or cost far too much when they do).  Fix: submit
    top-level functions taking plain data; return records, not
    models.
    """

    code = "REP006"
    title = "heavy/unpicklable payload across the Executor boundary"
    interests = (ast.Call, ast.Return)

    def _check_submission(self, node: ast.Call,
                          ctx: ModuleContext) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("submit", "map")):
            return
        if not node.args:
            return
        payload = node.args[0]
        if isinstance(payload, ast.Lambda):
            ctx.report(
                self.code, node,
                f"lambda passed to .{func.attr}() cannot pickle into a "
                f"worker; submit a top-level function taking plain "
                f"data")
        elif isinstance(payload, ast.Name) and \
                ctx.in_locally_defined(payload.id):
            ctx.report(
                self.code, node,
                f"nested function '{payload.id}' passed to "
                f".{func.attr}() cannot pickle into a worker; hoist it "
                f"to module level")

    def _check_return(self, node: ast.Return,
                      ctx: ModuleContext) -> None:
        if ctx.current_function not in \
                self.config.rep006_payload_functions:
            return
        if not path_selected(ctx.rel_path, self.config.rep006_paths):
            return
        value = node.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name in self.config.rep006_heavy_types:
            ctx.report(
                self.code, node,
                f"payload function '{ctx.current_function}' returns "
                f"'{name}', which is too heavy/unpicklable to cross "
                f"Executor.submit/map; return plain data (e.g. "
                f"EvaluationSummary / RunRecord)")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.Call):
            self._check_submission(node, ctx)
        else:
            assert isinstance(node, ast.Return)
            self._check_return(node, ctx)


#: the determinism family, in code order.
DETERMINISM_RULES: tuple[type[Rule], ...] = (
    Rep001AmbientRandomness,
    Rep002WallClock,
    Rep003UnorderedIteration,
    Rep004SimdTranscendental,
    Rep005FrozenMutation,
    Rep006ExecutorPayload,
)

# The concurrency family subclasses Rule, so its module imports this
# one; aggregating it here (after Rule exists) keeps a single RULES
# registry without a cycle.
from .concurrency import CONCURRENCY_RULES  # noqa: E402

#: every shipped rule, in code order.
RULES: tuple[type[Rule], ...] = DETERMINISM_RULES + CONCURRENCY_RULES


def active_rules(config: LintConfig, rel_path: str) -> list[Rule]:
    """Instantiate the rules that apply to one module."""
    return [cls(config) for cls in RULES
            if cls.applies_to(config, rel_path)]


def rule_catalog() -> list[tuple[str, str, str]]:
    """``(code, category, title)`` for every shipped rule — the CLI's
    ``--list-rules`` output and the README's source of truth."""
    return [(cls.code, cls.category, cls.title) for cls in RULES]


def rule_by_code(code: str) -> type[Rule] | None:
    """The rule class for ``code`` (``--explain`` lookup)."""
    for cls in RULES:
        if cls.code == code:
            return cls
    return None
