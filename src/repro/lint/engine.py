"""The shared AST walk every REP rule plugs into.

One parse, one traversal per module: the engine resolves import
aliases (so a rule can ask "does this call bottom out in
``numpy.random.default_rng``?" regardless of ``import numpy as np`` vs
``from numpy.random import default_rng``), tracks the enclosing
function stack and locally-defined function names, and dispatches every
node to each active rule.  Rules stay tiny predicate objects; all
context bookkeeping lives here.

Public entry points: :func:`check_source` for one module's text,
:func:`check_paths` for trees of files (deterministic, sorted order).
"""

from __future__ import annotations

import ast
import os.path
from pathlib import Path, PurePath
from typing import TYPE_CHECKING, Iterable, Iterator

from .config import LintConfig
from .findings import Finding, fingerprint_findings

if TYPE_CHECKING:  # pragma: no cover
    from .rules import Rule

__all__ = ["ModuleContext", "check_paths", "check_source", "iter_files"]


class ModuleContext:
    """Everything a rule may ask about the module being walked."""

    def __init__(self, rel_path: str, source: str,
                 config: LintConfig) -> None:
        self.rel_path = rel_path
        self.config = config
        self.lines = source.splitlines()
        #: local name -> dotted origin ("np" -> "numpy",
        #: "default_rng" -> "numpy.random.default_rng")
        self.imports: dict[str, str] = {}
        #: enclosing function names, innermost last
        self.function_stack: list[str] = []
        #: per enclosing function: names of functions defined *inside*
        #: it (those never pickle across an Executor boundary)
        self.local_function_names: list[set[str]] = []
        self.findings: list[Finding] = []

    # -- queries ----------------------------------------------------------

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a name/attribute chain, or ``None``.

        ``np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"`` under ``import numpy as np``;
        unknown roots stay unresolved rather than guessed.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    @property
    def current_function(self) -> str | None:
        """Name of the innermost enclosing function, if any."""
        return self.function_stack[-1] if self.function_stack else None

    def in_locally_defined(self, name: str) -> bool:
        """Whether ``name`` is a function defined inside an enclosing
        function (hence unpicklable by reference)."""
        return any(name in local for local in self.local_function_names)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- reporting --------------------------------------------------------

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(
            rule=rule, path=self.rel_path, line=lineno, col=col,
            message=message, code_line=self.source_line(lineno)))


def _record_import(ctx: ModuleContext, node: ast.AST) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            origin = alias.name if alias.asname else \
                alias.name.partition(".")[0]
            ctx.imports[local] = origin
    elif isinstance(node, ast.ImportFrom):
        if node.level or node.module is None:
            return  # relative imports never reach numpy/stdlib roots
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            ctx.imports[local] = f"{node.module}.{alias.name}"


class _Walker:
    """Single recursive traversal dispatching to every rule."""

    def __init__(self, ctx: ModuleContext, rules: list["Rule"]) -> None:
        self.ctx = ctx
        self.rules = rules

    def walk(self, tree: ast.Module) -> None:
        # Imports are collected up front so a use that precedes a
        # function-local import in source order still resolves.
        for node in ast.walk(tree):
            _record_import(self.ctx, node)
        for child in tree.body:
            self._visit(child)

    def _visit(self, node: ast.AST) -> None:
        for rule in self.rules:
            if isinstance(node, rule.interests):
                rule.visit(node, self.ctx)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_function(node)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_function(
            self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        ctx = self.ctx
        ctx.function_stack.append(node.name)
        ctx.local_function_names.append({
            child.name for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not node})
        try:
            for child in ast.iter_child_nodes(node):
                self._visit(child)
        finally:
            ctx.function_stack.pop()
            ctx.local_function_names.pop()


def check_source(source: str, *, path: str = "<string>",
                 config: LintConfig | None = None) -> list[Finding]:
    """Lint one module's source text; returns fingerprinted findings.

    ``path`` should be the repo-relative posix path — it drives the
    per-path rule scoping and baseline identity.  A syntax error is
    itself reported as a ``REP000`` finding: an unparseable module on
    the determinism path is never "clean".
    """
    from .rules import active_rules

    cfg = config if config is not None else LintConfig()
    ctx = ModuleContext(path, source, cfg)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        node = ast.Module(body=[], type_ignores=[])
        node.lineno = exc.lineno or 1  # type: ignore[attr-defined]
        node.col_offset = (exc.offset or 1) - 1  # type: ignore[attr-defined]
        ctx.report("REP000", node, f"module does not parse: {exc.msg}")
        return fingerprint_findings(ctx.findings)
    _Walker(ctx, active_rules(cfg, path)).walk(tree)
    return fingerprint_findings(ctx.findings)


def iter_files(paths: Iterable[str | Path],
               root: str | Path = ".") -> Iterator[Path]:
    """Python files under ``paths``, deterministically sorted.

    Directory entries expand recursively; missing paths raise — a
    silently-skipped tree would report itself clean.
    """
    base = Path(root)
    seen: set[Path] = set()
    for raw in paths:
        target = Path(raw)
        if not target.is_absolute():
            target = base / target
        if target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        elif target.is_file():
            candidates = [target]
        else:
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def check_paths(paths: Iterable[str | Path] | None = None, *,
                root: str | Path = ".",
                config: LintConfig | None = None) -> list[Finding]:
    """Lint files/directories against ``config``.

    ``paths`` defaults to the configured check paths.  Returned
    findings are sorted (path, line, col) with stable fingerprints,
    ready for baseline matching.
    """
    cfg = config if config is not None else LintConfig()
    chosen = tuple(paths) if paths else cfg.paths
    findings: list[Finding] = []
    base = Path(root)
    for file_path in iter_files(chosen, root=base):
        rel_posix = PurePath(
            os.path.relpath(file_path, base)).as_posix()
        source = file_path.read_text(encoding="utf-8")
        findings.extend(check_source(source, path=rel_posix,
                                     config=cfg))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                           f.rule))
