"""The shared AST walk every REP rule plugs into.

One parse, one traversal per module: the engine resolves import
aliases (so a rule can ask "does this call bottom out in
``numpy.random.default_rng``?" regardless of ``import numpy as np`` vs
``from numpy.random import default_rng``), tracks the enclosing
function stack and locally-defined function names, and dispatches every
node to each active rule.  Rules stay tiny predicate objects; all
context bookkeeping lives here.

The same traversal also carries the *concurrency* context the REP1xx
family needs: on entering a :class:`ast.ClassDef` the engine prescans
the class body once into a :class:`ClassInfo` (``guarded_by``
declarations, lock-typed attributes, constructor types of shared
attributes), and it tracks which declared locks are statically held at
every node — ``with self.<lock>:`` blocks push onto
:attr:`ModuleContext.held_locks`, and a ``# lint: holds(<lock>)``
comment on a helper's ``def`` line seeds the stack for its body (the
checkable form of a "caller holds the lock" docstring).

Public entry points: :func:`check_source` for one module's text,
:func:`check_paths` for trees of files (deterministic, sorted order).
"""

from __future__ import annotations

import ast
import os.path
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import TYPE_CHECKING, Iterable, Iterator

from .config import LintConfig
from .findings import Finding, fingerprint_findings

if TYPE_CHECKING:  # pragma: no cover
    from .rules import Rule

__all__ = ["ClassInfo", "ModuleContext", "check_paths", "check_source",
           "iter_files"]

#: constructors whose instances count as declared locks.  Matched on
#: the call's terminal name so both ``threading.RLock()`` and the
#: bare ``WatchedLock(...)`` of a relative import are recognized.
LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "WatchedLock", "WatchedCondition",
})

#: the ``# lint: holds(_cond)`` escape on a helper's signature.
_HOLDS_RE = re.compile(r"#\s*lint:\s*holds\(([^)]*)\)")


def _call_name(func: ast.expr) -> str | None:
    """Terminal name of a call target (``threading.RLock`` -> RLock)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


@dataclass
class ClassInfo:
    """One prescanned class body, as the REP1xx rules see it."""

    name: str
    #: guarded attribute -> lock attribute (``guarded_by`` declarations)
    guarded: dict[str, str] = field(default_factory=dict)
    #: attributes bound to a lock/condition anywhere in the class
    locks: set[str] = field(default_factory=set)
    #: ``self.<attr>`` -> constructor names observed in assignments
    attr_types: dict[str, set[str]] = field(default_factory=dict)


class ModuleContext:
    """Everything a rule may ask about the module being walked."""

    def __init__(self, rel_path: str, source: str,
                 config: LintConfig) -> None:
        self.rel_path = rel_path
        self.config = config
        self.lines = source.splitlines()
        #: local name -> dotted origin ("np" -> "numpy",
        #: "default_rng" -> "numpy.random.default_rng")
        self.imports: dict[str, str] = {}
        #: enclosing function names, innermost last
        self.function_stack: list[str] = []
        #: per enclosing function: names of functions defined *inside*
        #: it (those never pickle across an Executor boundary)
        self.local_function_names: list[set[str]] = []
        #: enclosing classes, innermost last (prescanned summaries)
        self.class_stack: list[ClassInfo] = []
        #: lock attributes statically held at the current node —
        #: ``with self.<lock>:`` entries plus ``holds()`` escapes
        self.held_locks: list[str] = []
        self.findings: list[Finding] = []

    # -- queries ----------------------------------------------------------

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a name/attribute chain, or ``None``.

        ``np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"`` under ``import numpy as np``;
        unknown roots stay unresolved rather than guessed.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    @property
    def current_function(self) -> str | None:
        """Name of the innermost enclosing function, if any."""
        return self.function_stack[-1] if self.function_stack else None

    def in_locally_defined(self, name: str) -> bool:
        """Whether ``name`` is a function defined inside an enclosing
        function (hence unpicklable by reference)."""
        return any(name in local for local in self.local_function_names)

    @property
    def current_class(self) -> ClassInfo | None:
        """Prescan of the innermost enclosing class, if any."""
        return self.class_stack[-1] if self.class_stack else None

    def with_locks(self, node: ast.With | ast.AsyncWith) -> list[str]:
        """Declared locks entered by a ``with`` statement.

        Only ``with self.<attr>:`` items where ``<attr>`` is a known
        lock of the enclosing class count — a file handle in the same
        statement does not.
        """
        info = self.current_class
        if info is None:
            return []
        entered = []
        for item in node.items:
            attr = _is_self_attr(item.context_expr)
            if attr is not None and attr in info.locks:
                entered.append(attr)
        return entered

    def holds_escapes(
            self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        """Locks a ``# lint: holds(<lock>)`` signature comment asserts.

        The comment lives on the ``def`` line (or the closing line of a
        multi-line signature) and is the checkable replacement for a
        "caller holds the lock" docstring: REP101/REP102/REP105 treat
        the named locks as held throughout the body.
        """
        start = node.lineno - 1
        end = max(node.lineno, node.body[0].lineno - 1) if node.body \
            else node.lineno
        names: list[str] = []
        for line in self.lines[start:end]:
            match = _HOLDS_RE.search(line)
            if match:
                names.extend(part.strip() for part in
                             match.group(1).split(",") if part.strip())
        return names

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- reporting --------------------------------------------------------

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(
            rule=rule, path=self.rel_path, line=lineno, col=col,
            message=message, code_line=self.source_line(lineno)))


def _record_import(ctx: ModuleContext, node: ast.AST) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            origin = alias.name if alias.asname else \
                alias.name.partition(".")[0]
            ctx.imports[local] = origin
    elif isinstance(node, ast.ImportFrom):
        if node.level or node.module is None:
            return  # relative imports never reach numpy/stdlib roots
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            ctx.imports[local] = f"{node.module}.{alias.name}"


def _scan_class(node: ast.ClassDef) -> ClassInfo:
    """One-pass summary of a class body for the concurrency rules.

    Collects ``guarded_by`` declarations and lock-typed class
    attributes from the body's top level, then sweeps the methods for
    ``self.<attr> = ...`` assignments to learn which attributes hold
    locks and what constructors shared attributes are built from.
    This inspects the subtree the walk is about to visit anyway — it
    is not a second parse.
    """
    info = ClassInfo(node.name)
    for stmt in node.body:
        target: str | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            target, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            target, value = stmt.target.id, stmt.value
        if target is None or not isinstance(value, ast.Call):
            continue
        name = _call_name(value.func)
        if name == "guarded_by" and value.args \
                and isinstance(value.args[0], ast.Constant) \
                and isinstance(value.args[0].value, str):
            info.guarded[target] = value.args[0].value
        elif name in LOCK_CONSTRUCTORS:
            info.locks.add(target)
    for method in node.body:
        if not isinstance(method,
                          (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(method):
            if isinstance(sub, ast.Assign):
                targets: list[ast.expr] = list(sub.targets)
                assigned = sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, assigned = [sub.target], sub.value
            else:
                continue
            for tgt in targets:
                attr = _is_self_attr(tgt)
                if attr is None:
                    continue
                for call in ast.walk(assigned):
                    if not isinstance(call, ast.Call):
                        continue
                    name = _call_name(call.func)
                    if name is None:
                        continue
                    info.attr_types.setdefault(attr, set()).add(name)
                    if name in LOCK_CONSTRUCTORS:
                        info.locks.add(attr)
    info.locks.update(info.guarded.values())
    return info


class _Walker:
    """Single recursive traversal dispatching to every rule."""

    def __init__(self, ctx: ModuleContext, rules: list["Rule"]) -> None:
        self.ctx = ctx
        self.rules = rules

    def walk(self, tree: ast.Module) -> None:
        # Imports are collected up front so a use that precedes a
        # function-local import in source order still resolves.
        for node in ast.walk(tree):
            _record_import(self.ctx, node)
        for child in tree.body:
            self._visit(child)

    def _visit(self, node: ast.AST) -> None:
        # Structural handlers push context *after* rule dispatch, so a
        # rule looking at e.g. a `with self._lock:` statement sees the
        # held-lock state from *outside* it (what REP105 needs).
        if isinstance(node, ast.ClassDef):
            self.ctx.class_stack.append(_scan_class(node))
        for rule in self.rules:
            if isinstance(node, rule.interests):
                rule.visit(node, self.ctx)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_function(node)
            return
        if isinstance(node, ast.ClassDef):
            try:
                for child in ast.iter_child_nodes(node):
                    self._visit(child)
            finally:
                self.ctx.class_stack.pop()
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        ctx = self.ctx
        entered = ctx.with_locks(node)
        ctx.held_locks.extend(entered)
        try:
            for child in ast.iter_child_nodes(node):
                self._visit(child)
        finally:
            if entered:
                del ctx.held_locks[-len(entered):]

    def _visit_function(
            self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        ctx = self.ctx
        ctx.function_stack.append(node.name)
        ctx.local_function_names.append({
            child.name for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not node})
        # A nested def's body does not run under the enclosing `with`;
        # it starts from whatever its holds() escape asserts.
        saved_held = ctx.held_locks
        ctx.held_locks = ctx.holds_escapes(node)
        try:
            for child in ast.iter_child_nodes(node):
                self._visit(child)
        finally:
            ctx.held_locks = saved_held
            ctx.function_stack.pop()
            ctx.local_function_names.pop()


def check_source(source: str, *, path: str = "<string>",
                 config: LintConfig | None = None) -> list[Finding]:
    """Lint one module's source text; returns fingerprinted findings.

    ``path`` should be the repo-relative posix path — it drives the
    per-path rule scoping and baseline identity.  A syntax error is
    itself reported as a ``REP000`` finding: an unparseable module on
    the determinism path is never "clean".
    """
    from .rules import active_rules

    cfg = config if config is not None else LintConfig()
    ctx = ModuleContext(path, source, cfg)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        node = ast.Module(body=[], type_ignores=[])
        node.lineno = exc.lineno or 1  # type: ignore[attr-defined]
        node.col_offset = (exc.offset or 1) - 1  # type: ignore[attr-defined]
        ctx.report("REP000", node, f"module does not parse: {exc.msg}")
        return fingerprint_findings(ctx.findings)
    _Walker(ctx, active_rules(cfg, path)).walk(tree)
    return fingerprint_findings(ctx.findings)


def iter_files(paths: Iterable[str | Path],
               root: str | Path = ".") -> Iterator[Path]:
    """Python files under ``paths``, deterministically sorted.

    Directory entries expand recursively; missing paths raise — a
    silently-skipped tree would report itself clean.
    """
    base = Path(root)
    seen: set[Path] = set()
    for raw in paths:
        target = Path(raw)
        if not target.is_absolute():
            target = base / target
        if target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        elif target.is_file():
            candidates = [target]
        else:
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def check_paths(paths: Iterable[str | Path] | None = None, *,
                root: str | Path = ".",
                config: LintConfig | None = None) -> list[Finding]:
    """Lint files/directories against ``config``.

    ``paths`` defaults to the configured check paths.  Returned
    findings are sorted (path, line, col) with stable fingerprints,
    ready for baseline matching.
    """
    cfg = config if config is not None else LintConfig()
    chosen = tuple(paths) if paths else cfg.paths
    findings: list[Finding] = []
    base = Path(root)
    for file_path in iter_files(chosen, root=base):
        rel_posix = PurePath(
            os.path.relpath(file_path, base)).as_posix()
        source = file_path.read_text(encoding="utf-8")
        findings.extend(check_source(source, path=rel_posix,
                                     config=cfg))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                           f.rule))
