"""Lint findings: the value a rule emits and its stable fingerprint.

A :class:`Finding` pinpoints one determinism-contract violation.  Its
``fingerprint`` deliberately hashes the *source text* of the offending
line (plus an occurrence index for duplicated lines), not the line
number — so a committed baseline keeps matching accepted findings while
unrelated edits shift the file around them, and goes stale exactly when
the flagged code itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding", "fingerprint_findings", "rule_category"]


def rule_category(code: str) -> str:
    """The rule family a code belongs to.

    REP1xx codes are the thread-safety family; everything else
    (REP000..REP0xx) is the original determinism family.
    """
    return "concurrency" if code.startswith("REP1") else "determinism"


@dataclass(frozen=True)
class Finding:
    """One contract violation at a source location."""

    rule: str            #: rule code, e.g. ``"REP004"``
    path: str            #: repo-relative posix path of the module
    line: int            #: 1-based source line
    col: int             #: 0-based column offset
    message: str         #: human-readable explanation
    code_line: str = ""  #: stripped source text of ``line``
    #: stable identity for baseline matching; assigned by
    #: :func:`fingerprint_findings` after a file's findings are complete
    fingerprint: str = field(default="", compare=False)

    def key(self) -> tuple[str, str, str]:
        """The identity the baseline matches on."""
        return (self.rule, self.path, self.fingerprint)

    @property
    def category(self) -> str:
        """``"determinism"`` or ``"concurrency"``, from the rule code."""
        return rule_category(self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "category": self.category,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "code_line": self.code_line,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """The one-line text-report form."""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} {self.message}")


def _digest(rule: str, path: str, code_line: str, occurrence: int) -> str:
    payload = "\x1f".join((rule, path, code_line, str(occurrence)))
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=8).hexdigest()


def fingerprint_findings(findings: list[Finding]) -> list[Finding]:
    """Return ``findings`` with stable fingerprints assigned.

    Findings sharing ``(rule, path, code text)`` — e.g. two identical
    offending lines in one file — are disambiguated by their occurrence
    index in ``(line, col)`` order, so each keeps a distinct, stable
    identity.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                              f.rule))
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for finding in ordered:
        bucket = (finding.rule, finding.path, finding.code_line)
        occurrence = seen.get(bucket, 0)
        seen[bucket] = occurrence + 1
        out.append(Finding(
            rule=finding.rule,
            path=finding.path,
            line=finding.line,
            col=finding.col,
            message=finding.message,
            code_line=finding.code_line,
            fingerprint=_digest(finding.rule, finding.path,
                                finding.code_line, occurrence),
        ))
    return out
