"""Static enforcement of the repository's determinism contracts —
and, since the fleet service made the codebase concurrent, its
thread-safety contracts.

Everything this reproduction claims rests on bit-reproducibility:
named RNG streams spawned from one root seed, libm-routed
transcendentals in the vectorized kernel, frozen serializable specs,
and plain-data payloads across the ``Executor`` boundary.  The golden
digests catch violations *after the fact*; this package catches them at
review time, as ``python -m repro lint`` and a CI gate.  Two rule
families share one AST walk: determinism (REP001..REP006,
:mod:`repro.lint.rules`) and concurrency (REP101..REP106,
:mod:`repro.lint.concurrency`, driven by :mod:`repro.sim.sync`
annotations).

Public API:

* :func:`check_source` / :func:`check_paths` — lint text or trees,
* :class:`Finding` — one violation with a baseline-stable fingerprint,
* :class:`LintConfig` / :func:`load_config` — policy from
  ``[tool.repro-lint]`` in ``pyproject.toml``,
* :class:`Baseline` / :func:`apply_baseline` — accepted findings,
* :data:`RULES` / :func:`rule_catalog` — the shipped REP rules,
* :func:`run_lint` — the CLI entry point.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineMatch, apply_baseline
from .cli import run_lint
from .config import LintConfig, load_config, path_selected
from .engine import check_paths, check_source, iter_files
from .findings import Finding, fingerprint_findings
from .rules import (
    CONCURRENCY_RULES,
    DETERMINISM_RULES,
    RULES,
    Rule,
    active_rules,
    rule_by_code,
    rule_catalog,
)

__all__ = [
    "Baseline",
    "BaselineMatch",
    "CONCURRENCY_RULES",
    "DETERMINISM_RULES",
    "Finding",
    "LintConfig",
    "RULES",
    "Rule",
    "rule_by_code",
    "active_rules",
    "apply_baseline",
    "check_paths",
    "check_source",
    "fingerprint_findings",
    "iter_files",
    "load_config",
    "path_selected",
    "rule_catalog",
    "run_lint",
]
