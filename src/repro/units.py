"""Physical units, constants and conversion helpers.

All simulator-internal quantities use SI base units:

* time        -> seconds (float)
* distance    -> metres (float)
* data size   -> bits (float; fractional bits never escape public APIs)
* data rate   -> bits per second
* frequency   -> hertz

The paper mixes milliseconds (RTL measurements), microseconds (6G air
interface targets), kilometres (grid cells, route detours), terabits per
second (6G capacity) and terabytes per day (vehicle data volumes).  Keeping
a single canonical unit internally and converting only at the API boundary
avoids an entire class of unit bugs; these helpers make the boundary
conversions explicit and greppable.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Time
# --------------------------------------------------------------------------

#: One second, in seconds (identity; exists for symmetry in tables).
SECOND: float = 1.0
#: One millisecond, in seconds.
MS: float = 1e-3
#: One microsecond, in seconds.
US: float = 1e-6
#: One nanosecond, in seconds.
NS: float = 1e-9
#: One minute, in seconds.
MINUTE: float = 60.0
#: One hour, in seconds.
HOUR: float = 3600.0
#: One day, in seconds.
DAY: float = 86400.0


def ms(value: float) -> float:
    """Convert a value in milliseconds to seconds."""
    return value * MS


def us(value: float) -> float:
    """Convert a value in microseconds to seconds."""
    return value * US


def to_ms(seconds: float) -> float:
    """Convert a value in seconds to milliseconds."""
    return seconds / MS


def to_us(seconds: float) -> float:
    """Convert a value in seconds to microseconds."""
    return seconds / US


# --------------------------------------------------------------------------
# Distance
# --------------------------------------------------------------------------

#: One metre (identity).
METRE: float = 1.0
#: One kilometre, in metres.
KM: float = 1e3


def km(value: float) -> float:
    """Convert a value in kilometres to metres."""
    return value * KM


def to_km(metres: float) -> float:
    """Convert a value in metres to kilometres."""
    return metres / KM


# --------------------------------------------------------------------------
# Data sizes (bits) and rates (bits/second)
# --------------------------------------------------------------------------

#: One bit (identity).
BIT: float = 1.0
#: One byte, in bits.
BYTE: float = 8.0
#: Decimal kilo/mega/giga/tera-bit.
KBIT: float = 1e3
MBIT: float = 1e6
GBIT: float = 1e9
TBIT: float = 1e12
#: Decimal kilo/mega/giga/tera-byte, in bits.
KB: float = 8e3
MB: float = 8e6
GB: float = 8e9
TB: float = 8e12

#: Data-rate aliases (bits per second).  ``RATE_*`` names exist so call
#: sites read as rates rather than sizes.
RATE_KBPS: float = 1e3
RATE_MBPS: float = 1e6
RATE_GBPS: float = 1e9
RATE_TBPS: float = 1e12


def mbps(value: float) -> float:
    """Convert a value in megabits/second to bits/second."""
    return value * RATE_MBPS


def gbps(value: float) -> float:
    """Convert a value in gigabits/second to bits/second."""
    return value * RATE_GBPS


def tbps(value: float) -> float:
    """Convert a value in terabits/second to bits/second."""
    return value * RATE_TBPS


def bytes_(value: float) -> float:
    """Convert a value in bytes to bits."""
    return value * BYTE


def to_mbps(bits_per_second: float) -> float:
    """Convert bits/second to megabits/second."""
    return bits_per_second / RATE_MBPS


def to_gb(bits: float) -> float:
    """Convert bits to decimal gigabytes."""
    return bits / GB


def to_tb(bits: float) -> float:
    """Convert bits to decimal terabytes."""
    return bits / TB


# --------------------------------------------------------------------------
# Propagation constants
# --------------------------------------------------------------------------

#: Speed of light in vacuum, m/s.
SPEED_OF_LIGHT: float = 299_792_458.0

#: Effective propagation speed in optical fibre, m/s.  The effective group
#: index of deployed silica fibre is ~1.47-1.5; we use 1.5 (2/3 c), which
#: reproduces the widely used rule of thumb of ~5 microseconds per
#: kilometre (1 km / 2.0e8 m/s = 5.0 us).
FIBRE_PROPAGATION_SPEED: float = SPEED_OF_LIGHT / 1.5

#: Radio propagation is line-of-sight at c.
RADIO_PROPAGATION_SPEED: float = SPEED_OF_LIGHT


def fibre_delay(distance_m: float) -> float:
    """One-way propagation delay (seconds) over ``distance_m`` of fibre."""
    return distance_m / FIBRE_PROPAGATION_SPEED


def radio_delay(distance_m: float) -> float:
    """One-way propagation delay (seconds) over an air interface."""
    return distance_m / RADIO_PROPAGATION_SPEED


def transmission_delay(size_bits: float, rate_bps: float) -> float:
    """Serialization delay (seconds) of ``size_bits`` at ``rate_bps``.

    Raises :class:`ValueError` for non-positive rates; a zero rate is a
    configuration error, not an infinitely slow link.
    """
    if rate_bps <= 0.0:
        raise ValueError(f"link rate must be positive, got {rate_bps!r}")
    if size_bits < 0.0:
        raise ValueError(f"size must be non-negative, got {size_bits!r}")
    return size_bits / rate_bps
