"""Application workloads: the AR use case, video, IoT protocols, domains."""


from __future__ import annotations

from .ar_game import (
    AR_RTT_BUDGET_S,
    ARGameSession,
    GameRoundStats,
    ar_service_chain,
)
from .base import ApplicationProfile, Service, ServiceChain
from .federated import FederatedConfig, FederatedRoundModel
from .haptics import HapticConfig, HapticLoop
from .iot import PROTOCOLS, IotProtocol, ProtocolStack, overhead_band_s
from .v2x import PlatoonConfig, PlatoonModel
from .video import FrameCycleAnalysis, VideoStreamConfig
from .workloads import (
    FactoryLine,
    SmartCityDeployment,
    all_profiles,
    ar_gaming,
    autonomous_vehicle,
    massive_iot,
    remote_surgery,
    smart_city_traffic,
    smart_factory,
)

__all__ = [
    "AR_RTT_BUDGET_S", "ARGameSession", "GameRoundStats", "ar_service_chain",
    "ApplicationProfile", "Service", "ServiceChain",
    "FederatedConfig", "FederatedRoundModel",
    "HapticConfig", "HapticLoop",
    "PROTOCOLS", "IotProtocol", "ProtocolStack", "overhead_band_s",
    "FrameCycleAnalysis", "VideoStreamConfig",
    "PlatoonConfig", "PlatoonModel",
    "FactoryLine", "SmartCityDeployment", "all_profiles", "ar_gaming",
    "autonomous_vehicle", "massive_iot", "remote_surgery",
    "smart_city_traffic", "smart_factory",
]
