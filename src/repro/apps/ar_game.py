"""The AR dodgeball use case (Section IV-A).

Two teams throw virtual balls at each other through AR headsets.  Three
interacting services:

* **Video Streaming Service** — pairs players' views so each sees the
  opponent's virtual ball in their augmented scene;
* **Remote Controller Service** — turns a controller action (aim +
  trigger) into a throw event;
* **Trajectory Service** — applies the event to the video stream and
  renders the ball's flight.

A player is *unfairly hit* when the ball's rendered position lags their
physical position by more than the round-trip budget (20 ms, [15]):
they dodged in the real world but the stale overlay still hit them.
The :class:`ARGameSession` quantifies exactly that from an RTT series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from .base import Service, ServiceChain
from .video import FrameCycleAnalysis, VideoStreamConfig

__all__ = ["AR_RTT_BUDGET_S", "ar_service_chain", "ARGameSession",
           "GameRoundStats"]

#: Maximum acceptable round-trip latency of the use case ([15]).
AR_RTT_BUDGET_S: float = units.ms(20.0)


def ar_service_chain() -> ServiceChain:
    """The three-service pipeline of one throw event."""
    return ServiceChain("ar-dodgeball", [
        Service("remote-controller", processing_s=1e-3,
                request_bits=2_000.0, response_bits=1_000.0),
        Service("trajectory", processing_s=3e-3,
                request_bits=4_000.0, response_bits=16_000.0),
        Service("video-streaming", processing_s=4e-3,
                request_bits=16_000.0, response_bits=200_000.0),
    ])


@dataclass(frozen=True, slots=True)
class GameRoundStats:
    """Outcome quality of one simulated round."""

    throws: int
    late_events: int            #: throws whose pipeline missed the budget
    unfair_hits: int            #: late events that also landed as hits
    late_fraction: float
    video_late_fraction: float  #: frame-cycle misses during the round


class ARGameSession:
    """Evaluates gameplay fairness over a network RTT distribution."""

    def __init__(self, *, budget_s: float = AR_RTT_BUDGET_S,
                 video: VideoStreamConfig | None = None,
                 hit_probability: float = 0.35):
        if budget_s <= 0:
            raise ValueError("budget must be positive")
        if not 0.0 <= hit_probability <= 1.0:
            raise ValueError("hit probability must be in [0, 1]")
        self.budget_s = budget_s
        self.chain = ar_service_chain()
        self.video = video if video is not None else VideoStreamConfig()
        self.hit_probability = hit_probability
        self._frames = FrameCycleAnalysis(self.video, budget_s=budget_s)

    def event_latency_s(self, controller_rtt_s: float,
                        trajectory_rtt_s: float,
                        video_rtt_s: float) -> float:
        """One throw's end-to-end latency through the three services."""
        return self.chain.end_to_end_s(
            [controller_rtt_s, trajectory_rtt_s, video_rtt_s])

    def play_round(self, rtt_samples_s: np.ndarray,
                   rng: np.random.Generator, *,
                   throws: int = 100) -> GameRoundStats:
        """Simulate ``throws`` events drawing per-service RTTs from the
        measured distribution (with replacement)."""
        rtts = np.asarray(rtt_samples_s, dtype=np.float64)
        if rtts.size == 0:
            raise ValueError("no RTT samples supplied")
        if throws < 1:
            raise ValueError("need at least one throw")
        draws = rng.choice(rtts, size=(throws, 3), replace=True)
        latencies = np.array([
            self.event_latency_s(*draws[i]) for i in range(throws)])
        late = latencies > self.budget_s
        hits = rng.random(throws) < self.hit_probability
        unfair = late & hits
        video_late = self._frames.late_fraction(rtts)
        return GameRoundStats(
            throws=throws,
            late_events=int(late.sum()),
            unfair_hits=int(unfair.sum()),
            late_fraction=float(late.mean()),
            video_late_fraction=video_late,
        )

    def play_round_stages(self, stage_samples: list[np.ndarray],
                          rng: np.random.Generator, *,
                          throws: int = 100) -> GameRoundStats:
        """Like :meth:`play_round`, but with one RTT distribution per
        pipeline stage.

        Deployment-aware accounting: with the services co-located at an
        edge site, only the controller stage crosses the access network
        and the trajectory/video hand-offs are intra-site — pass the
        access-RTT distribution for stage 1 and near-zero distributions
        for stages 2-3.  The fully distributed variant (every stage
        remote) is :meth:`play_round`.
        """
        if len(stage_samples) != len(self.chain.services):
            raise ValueError(
                f"need {len(self.chain.services)} stage distributions")
        stages = [np.asarray(s, dtype=np.float64) for s in stage_samples]
        if any(s.size == 0 for s in stages):
            raise ValueError("every stage needs at least one sample")
        if throws < 1:
            raise ValueError("need at least one throw")
        draws = np.stack([rng.choice(s, size=throws, replace=True)
                          for s in stages], axis=1)
        latencies = np.array([
            self.event_latency_s(*draws[i]) for i in range(throws)])
        late = latencies > self.budget_s
        hits = rng.random(throws) < self.hit_probability
        video_late = self._frames.late_fraction(stages[-1])
        return GameRoundStats(
            throws=throws,
            late_events=int(late.sum()),
            unfair_hits=int((late & hits).sum()),
            late_fraction=float(late.mean()),
            video_late_fraction=video_late,
        )

    def playable(self, rtt_samples_s: np.ndarray,
                 max_late_fraction: float = 0.05) -> bool:
        """Is the game playable on this network?

        Playability criterion: the per-event pipeline (with *zero*
        processing slack) must meet the budget for at least
        ``1 - max_late_fraction`` of events.  Network RTT alone above
        the budget makes this False regardless of processing.
        """
        rtts = np.asarray(rtt_samples_s, dtype=np.float64)
        if rtts.size == 0:
            raise ValueError("no RTT samples supplied")
        return float((rtts > self.budget_s).mean()) <= max_late_fraction
