"""Video streaming model (the ffmpeg-based emulation of Sec. IV-A).

The use case establishes a bidirectional video stream whose frame
update cycle the services must keep up with: 60 FPS video gives a
16.6 ms frame interval ([12], [13]), and the game tolerates at most
20 ms round-trip latency [15].  The model covers frame pacing, codec
latency, and deadline-miss accounting over an RTT sample series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units

__all__ = ["VideoStreamConfig", "FrameCycleAnalysis"]


@dataclass(frozen=True)
class VideoStreamConfig:
    """One direction of a real-time video stream."""

    fps: float = 60.0
    bitrate_bps: float = units.mbps(25.0)     #: 4K-ish real-time encode
    #: one-way codec latency (encode + decode), seconds
    codec_latency_s: float = 8e-3
    #: mean encoded frame size follows from rate and cadence

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("frame rate must be positive")
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if self.codec_latency_s < 0:
            raise ValueError("codec latency must be non-negative")

    @property
    def frame_interval_s(self) -> float:
        """Frame update cycle (16.6 ms at 60 FPS — the paper's figure)."""
        return 1.0 / self.fps

    @property
    def mean_frame_bits(self) -> float:
        return self.bitrate_bps / self.fps


class FrameCycleAnalysis:
    """Deadline accounting of a frame stream against network RTTs.

    A frame is *late* when codec latency plus its network round trip
    exceeds the motion-to-photon budget; a late-frame burst longer than
    ``freeze_frames`` consecutive frames is a visible freeze.
    """

    def __init__(self, config: VideoStreamConfig, *,
                 budget_s: float = units.ms(20.0),
                 freeze_frames: int = 3):
        if budget_s <= 0:
            raise ValueError("budget must be positive")
        if freeze_frames < 1:
            raise ValueError("freeze threshold must be >= 1")
        self.config = config
        self.budget_s = budget_s
        self.freeze_frames = freeze_frames

    def frame_latencies(self, rtt_samples_s: np.ndarray) -> np.ndarray:
        """Per-frame display latency: codec + network RTT."""
        rtts = np.asarray(rtt_samples_s, dtype=np.float64)
        if rtts.size == 0:
            raise ValueError("no RTT samples supplied")
        return rtts + self.config.codec_latency_s

    def late_fraction(self, rtt_samples_s: np.ndarray) -> float:
        """Fraction of frames missing the motion-to-photon budget."""
        lat = self.frame_latencies(rtt_samples_s)
        return float((lat > self.budget_s).mean())

    def freeze_events(self, rtt_samples_s: np.ndarray) -> int:
        """Number of visible freezes (late-bursts of >= freeze_frames)."""
        late = self.frame_latencies(rtt_samples_s) > self.budget_s
        events = 0
        run = 0
        for is_late in late:
            run = run + 1 if is_late else 0
            if run == self.freeze_frames:
                events += 1
        return events

    def sustainable_fps(self, mean_rtt_s: float) -> float:
        """Highest frame rate whose interval covers the display latency.

        If the mean display latency already exceeds the budget the
        stream cannot meet any cadence and 0 is returned.
        """
        if mean_rtt_s < 0:
            raise ValueError("RTT must be non-negative")
        display = mean_rtt_s + self.config.codec_latency_s
        if display > self.budget_s:
            return 0.0
        return 1.0 / display
