"""V2X platooning: the control-theoretic vehicle latency requirement.

The paper motivates 6G with autonomous-vehicle coordination; the
quantitative backbone is *string stability* of a vehicle platoon under
communication delay: with predecessor-following control, disturbances
amplify down the string unless the time headway exceeds a bound that
grows with the communication delay (``h > 2 * (tau + theta)`` for
actuation lag ``tau`` and network delay ``theta`` — the classic CACC
result).  Tighter headways (= road capacity) therefore require lower
latency, which is the whole 6G argument in one inequality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlatoonConfig", "PlatoonModel"]


@dataclass(frozen=True)
class PlatoonConfig:
    """One platoon deployment."""

    vehicles: int = 8
    speed_mps: float = 25.0          #: ~90 km/h motorway
    vehicle_length_m: float = 4.8
    #: powertrain actuation lag, seconds
    actuation_lag_s: float = 0.2
    #: cooperative-awareness message rate (CAM), Hz
    cam_rate_hz: float = 10.0

    def __post_init__(self) -> None:
        if self.vehicles < 2:
            raise ValueError("a platoon needs at least two vehicles")
        if self.speed_mps <= 0 or self.vehicle_length_m <= 0:
            raise ValueError("speed and length must be positive")
        if self.actuation_lag_s < 0:
            raise ValueError("actuation lag must be non-negative")
        if self.cam_rate_hz <= 0:
            raise ValueError("CAM rate must be positive")


class PlatoonModel:
    """Headway, capacity and stability arithmetic."""

    def __init__(self, config: PlatoonConfig):
        self.config = config

    # -- stability ----------------------------------------------------------

    def effective_delay_s(self, network_rtt_s: float) -> float:
        """Total loop delay: actuation + network one-way + CAM sampling.

        CAM sampling adds half an inter-message interval on average.
        """
        if network_rtt_s < 0:
            raise ValueError("RTT must be non-negative")
        return (self.config.actuation_lag_s
                + network_rtt_s / 2.0
                + 0.5 / self.config.cam_rate_hz)

    def min_stable_headway_s(self, network_rtt_s: float) -> float:
        """String-stable time headway bound: ``h >= 2 * delay``."""
        return 2.0 * self.effective_delay_s(network_rtt_s)

    def string_stable(self, headway_s: float,
                      network_rtt_s: float) -> bool:
        """True when the headway satisfies the string-stability bound."""
        if headway_s <= 0:
            raise ValueError("headway must be positive")
        return headway_s >= self.min_stable_headway_s(network_rtt_s)

    # -- capacity ------------------------------------------------------------

    def lane_capacity_vph(self, network_rtt_s: float) -> float:
        """Vehicles/hour/lane at the minimum stable headway."""
        cfg = self.config
        headway = self.min_stable_headway_s(network_rtt_s)
        spacing_m = cfg.speed_mps * headway + cfg.vehicle_length_m
        return 3600.0 * cfg.speed_mps / spacing_m

    def capacity_gain(self, rtt_old_s: float, rtt_new_s: float) -> float:
        """Capacity ratio when latency improves from old to new."""
        return (self.lane_capacity_vph(rtt_new_s)
                / self.lane_capacity_vph(rtt_old_s))

    # -- disturbance propagation -----------------------------------------

    def disturbance_amplification(self, headway_s: float,
                                  network_rtt_s: float) -> float:
        """Per-vehicle disturbance gain along the string.

        First-order approximation: gain = 2*delay / headway; above 1
        the platoon is string-unstable and errors grow geometrically.
        """
        if headway_s <= 0:
            raise ValueError("headway must be positive")
        return self.min_stable_headway_s(network_rtt_s) / headway_s

    def tail_error_factor(self, headway_s: float,
                          network_rtt_s: float) -> float:
        """Disturbance amplification at the last vehicle."""
        gain = self.disturbance_amplification(headway_s, network_rtt_s)
        return gain ** (self.config.vehicles - 1)
