"""Federated learning at the edge (the paper's future-work direction).

Models the synchronous FedAvg round the 6G-edge literature assumes:
``K`` clients train locally, upload model updates to an aggregator,
and download the merged model.  Round time is gated by the *slowest*
client (the straggler), which is where the network enters:

* upload/download time = model size / per-client goodput, plus the
  access RTT per protocol round trip;
* per-client goodput shrinks as more clients share the cell (the MAC
  scheduler splits capacity);
* aggregator placement (edge vs cloud) adds its round trip to every
  exchange.

The model answers the question the paper's outlook poses: what does a
6G edge buy for distributed learning — and when does the bottleneck
shift from the network back to compute?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import units

__all__ = ["FederatedConfig", "FederatedRoundModel"]


@dataclass(frozen=True)
class FederatedConfig:
    """One FL deployment."""

    #: model update size, bits (e.g. a few MB for a small CNN)
    model_size_bits: float = 8 * units.MB
    #: number of clients selected per round
    clients_per_round: int = 16
    #: local training time per client, seconds (compute-bound part)
    local_compute_s: float = 2.0
    #: aggregation time at the server, seconds
    aggregation_s: float = 0.05
    #: protocol round trips per exchange (TLS + HTTP overhead)
    protocol_rtts: int = 3

    def __post_init__(self) -> None:
        if self.model_size_bits <= 0:
            raise ValueError("model size must be positive")
        if self.clients_per_round < 1:
            raise ValueError("need at least one client per round")
        if self.local_compute_s < 0 or self.aggregation_s < 0:
            raise ValueError("compute times must be non-negative")
        if self.protocol_rtts < 1:
            raise ValueError("at least one protocol round trip")


class FederatedRoundModel:
    """Synchronous FedAvg round-time calculator."""

    def __init__(self, config: FederatedConfig, *,
                 cell_uplink_bps: float,
                 cell_downlink_bps: float,
                 access_rtt_s: float,
                 aggregator_rtt_s: float = 0.0):
        """
        Parameters
        ----------
        cell_uplink_bps / cell_downlink_bps:
            Shared cell capacity in each direction; clients in the same
            cell split it equally while transferring.
        access_rtt_s:
            UE <-> edge round trip (air + core).
        aggregator_rtt_s:
            Extra round trip from the edge to the aggregator (0 when
            the aggregator runs at the edge site itself).
        """
        if cell_uplink_bps <= 0 or cell_downlink_bps <= 0:
            raise ValueError("cell capacities must be positive")
        if access_rtt_s < 0 or aggregator_rtt_s < 0:
            raise ValueError("RTTs must be non-negative")
        self.config = config
        self.cell_uplink_bps = cell_uplink_bps
        self.cell_downlink_bps = cell_downlink_bps
        self.access_rtt_s = access_rtt_s
        self.aggregator_rtt_s = aggregator_rtt_s

    # -- transfer components ------------------------------------------------

    def _per_client_rate(self, shared_bps: float, concurrent: int) -> float:
        return shared_bps / concurrent

    def upload_s(self, concurrent: Optional[int] = None) -> float:
        """Model upload time for one client with ``concurrent`` peers."""
        n = concurrent if concurrent is not None \
            else self.config.clients_per_round
        if n < 1:
            raise ValueError("concurrent count must be >= 1")
        rate = self._per_client_rate(self.cell_uplink_bps, n)
        rtt = self.access_rtt_s + self.aggregator_rtt_s
        return (self.config.model_size_bits / rate
                + self.config.protocol_rtts * rtt)

    def download_s(self, concurrent: Optional[int] = None) -> float:
        """Merged-model download time (usually broadcast-friendly)."""
        n = concurrent if concurrent is not None \
            else self.config.clients_per_round
        if n < 1:
            raise ValueError("concurrent count must be >= 1")
        rate = self._per_client_rate(self.cell_downlink_bps, n)
        rtt = self.access_rtt_s + self.aggregator_rtt_s
        return (self.config.model_size_bits / rate
                + self.config.protocol_rtts * rtt)

    # -- round time ---------------------------------------------------------

    def round_time_s(self, straggler_factor: float = 1.3) -> float:
        """One synchronous round, gated by the slowest client.

        ``straggler_factor`` scales the slowest client's compute+transfer
        relative to the average (1.0 = perfectly homogeneous cohort).
        """
        if straggler_factor < 1.0:
            raise ValueError("straggler factor must be >= 1")
        per_client = (self.config.local_compute_s
                      + self.upload_s() + self.download_s())
        return per_client * straggler_factor + self.config.aggregation_s

    def rounds_per_hour(self, straggler_factor: float = 1.3) -> float:
        """Synchronous rounds completed per hour."""
        return 3600.0 / self.round_time_s(straggler_factor)

    def network_share(self) -> float:
        """Fraction of the (average) round spent on the network."""
        transfer = self.upload_s() + self.download_s()
        total = transfer + self.config.local_compute_s \
            + self.config.aggregation_s
        return transfer / total
