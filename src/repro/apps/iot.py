"""IoT application-protocol overhead (Section III-A, [14]).

The paper: protocols like MQTT, AMQP and CoAP "contribute an extra 5-8
milliseconds" that must be minimised to reach user-perceived latency
below 16 ms.  The model assigns each protocol its published overhead
structure — broker hops for MQTT/AMQP, direct request/response for
CoAP, plus QoS-level dependent acknowledgement rounds — and composes it
with a network RTT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .. import units

__all__ = ["IotProtocol", "ProtocolStack", "PROTOCOLS"]


class IotProtocol(enum.Enum):
    """The IoT messaging protocols the [14] survey covers."""
    MQTT = "mqtt"
    AMQP = "amqp"
    COAP = "coap"


@dataclass(frozen=True)
class ProtocolStack:
    """Latency structure of one IoT messaging protocol."""

    protocol: IotProtocol
    #: serialisation/parsing + client stack cost per message, seconds
    stack_overhead_s: float
    #: broker processing per message (0 for brokerless protocols)
    broker_processing_s: float
    #: network traversals per delivered message at QoS 0 semantics:
    #: 2 for publish->broker->subscriber, 1 for direct request
    network_legs: int
    #: extra acknowledgement round trips per QoS level step
    ack_rounds_per_qos: int = 1

    def __post_init__(self) -> None:
        if self.stack_overhead_s < 0 or self.broker_processing_s < 0:
            raise ValueError("overheads must be non-negative")
        if self.network_legs < 1:
            raise ValueError("at least one network leg is required")
        if self.ack_rounds_per_qos < 0:
            raise ValueError("ack rounds must be non-negative")

    def overhead_s(self, qos: int = 0) -> float:
        """Protocol-added latency excluding network propagation."""
        if qos < 0:
            raise ValueError("QoS level must be non-negative")
        return (self.stack_overhead_s
                + self.broker_processing_s
                + qos * self.ack_rounds_per_qos * self.stack_overhead_s)

    def delivery_latency_s(self, one_way_network_s: float,
                           qos: int = 0) -> float:
        """End-to-end publish-to-receive latency over a given network."""
        if one_way_network_s < 0:
            raise ValueError("network latency must be non-negative")
        legs = self.network_legs + qos * self.ack_rounds_per_qos * 2
        return legs * one_way_network_s + self.overhead_s(qos)


#: Calibrated to the [14] survey's 5-8 ms protocol-overhead band
#: (QoS 0/1, LAN-class networks).
PROTOCOLS: dict[IotProtocol, ProtocolStack] = {
    IotProtocol.MQTT: ProtocolStack(
        protocol=IotProtocol.MQTT,
        stack_overhead_s=units.ms(1.5),
        broker_processing_s=units.ms(3.5),
        network_legs=2,
    ),
    IotProtocol.AMQP: ProtocolStack(
        protocol=IotProtocol.AMQP,
        stack_overhead_s=units.ms(2.0),
        broker_processing_s=units.ms(6.0),
        network_legs=2,
    ),
    IotProtocol.COAP: ProtocolStack(
        protocol=IotProtocol.COAP,
        stack_overhead_s=units.ms(2.5),    # UDP + DTLS-lite client stack
        broker_processing_s=units.ms(2.5),  # resource server handling
        network_legs=1,
    ),
}


def overhead_band_s() -> tuple[float, float]:
    """(min, max) protocol overhead across the modelled stacks at QoS 0.

    Reproduces the paper's "extra 5-8 milliseconds" claim; asserted by
    the requirements bench.
    """
    values = [stack.overhead_s(qos=0) for stack in PROTOCOLS.values()]
    return min(values), max(values)
