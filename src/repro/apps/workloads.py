"""Domain workloads from the paper's motivation sections.

Each factory returns the :class:`~repro.apps.base.ApplicationProfile`
for one application class, with the paper's own magnitudes:

* autonomous vehicles — up to 4 TB/day of sensor data (Sec. III-B);
* telemedicine / remote surgery — >10 GB/day, haptic-grade latency
  (Sec. II-A, III-B);
* smart city — adaptive traffic management across up to 50,000
  intersections (Sec. III-C);
* smart factory — >5 TB/day per automated line (Sec. III-C);
* AR gaming — the Sec. IV-A use case (20 ms budget, 60 FPS);
* massive IoT — the 125-billion-devices-by-2030 trajectory (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from .base import ApplicationProfile

__all__ = [
    "autonomous_vehicle",
    "remote_surgery",
    "smart_city_traffic",
    "smart_factory",
    "ar_gaming",
    "massive_iot",
    "all_profiles",
    "SmartCityDeployment",
    "FactoryLine",
]


def autonomous_vehicle() -> ApplicationProfile:
    """V2X coordination: ~4 TB/day, 10 ms-class event latency."""
    return ApplicationProfile(
        name="autonomous-vehicle",
        rtt_budget_s=units.ms(10.0),
        bandwidth_bps=4 * units.TB / units.DAY,   # sustained average
        daily_volume_bits=4 * units.TB,
        device_density_per_km2=2_000.0,           # dense urban traffic
        five_qi=83,
        notes="multi-modal sensor fusion + HD map updates",
    )


def remote_surgery() -> ApplicationProfile:
    """Telemedicine: HD video + haptics, 5 ms-class control loop."""
    return ApplicationProfile(
        name="remote-surgery",
        rtt_budget_s=units.ms(5.0),
        bandwidth_bps=units.mbps(120.0),          # HD video + haptic channel
        daily_volume_bits=10 * units.GB,
        five_qi=85,
        notes="haptic feedback loop dominates the budget",
    )


def smart_city_traffic() -> ApplicationProfile:
    """Adaptive traffic management (Tokyo-scale, 50k intersections)."""
    return ApplicationProfile(
        name="smart-city-traffic",
        rtt_budget_s=units.ms(100.0),
        bandwidth_bps=units.mbps(4.0),            # per intersection
        device_density_per_km2=25_000.0,          # sensors + cameras
        five_qi=3,
        notes="50,000 intersections analysed simultaneously",
    )


def smart_factory() -> ApplicationProfile:
    """Industrial automation line: >5 TB/day, discrete-automation QoS."""
    return ApplicationProfile(
        name="smart-factory",
        rtt_budget_s=units.ms(10.0),
        bandwidth_bps=5 * units.TB / units.DAY,
        daily_volume_bits=5 * units.TB,
        device_density_per_km2=100_000.0,         # dense sensor deployment
        five_qi=82,
        notes="tens of thousands of sensors per line",
    )


def ar_gaming() -> ApplicationProfile:
    """The Sec. IV-A AR dodgeball game."""
    return ApplicationProfile(
        name="ar-gaming",
        rtt_budget_s=units.ms(20.0),
        bandwidth_bps=units.mbps(50.0),           # bidirectional 4K stream
        five_qi=80,
        notes="motion-to-photon < 20 ms; 60 FPS frame cycle",
    )


def massive_iot() -> ApplicationProfile:
    """The 2030 massive-IoT regime: density over per-device speed."""
    return ApplicationProfile(
        name="massive-iot",
        rtt_budget_s=units.ms(1000.0),
        bandwidth_bps=units.RATE_KBPS * 50.0,
        device_density_per_km2=1_000_000.0,       # 6G target density
        five_qi=9,
        notes="125 billion devices globally by 2030",
    )


def all_profiles() -> list[ApplicationProfile]:
    """Every modelled application class."""
    return [autonomous_vehicle(), remote_surgery(), smart_city_traffic(),
            smart_factory(), ar_gaming(), massive_iot()]


# ---------------------------------------------------------------------------
# Deployment-scale helpers used by examples and the scalability bench
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SmartCityDeployment:
    """Aggregate demand of a city-scale traffic system."""

    intersections: int = 50_000
    per_intersection_bps: float = units.mbps(4.0)

    def __post_init__(self) -> None:
        if self.intersections < 1 or self.per_intersection_bps <= 0:
            raise ValueError("deployment parameters must be positive")

    @property
    def aggregate_bps(self) -> float:
        return self.intersections * self.per_intersection_bps

    def fits_in(self, capacity_bps: float) -> bool:
        """Can a given backhaul capacity carry the whole deployment?"""
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        return self.aggregate_bps <= capacity_bps


@dataclass(frozen=True)
class FactoryLine:
    """One automated manufacturing line."""

    sensors: int = 20_000
    daily_volume_bits: float = 5 * units.TB

    def __post_init__(self) -> None:
        if self.sensors < 1 or self.daily_volume_bits <= 0:
            raise ValueError("factory parameters must be positive")

    @property
    def mean_rate_bps(self) -> float:
        """Sustained average rate implied by the daily volume."""
        return self.daily_volume_bits / units.DAY

    @property
    def per_sensor_bps(self) -> float:
        return self.mean_rate_bps / self.sensors
