"""Application modelling primitives.

An application is a graph of :class:`Service` instances plus an
:class:`ApplicationProfile` capturing its network requirements — the
quantities Section III tabulates (latency budget, sustained bandwidth,
daily data volume, device density).  Profiles are consumed by the
requirements registry in :mod:`repro.core.requirements` and by the gap
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["Service", "ServiceChain", "ApplicationProfile"]


@dataclass(frozen=True, slots=True)
class Service:
    """One deployable service component."""

    name: str
    #: per-request compute time at its host, seconds
    processing_s: float
    #: request/response payload sizes, bits
    request_bits: float = 8_000.0
    response_bits: float = 8_000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service name must be non-empty")
        if self.processing_s < 0:
            raise ValueError("processing time must be non-negative")
        if self.request_bits <= 0 or self.response_bits <= 0:
            raise ValueError("payload sizes must be positive")


class ServiceChain:
    """An ordered pipeline of services invoked per application event.

    ``end_to_end_s`` composes one event's latency: for each stage, the
    network RTT to its host plus its processing time.  The network RTTs
    are supplied by the caller (they depend on placement), keeping the
    application model independent of the infrastructure model.
    """

    def __init__(self, name: str, services: list[Service]):
        if not services:
            raise ValueError("service chain must not be empty")
        names = [s.name for s in services]
        if len(set(names)) != len(names):
            raise ValueError("duplicate service names in chain")
        self.name = name
        self.services = list(services)

    def __len__(self) -> int:
        return len(self.services)

    def end_to_end_s(self, network_rtts_s: list[float]) -> float:
        """Total event latency given one network RTT per stage."""
        if len(network_rtts_s) != len(self.services):
            raise ValueError(
                f"need {len(self.services)} RTTs, got {len(network_rtts_s)}")
        total = 0.0
        for service, rtt in zip(self.services, network_rtts_s):
            if rtt < 0:
                raise ValueError("RTT must be non-negative")
            total += rtt + service.processing_s
        return total

    def processing_total_s(self) -> float:
        """Summed per-stage processing time of the chain."""
        return sum(s.processing_s for s in self.services)


@dataclass(frozen=True)
class ApplicationProfile:
    """Network requirements of one application class (Section III)."""

    name: str
    #: end-to-end round-trip latency budget, seconds
    rtt_budget_s: float
    #: sustained per-user bandwidth, bits/second
    bandwidth_bps: float
    #: data generated per device per day, bits (0 if not applicable)
    daily_volume_bits: float = 0.0
    #: devices per km^2 in the motivating deployment (0 if n/a)
    device_density_per_km2: float = 0.0
    #: matching 5QI class (see repro.cn.qos), if any
    five_qi: Optional[int] = None
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        if self.rtt_budget_s <= 0:
            raise ValueError("latency budget must be positive")
        if self.bandwidth_bps < 0 or self.daily_volume_bits < 0 or \
                self.device_density_per_km2 < 0:
            raise ValueError("requirement magnitudes must be non-negative")

    def deadline_miss_fraction(self, rtt_samples_s: np.ndarray) -> float:
        """Fraction of RTT samples exceeding this profile's budget."""
        samples = np.asarray(rtt_samples_s, dtype=np.float64)
        if samples.size == 0:
            raise ValueError("no samples supplied")
        return float((samples > self.rtt_budget_s).mean())

    def exceedance_percent(self, measured_rtt_s: float) -> float:
        """How far a measured RTT overshoots the budget, in percent.

        The paper's headline: mean RTL exceeds the 20 ms requirement "by
        approximately 270 %" — i.e. ``(measured - budget) / budget``.
        """
        if measured_rtt_s < 0:
            raise ValueError("measured RTT must be non-negative")
        return (measured_rtt_s - self.rtt_budget_s) \
            / self.rtt_budget_s * 100.0
