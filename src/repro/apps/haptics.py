"""Haptic control loops for telemedicine (Sections II-A / III-B).

Remote surgery closes a force-feedback loop over the network: operator
motion goes out, tissue force comes back, at kilohertz rates.  Control
theory gives the quantitative requirement the paper's 5 ms-class budget
stands on: a haptic loop with round-trip delay ``T`` becomes unstable
beyond a stiffness threshold that *falls with T* (the classic
passivity/virtual-coupling result: displayable stiffness is bounded by
``k_max ~ b / T`` for damping ``b``).

:class:`HapticLoop` exposes that boundary plus packet-level accounting
(update-rate feasibility, deadline misses over an RTT series).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units

__all__ = ["HapticConfig", "HapticLoop"]


@dataclass(frozen=True)
class HapticConfig:
    """One haptic teleoperation setup."""

    update_rate_hz: float = 1000.0
    #: virtual-coupling damping, N*s/m
    damping_ns_m: float = 5.0
    #: stiffness the task needs (suturing ~ hundreds of N/m)
    required_stiffness_n_m: float = 300.0
    #: local processing per cycle (device + controller), seconds
    processing_s: float = 0.3e-3

    def __post_init__(self) -> None:
        if self.update_rate_hz <= 0:
            raise ValueError("update rate must be positive")
        if self.damping_ns_m <= 0:
            raise ValueError("damping must be positive")
        if self.required_stiffness_n_m <= 0:
            raise ValueError("required stiffness must be positive")
        if self.processing_s < 0:
            raise ValueError("processing must be non-negative")


class HapticLoop:
    """Stability and timing analysis of a networked haptic loop."""

    def __init__(self, config: HapticConfig):
        self.config = config

    # -- stability ------------------------------------------------------

    def max_stable_stiffness_n_m(self, rtt_s: float) -> float:
        """Displayable stiffness bound at round-trip delay ``rtt_s``.

        ``k_max = 2 b / (T_sample + 2 T_delay)`` — the discrete-time
        passivity bound with network delay folded into the effective
        sample period.
        """
        if rtt_s < 0:
            raise ValueError("RTT must be non-negative")
        cfg = self.config
        effective_period = (1.0 / cfg.update_rate_hz
                            + rtt_s + 2.0 * cfg.processing_s)
        return 2.0 * cfg.damping_ns_m / effective_period

    def stable(self, rtt_s: float) -> bool:
        """Can the task's required stiffness be displayed stably?"""
        return self.max_stable_stiffness_n_m(rtt_s) >= \
            self.config.required_stiffness_n_m

    def max_tolerable_rtt_s(self) -> float:
        """The RTT at which the required stiffness becomes unstable."""
        cfg = self.config
        budget = 2.0 * cfg.damping_ns_m / cfg.required_stiffness_n_m
        rtt = budget - 1.0 / cfg.update_rate_hz - 2.0 * cfg.processing_s
        return max(rtt, 0.0)

    # -- timing ----------------------------------------------------------

    def update_rate_feasible(self, rtt_s: float) -> bool:
        """Can fresh force samples arrive every cycle?  Requires the
        network round trip to fit inside one update period (with
        pipelining, the *rate*, not the latency, is the constraint —
        this checks the stricter non-pipelined case used for safety
        interlocks)."""
        if rtt_s < 0:
            raise ValueError("RTT must be non-negative")
        return rtt_s + self.config.processing_s <= \
            1.0 / self.config.update_rate_hz

    def deadline_miss_fraction(self, rtt_samples_s: np.ndarray) -> float:
        """Fraction of cycles whose feedback misses the update period."""
        samples = np.asarray(rtt_samples_s, dtype=np.float64)
        if samples.size == 0:
            raise ValueError("no samples supplied")
        period = 1.0 / self.config.update_rate_hz
        return float(((samples + self.config.processing_s)
                      > period).mean())
