"""End-to-end network slicing (Sec. V-C, [39]).

A slice (S-NSSAI) reserves a fraction of the shared infrastructure for
one application class.  The latency benefit is isolation: a slice's
flows see queueing at the *slice's own* utilisation rather than the
aggregate — which is exactly what the paper means by "allocating
dedicated resources to specific applications".

:class:`SliceManager` does admission control over a capacity pool and
answers the what-if the slicing bench asks: the same offered traffic
mix, with and without slice isolation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..net.queueing import mm1_wait

__all__ = ["SliceType", "NetworkSlice", "SliceManager"]


class SliceType(enum.Enum):
    """Standard slice/service types (SST values of TS 23.501)."""

    EMBB = 1    #: enhanced mobile broadband
    URLLC = 2   #: ultra-reliable low latency
    MMTC = 3    #: massive machine-type (IoT)


@dataclass(frozen=True, slots=True)
class NetworkSlice:
    """One slice: an SST, an identifier, and a capacity reservation."""

    name: str
    slice_type: SliceType
    reserved_fraction: float      #: share of the pool, (0, 1]
    offered_load_bps: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("slice name must be non-empty")
        if not 0.0 < self.reserved_fraction <= 1.0:
            raise ValueError("reserved fraction must be in (0, 1]")
        if self.offered_load_bps < 0:
            raise ValueError("offered load must be non-negative")


class SliceManager:
    """Admission control and per-slice queueing over a capacity pool."""

    def __init__(self, capacity_bps: float):
        if capacity_bps <= 0:
            raise ValueError("pool capacity must be positive")
        self.capacity_bps = capacity_bps
        self._slices: dict[str, NetworkSlice] = {}

    # -- admission ---------------------------------------------------------

    @property
    def reserved_total(self) -> float:
        return sum(s.reserved_fraction for s in self._slices.values())

    def admit(self, candidate: NetworkSlice) -> NetworkSlice:
        """Admit a slice; rejects oversubscription of reservations and
        slices whose own offered load already exceeds their share."""
        if candidate.name in self._slices:
            raise ValueError(f"slice {candidate.name!r} already admitted")
        if self.reserved_total + candidate.reserved_fraction > 1.0 + 1e-12:
            raise ValueError(
                f"admitting {candidate.name!r} would reserve "
                f"{(self.reserved_total + candidate.reserved_fraction):.2f} "
                "> 1.0 of the pool")
        if candidate.offered_load_bps >= \
                candidate.reserved_fraction * self.capacity_bps:
            raise ValueError(
                f"slice {candidate.name!r} offers more load than its "
                "reservation can carry")
        self._slices[candidate.name] = candidate
        return candidate

    def release(self, name: str) -> None:
        """Remove an admitted slice, freeing its reservation."""
        if name not in self._slices:
            raise KeyError(f"no slice {name!r}")
        del self._slices[name]

    def slice(self, name: str) -> NetworkSlice:
        """Look up an admitted slice by name."""
        try:
            return self._slices[name]
        except KeyError:
            raise KeyError(f"no slice {name!r}") from None

    def slices(self) -> list[NetworkSlice]:
        """All admitted slices."""
        return list(self._slices.values())

    # -- queueing arithmetic ---------------------------------------------

    def sliced_utilisation(self, name: str) -> float:
        """Utilisation the named slice experiences with isolation."""
        s = self.slice(name)
        return s.offered_load_bps / (s.reserved_fraction * self.capacity_bps)

    def shared_utilisation(self) -> float:
        """Utilisation everyone experiences without slicing."""
        total = sum(s.offered_load_bps for s in self._slices.values())
        rho = total / self.capacity_bps
        if rho >= 1.0:
            raise ValueError("aggregate offered load exceeds pool capacity")
        return rho

    def queueing_delay_s(self, name: str, service_time_s: float,
                         isolated: bool = True) -> float:
        """Mean M/M/1 wait a flow of slice ``name`` sees.

        ``isolated=False`` computes the no-slicing counterfactual: the
        flow queues behind the aggregate load on the full pool.
        """
        if service_time_s <= 0:
            raise ValueError("service time must be positive")
        if isolated:
            rho = self.sliced_utilisation(name)
            if rho >= 1.0:
                raise ValueError(
                    f"slice {name!r} oversubscribed (rho={rho:.2f})")
            # Dedicated share: service is also scaled to the share.
            s = self.slice(name)
            scaled_service = service_time_s / s.reserved_fraction
            return mm1_wait(rho, scaled_service)
        return mm1_wait(self.shared_utilisation(), service_time_s)
