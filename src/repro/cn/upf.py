"""User-plane function: the packet-processing pipeline of Sec. V-B.

A UPF classifies each packet against packet-detection rules (PDR),
applies QoS enforcement (QER) and forwards (FAR).  Latency model:

* **rule lookup** — grows with the installed rule count; linear scan by
  default, which the context-aware rule cache of :mod:`repro.cn.qos`
  (Jain et al. [32]) short-circuits for hot flows;
* **pipeline cost** — fixed per-packet processing (GTP encap/decap,
  counters);
* **queueing** — M/M/1 at the configured utilisation;
* the host path (kernel/PCIe) versus SmartNIC offload distinction lives
  in :mod:`repro.cn.smartnic`, which rescales this model by the
  published factors (2x throughput, 3.75x latency).

Placement (:class:`~repro.cn.nf.SiteTier`) determines how far the N3/N6
legs stretch — the actual subject of the UPF-integration experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from .. import units
from ..geo.coords import GeoPoint
from ..net.queueing import sample_mm1_wait
from .nf import SiteTier

__all__ = ["UserPlaneFunction"]


@dataclass(frozen=True)
class UserPlaneFunction:
    """An immutable UPF deployment descriptor.

    Immutability keeps what-if studies honest: every variant (moved to
    the edge, SmartNIC-offloaded, more rules) is a *new* object created
    via :meth:`at_site`, :meth:`with_rules` or
    :func:`repro.cn.smartnic.offload`, so experiment arms can never
    contaminate each other through shared state.
    """

    name: str
    location: GeoPoint
    tier: SiteTier = SiteTier.REGIONAL_CORE
    #: per-packet pipeline cost of the host (kernel) path
    pipeline_s: float = 12e-6
    #: per-rule linear-scan cost
    rule_scan_s: float = 40e-9
    #: installed PDR count
    rule_count: int = 1000
    #: forwarding capacity of the host path
    throughput_bps: float = units.gbps(40.0)
    #: data-plane utilisation in [0, 1)
    load: float = 0.0
    #: True once SmartNIC-offloaded (set by repro.cn.smartnic.offload)
    smartnic: bool = False
    tags: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("UPF name must be non-empty")
        if self.pipeline_s < 0 or self.rule_scan_s < 0:
            raise ValueError("processing costs must be non-negative")
        if self.rule_count < 0:
            raise ValueError("rule count must be non-negative")
        if self.throughput_bps <= 0:
            raise ValueError("throughput must be positive")
        if not 0.0 <= self.load < 1.0:
            raise ValueError(f"UPF load must be in [0, 1), got {self.load}")

    # -- processing latency -----------------------------------------------

    def lookup_s(self, cached: bool = False) -> float:
        """PDR/QER classification cost.

        A cache hit costs one rule evaluation; a miss scans half the
        table on average.
        """
        if cached:
            return self.rule_scan_s
        return self.rule_scan_s * self.rule_count / 2.0

    def service_time_s(self, packet_bits: float = 12_000.0,
                       cached: bool = False) -> float:
        """Per-packet service time: lookup + pipeline + serialisation."""
        return (self.lookup_s(cached) + self.pipeline_s
                + units.transmission_delay(packet_bits, self.throughput_bps))

    def mean_latency_s(self, packet_bits: float = 12_000.0,
                       cached: bool = False) -> float:
        """Expected in-UPF latency at the configured load (M/M/1)."""
        s = self.service_time_s(packet_bits, cached)
        return s / (1.0 - self.load)

    def sample_latency_s(self, rng: np.random.Generator,
                         packet_bits: float = 12_000.0,
                         cached: bool = False) -> float:
        """Sampled in-UPF latency (wait + deterministic service)."""
        s = self.service_time_s(packet_bits, cached)
        return float(sample_mm1_wait(self.load, s, rng)) + s

    # -- what-if constructors ----------------------------------------------

    def at_site(self, location: GeoPoint, tier: SiteTier,
                name: Optional[str] = None) -> "UserPlaneFunction":
        """The same UPF relocated (the Sec. V-B placement experiment)."""
        return replace(self, location=location, tier=tier,
                       name=name or f"{self.name}@{tier.value}")

    def with_rules(self, rule_count: int) -> "UserPlaneFunction":
        """The same UPF with a different installed rule-table size."""
        return replace(self, rule_count=rule_count)

    def with_load(self, load: float) -> "UserPlaneFunction":
        """The same UPF at a different data-plane utilisation."""
        return replace(self, load=load)
