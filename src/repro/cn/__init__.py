"""5G/6G core network: NFs, SBI, procedures, UPF, QoS, slicing, hypervisors."""


from __future__ import annotations

from .gtp import GtpTunnel
from .hypervisor import HypervisorPlanner, PlacementObjective, PlacementResult
from .nf import NetworkFunction, NFKind, SbiBus, SiteTier
from .procedures import ProcedureBuilder
from .qos import FIVE_QI, ContextAwareRuleEngine, QosClass, QosFlow
from .slicing import NetworkSlice, SliceManager, SliceType
from .smartnic import LATENCY_FACTOR, THROUGHPUT_GAIN, offload
from .upf import UserPlaneFunction

__all__ = [
    "GtpTunnel",
    "HypervisorPlanner", "PlacementObjective", "PlacementResult",
    "NetworkFunction", "NFKind", "SbiBus", "SiteTier",
    "ProcedureBuilder",
    "FIVE_QI", "ContextAwareRuleEngine", "QosClass", "QosFlow",
    "NetworkSlice", "SliceManager", "SliceType",
    "offload", "THROUGHPUT_GAIN", "LATENCY_FACTOR",
    "UserPlaneFunction",
]
