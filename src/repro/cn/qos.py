"""QoS model: 5QI classes, flows, and the context-aware rule engine.

Two halves:

* The standard **5QI table** (TS 23.501 table 5.7.4-1, the rows relevant
  to the paper's applications) mapping QoS identifiers to packet delay
  budgets and priorities — the requirements analysis uses these budgets.
* The **context-aware QoS rule engine** of Jain et al. [32] cited in
  Sec. V-C: PDR/QER lookups are prioritised per-flow so that active,
  latency-critical flows hit a small hot cache while bulk flows take the
  slow path.  We model the cache with LRU-with-priority semantics and
  expose lookup/update latencies, reproducing the claim that the scheme
  "reduc[es] lookup and update latencies while enabling the simultaneous
  prioritisation of multiple flows per UE".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import units
from .upf import UserPlaneFunction

__all__ = ["QosClass", "FIVE_QI", "QosFlow", "ContextAwareRuleEngine"]


@dataclass(frozen=True, slots=True)
class QosClass:
    """One 5QI row."""

    five_qi: int
    resource_type: str         #: 'GBR' | 'non-GBR' | 'delay-critical GBR'
    priority: int              #: lower = more important
    packet_delay_budget_s: float
    packet_error_rate: float
    example: str

    def __post_init__(self) -> None:
        if self.five_qi <= 0 or self.priority <= 0:
            raise ValueError("5QI and priority must be positive")
        if self.packet_delay_budget_s <= 0:
            raise ValueError("delay budget must be positive")
        if not 0.0 < self.packet_error_rate < 1.0:
            raise ValueError("packet error rate must be in (0, 1)")


#: TS 23.501 rows used by the application models.
FIVE_QI: dict[int, QosClass] = {
    1: QosClass(1, "GBR", 20, units.ms(100.0), 1e-2,
                "conversational voice"),
    2: QosClass(2, "GBR", 40, units.ms(150.0), 1e-3,
                "conversational video"),
    3: QosClass(3, "GBR", 30, units.ms(50.0), 1e-3,
                "real-time gaming / V2X"),
    5: QosClass(5, "non-GBR", 10, units.ms(100.0), 1e-6,
                "IMS signalling"),
    7: QosClass(7, "non-GBR", 70, units.ms(100.0), 1e-3,
                "voice, interactive video"),
    9: QosClass(9, "non-GBR", 90, units.ms(300.0), 1e-6,
                "buffered streaming, web"),
    80: QosClass(80, "non-GBR", 68, units.ms(10.0), 1e-6,
                 "low-latency eMBB (AR)"),
    82: QosClass(82, "delay-critical GBR", 19, units.ms(10.0), 1e-4,
                 "discrete automation"),
    83: QosClass(83, "delay-critical GBR", 22, units.ms(10.0), 1e-4,
                 "V2X messages"),
    85: QosClass(85, "delay-critical GBR", 21, units.ms(5.0), 1e-5,
                 "remote control / surgery"),
}


@dataclass(frozen=True, slots=True)
class QosFlow:
    """A flow bound to a 5QI class."""

    flow_id: str
    ue_id: str
    five_qi: int

    def __post_init__(self) -> None:
        if self.five_qi not in FIVE_QI:
            raise KeyError(f"unknown 5QI {self.five_qi}")
        if not self.flow_id or not self.ue_id:
            raise ValueError("flow and UE ids must be non-empty")

    @property
    def qos(self) -> QosClass:
        return FIVE_QI[self.five_qi]


class ContextAwareRuleEngine:
    """Priority-aware PDR/QER lookup cache in front of a UPF rule table.

    ``capacity`` hot slots are shared by the most recently used flows,
    with lower 5QI priority values (more important flows) never evicted
    by less important ones — the "simultaneous prioritisation of
    multiple flows per UE" property from [32].
    """

    def __init__(self, upf: UserPlaneFunction, capacity: int = 64):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.upf = upf
        self.capacity = capacity
        #: flow_id -> (priority, recency counter); lower priority wins
        self._cache: dict[str, tuple[int, int]] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0

    # -- cache mechanics -----------------------------------------------------

    def _touch(self, flow: QosFlow) -> None:
        self._clock += 1
        self._cache[flow.flow_id] = (flow.qos.priority, self._clock)

    def _evict_victim(self, incoming_priority: int) -> Optional[str]:
        """Pick the evictee: worst (priority, staleness), if the incoming
        flow is at least as important; returns None if nothing evictable."""
        victim = max(self._cache.items(),
                     key=lambda kv: (kv[1][0], -kv[1][1]))
        victim_id, (victim_prio, _) = victim
        if incoming_priority <= victim_prio:
            return victim_id
        return None

    def lookup(self, flow: QosFlow) -> float:
        """Classify one packet of ``flow``; returns lookup latency.

        Hits cost one rule evaluation; misses pay the UPF's linear scan
        and then try to install the flow in the hot cache.
        """
        if flow.flow_id in self._cache:
            self.hits += 1
            self._touch(flow)
            return self.upf.lookup_s(cached=True)
        self.misses += 1
        latency = self.upf.lookup_s(cached=False)
        if len(self._cache) < self.capacity:
            self._touch(flow)
        else:
            victim = self._evict_victim(flow.qos.priority)
            if victim is not None:
                del self._cache[victim]
                self._touch(flow)
        return latency

    def update_rule(self, flow: QosFlow) -> float:
        """Rule update latency (PDR/QER change for an active flow).

        Cached flows update in-place at cache speed; uncached flows pay
        a table write (scan to locate + write), the "update latency"
        half of the [32] claim.
        """
        if flow.flow_id in self._cache:
            self._touch(flow)
            return self.upf.lookup_s(cached=True)
        return self.upf.lookup_s(cached=False) + self.upf.pipeline_s

    # -- introspection -----------------------------------------------------

    def is_cached(self, flow_id: str) -> bool:
        """True when the flow currently occupies a hot-cache slot."""
        return flow_id in self._cache

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> int:
        return len(self._cache)
