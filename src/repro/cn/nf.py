"""Control-plane network functions and the service-based interface.

The 5G core is a mesh of network functions (AMF, SMF, PCF, UDM, ...)
talking over the service-based interface (SBI).  For latency purposes a
control transaction is: network hop to the NF's site, queueing at the
NF, processing, hop back.  Section V-C's argument hinges on *where*
these functions run — a centralised core site hundreds of kilometres
from the gNB versus an edge site co-located with the CU — so placement
is a first-class attribute here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import units
from ..geo.coords import GeoPoint
from ..net.queueing import mm1_residence, sample_mm1_wait

__all__ = ["NFKind", "SiteTier", "NetworkFunction", "SbiBus"]


class NFKind(enum.Enum):
    """3GPP network-function types used by the procedures."""

    AMF = "amf"    #: access & mobility management
    SMF = "smf"    #: session management
    PCF = "pcf"    #: policy control
    UDM = "udm"    #: unified data management (subscriber data)
    AUSF = "ausf"  #: authentication server
    NEF = "nef"    #: network exposure
    NRF = "nrf"    #: NF repository (discovery)
    RIC_APP = "ric_app"  #: consolidated CPF hosted on a Near-RT RIC


class SiteTier(enum.Enum):
    """Where an NF (or UPF) is deployed."""

    CENTRAL_CLOUD = "central_cloud"   #: public-cloud region (far)
    REGIONAL_CORE = "regional_core"   #: operator core site (e.g. Vienna)
    EDGE = "edge"                     #: metro/edge site (e.g. Klagenfurt)


#: Typical per-transaction processing time by NF kind, seconds.
DEFAULT_PROCESSING_S: dict[NFKind, float] = {
    NFKind.AMF: 2.0e-3,
    NFKind.SMF: 2.5e-3,
    NFKind.PCF: 1.5e-3,
    NFKind.UDM: 1.0e-3,
    NFKind.AUSF: 1.5e-3,
    NFKind.NEF: 1.0e-3,
    NFKind.NRF: 0.5e-3,
    NFKind.RIC_APP: 1.5e-3,
}


@dataclass
class NetworkFunction:
    """One control-plane NF instance."""

    name: str
    kind: NFKind
    location: GeoPoint
    tier: SiteTier = SiteTier.REGIONAL_CORE
    processing_s: float = -1.0
    #: transaction-level utilisation of the NF worker pool
    load: float = 0.0
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("NF name must be non-empty")
        if self.processing_s < 0.0:
            self.processing_s = DEFAULT_PROCESSING_S[self.kind]
        if not 0.0 <= self.load < 1.0:
            raise ValueError(f"NF load must be in [0, 1), got {self.load}")

    def mean_response_s(self) -> float:
        """Mean in-NF residence time (M/M/1 at the configured load)."""
        return mm1_residence(self.load, self.processing_s)

    def sample_response_s(self, rng: np.random.Generator) -> float:
        """Sampled residence: waiting (M/M/1) plus deterministic service."""
        wait = float(sample_mm1_wait(self.load, self.processing_s, rng))
        return wait + self.processing_s


class SbiBus:
    """Latency oracle for NF-to-NF (and RAN-to-NF) signalling.

    Signalling between two sites costs one-way fibre propagation at the
    geographic distance (with circuity) plus a fixed per-message stack
    cost (HTTP/2 + TLS + kernel on both ends).
    """

    def __init__(self, *, per_message_overhead_s: float = 0.3e-3,
                 circuity: float = 1.05):
        if per_message_overhead_s < 0:
            raise ValueError("per-message overhead must be non-negative")
        if circuity < 1.0:
            raise ValueError("circuity must be >= 1")
        self.per_message_overhead_s = per_message_overhead_s
        self.circuity = circuity
        self._nfs: dict[str, NetworkFunction] = {}

    # -- registry ------------------------------------------------------------

    def register(self, nf: NetworkFunction) -> NetworkFunction:
        """Register an NF on the bus; duplicate names are rejected."""
        if nf.name in self._nfs:
            raise ValueError(f"duplicate NF name {nf.name!r}")
        self._nfs[nf.name] = nf
        return nf

    def nf(self, name: str) -> NetworkFunction:
        """Look up a registered NF by name."""
        try:
            return self._nfs[name]
        except KeyError:
            raise KeyError(f"unknown NF {name!r}") from None

    def find(self, kind: NFKind,
             tier: Optional[SiteTier] = None) -> list[NetworkFunction]:
        """All registered NFs of a kind (optionally at one tier)."""
        return [nf for nf in self._nfs.values()
                if nf.kind == kind and (tier is None or nf.tier == tier)]

    # -- latency -----------------------------------------------------------

    def hop_s(self, a: GeoPoint, b: GeoPoint) -> float:
        """One-way signalling latency between two sites."""
        distance = a.distance_to(b) * self.circuity
        return units.fibre_delay(distance) + self.per_message_overhead_s

    def request_response_s(self, origin: GeoPoint, nf: NetworkFunction,
                           rng: Optional[np.random.Generator] = None
                           ) -> float:
        """Full transaction: hop there, residence at the NF, hop back."""
        residence = (nf.mean_response_s() if rng is None
                     else nf.sample_response_s(rng))
        return 2.0 * self.hop_s(origin, nf.location) + residence
