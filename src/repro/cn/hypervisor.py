"""Network-hypervisor placement for virtualised slices (Sec. V-C).

The paper notes that hypervisor placement strategies optimise latency
[41], resilience [42] or load balance [43] — but "typically operate in a
reactive rather than predictive manner".  This module implements the
three placement objectives over a set of candidate sites so the ablation
bench can quantify their trade-offs on the Klagenfurt scenario:

* **latency** — minimise the maximum control latency from any tenant
  controller to its hypervisor (k-center via greedy 2-approximation);
* **resilience** — maximise the worst-case coverage when any single
  hypervisor fails (each tenant keeps a backup within a latency bound);
* **load** — balance tenants across hypervisors (capacity-aware greedy).

Latencies between sites come from fibre distance via the same model the
rest of the stack uses, so results are commensurable with the
measurement campaign.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .. import units
from ..geo.coords import GeoPoint

__all__ = ["PlacementObjective", "PlacementResult", "HypervisorPlanner"]


class PlacementObjective(enum.Enum):
    """Optimisation goal of a hypervisor placement run."""
    LATENCY = "latency"
    RESILIENCE = "resilience"
    LOAD_BALANCE = "load"


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a placement run."""

    objective: PlacementObjective
    hypervisor_sites: tuple[int, ...]     #: indices into candidate sites
    assignment: tuple[int, ...]           #: tenant -> site index
    worst_latency_s: float                #: max tenant->primary latency
    worst_backup_latency_s: float         #: max tenant->backup latency
    max_tenants_per_site: int


class HypervisorPlanner:
    """Places ``k`` hypervisors among candidate sites for given tenants."""

    def __init__(self, candidate_sites: list[GeoPoint],
                 tenant_sites: list[GeoPoint], *,
                 per_message_overhead_s: float = 0.3e-3,
                 circuity: float = 1.05):
        if not candidate_sites:
            raise ValueError("need at least one candidate site")
        if not tenant_sites:
            raise ValueError("need at least one tenant")
        self.candidates = list(candidate_sites)
        self.tenants = list(tenant_sites)
        self.overhead_s = per_message_overhead_s
        # Precompute the tenant x candidate latency matrix once.
        self._lat = np.empty((len(self.tenants), len(self.candidates)))
        for i, t in enumerate(self.tenants):
            for j, c in enumerate(self.candidates):
                self._lat[i, j] = units.fibre_delay(
                    t.distance_to(c) * circuity) + per_message_overhead_s

    # -- public API -----------------------------------------------------------

    def place(self, k: int,
              objective: PlacementObjective) -> PlacementResult:
        """Choose ``k`` sites under the given objective."""
        if not 1 <= k <= len(self.candidates):
            raise ValueError(
                f"k must be in [1, {len(self.candidates)}], got {k}")
        if objective is PlacementObjective.LATENCY:
            sites = self._greedy_k_center(k)
        elif objective is PlacementObjective.RESILIENCE:
            sites = self._resilient(k)
        else:
            sites = self._load_balanced(k)
        return self._evaluate(objective, sites)

    # -- strategies ---------------------------------------------------------

    def _greedy_k_center(self, k: int) -> list[int]:
        """Classic greedy 2-approximation: repeatedly add the site that
        best serves the currently worst-served tenant."""
        first = int(np.argmin(self._lat.max(axis=0)))
        chosen = [first]
        best = self._lat[:, first].copy()
        while len(chosen) < k:
            worst_tenant = int(np.argmax(best))
            remaining = [j for j in range(len(self.candidates))
                         if j not in chosen]
            nxt = min(remaining,
                      key=lambda j: float(self._lat[worst_tenant, j]))
            chosen.append(nxt)
            np.minimum(best, self._lat[:, nxt], out=best)
        return chosen

    def _resilient(self, k: int) -> list[int]:
        """Minimise the worst *second-nearest* latency so every tenant
        keeps a close backup when any one hypervisor fails.  Greedy on
        the backup objective; k=1 degenerates to the latency placement
        (no backup exists)."""
        if k == 1:
            return self._greedy_k_center(1)
        chosen = self._greedy_k_center(2)
        while len(chosen) < k:
            remaining = [j for j in range(len(self.candidates))
                         if j not in chosen]
            nxt = min(remaining, key=lambda j: self._backup_worst(
                chosen + [j]))
            chosen.append(nxt)
        return chosen

    def _backup_worst(self, sites: list[int]) -> float:
        sub = self._lat[:, sites]
        two = np.sort(sub, axis=1)[:, :2]
        return float(two[:, 1].max())

    def _load_balanced(self, k: int) -> list[int]:
        """Spread hypervisors so tenant loads split evenly: greedy
        k-center for coverage, then assignment capping handled in
        evaluation (each tenant to least-loaded of its two nearest)."""
        return self._greedy_k_center(k)

    # -- evaluation -----------------------------------------------------------

    def _evaluate(self, objective: PlacementObjective,
                  sites: list[int]) -> PlacementResult:
        sub = self._lat[:, sites]
        order = np.argsort(sub, axis=1)
        if objective is PlacementObjective.LOAD_BALANCE and len(sites) > 1:
            counts = {s: 0 for s in range(len(sites))}
            assignment = []
            for i in range(len(self.tenants)):
                first, second = int(order[i, 0]), int(order[i, 1])
                pick = first if counts[first] <= counts[second] else second
                counts[pick] += 1
                assignment.append(sites[pick])
        else:
            assignment = [sites[int(order[i, 0])]
                          for i in range(len(self.tenants))]
        primary = np.array([
            self._lat[i, a] for i, a in enumerate(assignment)])
        if len(sites) > 1:
            two = np.sort(sub, axis=1)[:, :2]
            backup_worst = float(two[:, 1].max())
        else:
            backup_worst = float("inf")
        tenant_counts = {}
        for a in assignment:
            tenant_counts[a] = tenant_counts.get(a, 0) + 1
        return PlacementResult(
            objective=objective,
            hypervisor_sites=tuple(sites),
            assignment=tuple(assignment),
            worst_latency_s=float(primary.max()),
            worst_backup_latency_s=backup_worst,
            max_tenants_per_site=max(tenant_counts.values()),
        )
