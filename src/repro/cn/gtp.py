"""GTP-U tunnelling: the encapsulation tax of the mobile user plane.

Every user-plane packet between gNB and UPF rides a GTP-U tunnel:
outer IP + UDP + GTP-U headers on top of the user's own packet.  Two
consequences matter for the paper's bandwidth arithmetic (Sec. III-B):

* **goodput loss** — the headers consume a fixed share of every
  transport-block byte, largest for the small packets IoT and gaming
  send;
* **fragmentation** — a user packet near the path MTU no longer fits
  once encapsulated and must be fragmented (or dropped, with TCP MSS
  clamping as the workaround), doubling per-packet overhead exactly
  where throughput matters most.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GtpTunnel"]

#: Header sizes, bytes.
OUTER_IPV4 = 20
OUTER_UDP = 8
GTP_U = 8          # mandatory GTP-U header
EXTENSION = 4      # PDU session container (5G QFI marking)


@dataclass(frozen=True)
class GtpTunnel:
    """One GTP-U tunnel over a path with a given MTU."""

    path_mtu_bytes: int = 1500
    use_extension_header: bool = True    #: 5G QFI marking

    def __post_init__(self) -> None:
        if self.path_mtu_bytes < 576:
            raise ValueError("path MTU below the IPv4 minimum")

    @property
    def overhead_bytes(self) -> int:
        """Encapsulation bytes added to every packet."""
        base = OUTER_IPV4 + OUTER_UDP + GTP_U
        return base + (EXTENSION if self.use_extension_header else 0)

    @property
    def max_user_payload_bytes(self) -> int:
        """Largest user packet that fits without fragmentation."""
        return self.path_mtu_bytes - self.overhead_bytes

    def fragments(self, user_packet_bytes: int) -> int:
        """Number of on-the-wire packets for one user packet."""
        if user_packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        limit = self.max_user_payload_bytes
        return -(-user_packet_bytes // limit)   # ceil division

    def wire_bytes(self, user_packet_bytes: int) -> int:
        """Total on-the-wire bytes for one user packet."""
        n = self.fragments(user_packet_bytes)
        return user_packet_bytes + n * self.overhead_bytes

    def goodput_efficiency(self, user_packet_bytes: int) -> float:
        """user bytes / wire bytes for a given packet size."""
        return user_packet_bytes / self.wire_bytes(user_packet_bytes)

    def effective_goodput_bps(self, link_rate_bps: float,
                              user_packet_bytes: int) -> float:
        """Achievable user-data rate on a link of ``link_rate_bps``."""
        if link_rate_bps <= 0:
            raise ValueError("link rate must be positive")
        return link_rate_bps * self.goodput_efficiency(user_packet_bytes)

    def mss_clamp_bytes(self, tcp_ip_headers: int = 40) -> int:
        """TCP MSS that avoids fragmentation through this tunnel."""
        return self.max_user_payload_bytes - tcp_ip_headers
