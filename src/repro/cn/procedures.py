"""3GPP control procedures as signalling-leg sequences.

Builds :class:`~repro.ran.oran.ControlProcedure` objects for the two
procedures the paper's control-plane discussion turns on:

* **registration** (authentication + policy association) — TS 23.502
  fig. 4.2.2.2-2, reduced to its latency-bearing legs;
* **PDU session establishment** — TS 23.502 fig. 4.3.2.2.1-1 likewise.

Each builder takes the serving sites explicitly, so the CPF-enhancement
experiment (Sec. V-C) can compare a classical core deployment against a
Near-RT-RIC-consolidated deployment ([38]) by literally moving the AMF/
SMF functionality to the edge and rebuilding the same procedure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geo.coords import GeoPoint
from ..ran.oran import ControlProcedure
from .nf import NetworkFunction, SbiBus

__all__ = ["ProcedureBuilder"]


class ProcedureBuilder:
    """Builds control procedures over a given SBI deployment."""

    def __init__(self, bus: SbiBus, *, air_one_way_s: float = 5e-3):
        """``air_one_way_s``: one-way UE<->gNB signalling latency (SRB)."""
        if air_one_way_s < 0:
            raise ValueError("air latency must be non-negative")
        self.bus = bus
        self.air_one_way_s = air_one_way_s

    def _nf_leg(self, proc: ControlProcedure, description: str,
                origin: GeoPoint, nf: NetworkFunction,
                rng: Optional[np.random.Generator]) -> None:
        proc.add(description,
                 self.bus.request_response_s(origin, nf, rng))

    # -- procedures ---------------------------------------------------------

    def registration(self, gnb_site: GeoPoint, *, amf: NetworkFunction,
                     ausf: NetworkFunction, udm: NetworkFunction,
                     pcf: NetworkFunction,
                     rng: Optional[np.random.Generator] = None
                     ) -> ControlProcedure:
        """UE registration: auth + subscription fetch + policy setup."""
        proc = ControlProcedure("registration")
        proc.add("UE -> gNB: RRC + NAS registration request",
                 self.air_one_way_s)
        self._nf_leg(proc, "gNB <-> AMF: N2 initial UE message",
                     gnb_site, amf, rng)
        self._nf_leg(proc, "AMF <-> AUSF: authentication",
                     amf.location, ausf, rng)
        self._nf_leg(proc, "AUSF <-> UDM: auth vectors",
                     ausf.location, udm, rng)
        proc.add("AMF <-> gNB: NAS transport (auth challenge/response)",
                 2.0 * self.bus.hop_s(amf.location, gnb_site))
        proc.add("UE <-> gNB: auth response (air)", 2 * self.air_one_way_s)
        self._nf_leg(proc, "AMF <-> UDM: registration + subscription",
                     amf.location, udm, rng)
        self._nf_leg(proc, "AMF <-> PCF: AM policy association",
                     amf.location, pcf, rng)
        proc.add("gNB -> UE: registration accept", self.air_one_way_s)
        return proc

    def pdu_session_establishment(
            self, gnb_site: GeoPoint, *, amf: NetworkFunction,
            smf: NetworkFunction, pcf: NetworkFunction,
            upf_site: GeoPoint,
            rng: Optional[np.random.Generator] = None) -> ControlProcedure:
        """PDU session setup, including the N4 leg to the UPF site."""
        proc = ControlProcedure("pdu-session-establishment")
        proc.add("UE -> gNB: NAS PDU session request", self.air_one_way_s)
        self._nf_leg(proc, "gNB <-> AMF: N2 uplink NAS",
                     gnb_site, amf, rng)
        self._nf_leg(proc, "AMF <-> SMF: CreateSMContext",
                     amf.location, smf, rng)
        self._nf_leg(proc, "SMF <-> PCF: SM policy",
                     smf.location, pcf, rng)
        proc.add("SMF <-> UPF: N4 session establishment",
                 2.0 * self.bus.hop_s(smf.location, upf_site))
        self._nf_leg(proc, "SMF <-> AMF: N1N2 message transfer",
                     smf.location, amf, rng)
        proc.add("AMF <-> gNB: N2 session resource setup",
                 2.0 * self.bus.hop_s(amf.location, gnb_site))
        proc.add("gNB -> UE: RRC reconfiguration (DRB setup)",
                 self.air_one_way_s)
        return proc

    def service_request(self, gnb_site: GeoPoint, *, amf: NetworkFunction,
                        rng: Optional[np.random.Generator] = None
                        ) -> ControlProcedure:
        """Idle-to-connected service request (the AR 'cold event' path)."""
        proc = ControlProcedure("service-request")
        proc.add("UE -> gNB: RRC resume + NAS service request",
                 self.air_one_way_s)
        self._nf_leg(proc, "gNB <-> AMF: N2 service request",
                     gnb_site, amf, rng)
        proc.add("gNB -> UE: RRC resume complete", self.air_one_way_s)
        return proc
