"""SmartNIC offload of the UPF data plane (Jain et al. [32], [33]).

The cited measurements: moving the UPF's packet pipeline onto a SmartNIC
— bypassing host memory and the PCIe bus — *doubles* throughput and cuts
packet-processing latency by a factor of **3.75**.  The offload below
applies exactly those published factors to a
:class:`~repro.cn.upf.UserPlaneFunction`, plus the part the papers
explain mechanistically: rule lookup moves into NIC match-action tables,
whose TCAM-style lookups are effectively O(1) in the rule count.
"""

from __future__ import annotations

from dataclasses import replace

from .upf import UserPlaneFunction

__all__ = ["THROUGHPUT_GAIN", "LATENCY_FACTOR", "offload"]

#: Published SmartWatch/L25GC-style gains.
THROUGHPUT_GAIN: float = 2.0
LATENCY_FACTOR: float = 3.75


def offload(upf: UserPlaneFunction, *,
            throughput_gain: float = THROUGHPUT_GAIN,
            latency_factor: float = LATENCY_FACTOR) -> UserPlaneFunction:
    """Return the SmartNIC-offloaded variant of ``upf``.

    * pipeline and per-rule costs divided by ``latency_factor``;
    * throughput multiplied by ``throughput_gain``;
    * utilisation drops accordingly (same offered load over doubled
      capacity), keeping comparisons load-honest.
    """
    if upf.smartnic:
        raise ValueError(f"UPF {upf.name!r} is already offloaded")
    if throughput_gain < 1.0 or latency_factor < 1.0:
        raise ValueError("offload factors must be >= 1")
    return replace(
        upf,
        name=f"{upf.name}+smartnic",
        pipeline_s=upf.pipeline_s / latency_factor,
        rule_scan_s=upf.rule_scan_s / latency_factor,
        throughput_bps=upf.throughput_bps * throughput_gain,
        load=upf.load / throughput_gain,
        smartnic=True,
    )
