"""Synthetic population-density raster (Statistik Austria substitute).

The paper aligns its measurements to the 1 km population raster of
Statistik Austria [18] and uses it for exactly two things:

1. cells in *border regions* with density below 1000 inhabitants/km2
   receive fewer than ten measurements and are masked (shown as 0.0 in
   Fig. 2), and
2. probe/peer density tracks where people are.

That proprietary raster is replaced by a radial urban-density model: a
dense core (Klagenfurt's core raster cells are ~3000-4500 /km2) decaying
exponentially toward the periphery — the canonical Clark (1951) model of
urban population density.  Only the density *ordering* across cells
matters for the evaluation, which the model preserves by construction.
"""

from __future__ import annotations

import math
from typing import Mapping

from .coords import GeoPoint
from .grid import CellId, Grid

__all__ = ["PopulationModel", "RadialPopulationModel", "RasterPopulationModel"]


class PopulationModel:
    """Interface: population density (inhabitants/km2) at a point."""

    def density_at(self, point: GeoPoint) -> float:
        """Population density (inhabitants/km2) at ``point``."""
        raise NotImplementedError

    def cell_density(self, grid: Grid, cell: CellId) -> float:
        """Density at the cell centroid (1 km cells are small enough
        that centroid sampling matches areal averaging to within the
        model's own accuracy)."""
        return self.density_at(grid.cell_center(cell))


class RadialPopulationModel(PopulationModel):
    """Clark's exponential urban density: ``d(r) = d0 * exp(-r / scale)``.

    Parameters
    ----------
    centre:
        Location of peak density (the city core).
    core_density:
        Density at the core, inhabitants/km2.
    scale_m:
        e-folding radius, metres.  Klagenfurt's built-up area is ~5 km
        across; a 2 km scale puts the 1000/km2 contour ~3 km from the
        core, matching the paper's observation that only *border* cells
        fall below 1000/km2.
    floor:
        Rural background density far from the core.
    """

    def __init__(self, centre: GeoPoint, core_density: float = 4200.0,
                 scale_m: float = 2000.0, floor: float = 40.0):
        if core_density <= 0 or scale_m <= 0 or floor < 0:
            raise ValueError("densities and scale must be positive")
        if floor >= core_density:
            raise ValueError("floor density must be below core density")
        self.centre = centre
        self.core_density = float(core_density)
        self.scale_m = float(scale_m)
        self.floor = float(floor)

    def density_at(self, point: GeoPoint) -> float:
        """Clark-model density at ``point``."""
        r = self.centre.distance_to(point)
        return self.floor + (self.core_density - self.floor) * math.exp(
            -r / self.scale_m)

    def contour_radius_m(self, density: float) -> float:
        """Radius at which the model crosses ``density`` (inverse model)."""
        if not self.floor < density <= self.core_density:
            raise ValueError(
                f"density {density} outside ({self.floor}, "
                f"{self.core_density}]")
        return -self.scale_m * math.log(
            (density - self.floor) / (self.core_density - self.floor))


class RasterPopulationModel(PopulationModel):
    """Density given explicitly per grid cell (for tests and what-ifs).

    ``default`` is returned for cells without an explicit entry and for
    arbitrary points (a raster has no meaning off-grid).
    """

    def __init__(self, grid: Grid, cell_densities: Mapping[CellId, float],
                 default: float = 0.0):
        for cell, dens in cell_densities.items():
            if cell not in grid:
                raise KeyError(f"cell {cell.label} outside grid")
            if dens < 0:
                raise ValueError(f"negative density for {cell.label}")
        self.grid = grid
        self._cells = dict(cell_densities)
        self.default = float(default)

    def density_at(self, point: GeoPoint) -> float:
        """Raster density at ``point`` (``default`` off-grid)."""
        cell = self.grid.locate(point)
        if cell is None:
            return self.default
        return self._cells.get(cell, self.default)

    def cell_density(self, grid: Grid, cell: CellId) -> float:
        """Raster density of ``cell``."""
        if grid is not self.grid and cell not in grid:
            raise KeyError(f"cell {cell.label} outside grid")
        return self._cells.get(cell, self.default)
