"""WGS-84 coordinates and great-circle geometry.

Implements the spherical-earth approximations used throughout the
evaluation: haversine distances (grid sizing, route lengths such as the
2544 km Vienna-Prague-Bucharest detour of Fig. 4), initial bearings, and
destination points (mobility models move nodes by bearing + distance).

Scalar operations live on :class:`GeoPoint`; bulk operations
(:func:`haversine_matrix`, :func:`path_length`) are vectorised NumPy for
campaign-scale workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "EARTH_RADIUS_M",
    "GeoPoint",
    "haversine",
    "haversine_many",
    "haversine_matrix",
    "initial_bearing",
    "destination_point",
    "path_length",
]

#: Mean earth radius (IUGG), metres.
EARTH_RADIUS_M: float = 6_371_008.8


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS-84 latitude/longitude pair, degrees.

    Latitude in [-90, 90], longitude normalised to [-180, 180).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat!r} outside [-90, 90]")
        # Normalise longitude without rejecting e.g. 181 -> -179.
        lon = ((self.lon + 180.0) % 360.0) - 180.0
        object.__setattr__(self, "lon", lon)

    def distance_to(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in metres."""
        return haversine(self.lat, self.lon, other.lat, other.lon)

    def bearing_to(self, other: "GeoPoint") -> float:
        """Initial great-circle bearing to ``other``, degrees in [0, 360)."""
        return initial_bearing(self.lat, self.lon, other.lat, other.lon)

    def destination(self, bearing_deg: float, distance_m: float) -> "GeoPoint":
        """Point reached travelling ``distance_m`` at ``bearing_deg``."""
        return destination_point(self, bearing_deg, distance_m)

    def __str__(self) -> str:
        return f"({self.lat:.4f}, {self.lon:.4f})"


def haversine(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two points, metres (scalar path)."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlam = math.radians(lon2 - lon1)
    a = (math.sin(dphi / 2.0) ** 2
         + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2)
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def haversine_matrix(lats1: np.ndarray, lons1: np.ndarray,
                     lats2: np.ndarray, lons2: np.ndarray) -> np.ndarray:
    """Pairwise great-circle distances (broadcasting), metres.

    Inputs broadcast against each other, so an ``(n, 1)`` against ``(m,)``
    call yields the full ``(n, m)`` distance matrix without Python loops.
    """
    phi1 = np.radians(np.asarray(lats1, dtype=np.float64))
    phi2 = np.radians(np.asarray(lats2, dtype=np.float64))
    dphi = phi2 - phi1
    dlam = np.radians(np.asarray(lons2, dtype=np.float64)
                      - np.asarray(lons1, dtype=np.float64))
    a = (np.sin(dphi / 2.0) ** 2
         + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2)
    np.clip(a, 0.0, 1.0, out=a)
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(a))


def _elementwise(func, values: np.ndarray) -> np.ndarray:
    """Apply a libm scalar function per element (no SIMD shortcuts)."""
    out = np.empty_like(values)
    flat_in, flat_out = values.ravel(), out.ravel()
    for i in range(flat_in.size):
        flat_out[i] = func(flat_in[i])
    return out


def _pysquare(values: np.ndarray) -> np.ndarray:
    """Elementwise ``x ** 2`` through CPython's float pow (not ``x*x``)."""
    out = np.empty_like(values)
    flat_in, flat_out = values.ravel(), out.ravel()
    for i in range(flat_in.size):
        flat_out[i] = float(flat_in[i]) ** 2
    return out


def haversine_many(lats1, lons1, lats2, lons2) -> np.ndarray:
    """Broadcasting great-circle distances, bit-identical to the scalar.

    Unlike :func:`haversine_matrix` (which is free to use whatever is
    fastest), every element of the result is guaranteed to equal
    ``haversine(lat1, lon1, lat2, lon2)`` *bitwise* — the contract the
    measurement kernel's precomputed serving tables rely on, on every
    platform.  Only IEEE-exact single operations (multiply, subtract,
    add, sqrt, minimum) are vectorised; every transcendental runs
    through libm per element, because NumPy may dispatch float64
    ``sin``/``cos``/``arcsin``/``x**2`` to SIMD implementations
    (e.g. vendored SVML on AVX512 hosts) that land one ulp away from
    the ``math`` module — enough to flip a downstream serving-cell
    argmax tie and change every random draw after it.
    """
    phi1 = np.radians(np.asarray(lats1, dtype=np.float64))
    phi2 = np.radians(np.asarray(lats2, dtype=np.float64))
    dphi = phi2 - phi1
    dlam = np.radians(np.asarray(lons2, dtype=np.float64)
                      - np.asarray(lons1, dtype=np.float64))
    sin_dphi = _pysquare(_elementwise(math.sin, dphi / 2.0))
    sin_dlam = _pysquare(_elementwise(math.sin, dlam / 2.0))
    cos1 = _elementwise(math.cos, phi1)
    cos2 = _elementwise(math.cos, phi2)
    a = sin_dphi + cos1 * cos2 * sin_dlam
    s = np.minimum(np.sqrt(a), 1.0)
    return 2.0 * EARTH_RADIUS_M * _elementwise(math.asin, s)


def initial_bearing(lat1: float, lon1: float,
                    lat2: float, lon2: float) -> float:
    """Initial great-circle bearing from point 1 to point 2, degrees."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dlam = math.radians(lon2 - lon1)
    y = math.sin(dlam) * math.cos(phi2)
    x = (math.cos(phi1) * math.sin(phi2)
         - math.sin(phi1) * math.cos(phi2) * math.cos(dlam))
    return math.degrees(math.atan2(y, x)) % 360.0


def destination_point(origin: GeoPoint, bearing_deg: float,
                      distance_m: float) -> GeoPoint:
    """Great-circle destination from ``origin``.

    Negative distances are rejected; travel the reciprocal bearing
    instead.
    """
    if distance_m < 0.0:
        raise ValueError(f"distance must be non-negative, got {distance_m!r}")
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(origin.lat)
    lam1 = math.radians(origin.lon)
    sin_phi2 = (math.sin(phi1) * math.cos(delta)
                + math.cos(phi1) * math.sin(delta) * math.cos(theta))
    phi2 = math.asin(max(-1.0, min(1.0, sin_phi2)))
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lam2 = lam1 + math.atan2(y, x)
    return GeoPoint(math.degrees(phi2), math.degrees(lam2))


def path_length(points: Sequence[GeoPoint] | Iterable[GeoPoint]) -> float:
    """Total length of a polyline of :class:`GeoPoint`, metres.

    An empty or single-point path has length zero.  Vectorised: one
    haversine evaluation over the whole polyline.
    """
    pts = list(points)
    if len(pts) < 2:
        return 0.0
    lats = np.array([p.lat for p in pts], dtype=np.float64)
    lons = np.array([p.lon for p in pts], dtype=np.float64)
    legs = haversine_matrix(lats[:-1], lons[:-1], lats[1:], lons[1:])
    return float(legs.sum())
