"""Gazetteer of locations appearing in the evaluation.

Coordinates are city centres (or campus centroids) good to ~1 km, which is
all the latency model needs: at 5 us/km of fibre, a 1 km error is 5 ns.

``FIBRE_CIRCUITY`` captures that deployed long-haul fibre follows
railways, roads and river valleys rather than great circles.  Published
measurements put the detour factor at 1.2-1.5 for intra-continental
paths; the paper's Fig. 4 route (Klagenfurt-Vienna-Prague-Bucharest-
Vienna, reported as 2544 km) corresponds to a factor of ~1.05 over the
great-circle leg sum because the hop cities are themselves the detour.
We keep the per-leg factor separate so both notions stay available.
"""

from __future__ import annotations

from .coords import GeoPoint, path_length

__all__ = [
    "PLACES",
    "place",
    "KLAGENFURT",
    "UNIVERSITY_KLAGENFURT",
    "VIENNA",
    "PRAGUE",
    "BUCHAREST",
    "GRAZ",
    "FRANKFURT",
    "FIBRE_CIRCUITY",
    "route_distance_m",
]

#: Per-leg fibre detour factor (deployed route length / great circle).
FIBRE_CIRCUITY: float = 1.05

#: Known locations.  Values are (lat, lon) WGS-84 degrees.
PLACES: dict[str, GeoPoint] = {
    # Evaluation region
    "klagenfurt": GeoPoint(46.6247, 14.3050),
    "university_klagenfurt": GeoPoint(46.6167, 14.2653),
    # Fig. 4 detour cities
    "vienna": GeoPoint(48.2082, 16.3738),
    "prague": GeoPoint(50.0755, 14.4378),
    "bucharest": GeoPoint(44.4268, 26.1025),
    # Other infrastructure anchors
    "graz": GeoPoint(47.0707, 15.4395),
    "frankfurt": GeoPoint(50.1109, 8.6821),
    "exoscale_vienna": GeoPoint(48.1517, 16.3000),  # cloud region used in [3]
}


def place(name: str) -> GeoPoint:
    """Look up a gazetteer entry by (case-insensitive) name."""
    try:
        return PLACES[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(PLACES))
        raise KeyError(f"unknown place {name!r}; known: {known}") from None


KLAGENFURT = PLACES["klagenfurt"]
UNIVERSITY_KLAGENFURT = PLACES["university_klagenfurt"]
VIENNA = PLACES["vienna"]
PRAGUE = PLACES["prague"]
BUCHAREST = PLACES["bucharest"]
GRAZ = PLACES["graz"]
FRANKFURT = PLACES["frankfurt"]


def route_distance_m(*waypoints: GeoPoint,
                     circuity: float = FIBRE_CIRCUITY) -> float:
    """Deployed-fibre length of a route through ``waypoints``, metres.

    Great-circle leg sum scaled by the ``circuity`` detour factor.
    """
    if circuity < 1.0:
        raise ValueError(f"circuity factor must be >= 1, got {circuity!r}")
    return path_length(waypoints) * circuity
