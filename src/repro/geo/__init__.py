"""Geographic substrate: coordinates, grid segmentation, population, mobility."""


from __future__ import annotations

from .coords import (
    EARTH_RADIUS_M,
    GeoPoint,
    destination_point,
    haversine,
    haversine_many,
    haversine_matrix,
    initial_bearing,
    path_length,
)
from .grid import CellId, Grid
from .mobility import (
    DriveTestRoute,
    ManhattanMobility,
    MobilitySample,
    RandomWaypoint,
)
from .places import (
    BUCHAREST,
    FIBRE_CIRCUITY,
    FRANKFURT,
    GRAZ,
    KLAGENFURT,
    PLACES,
    PRAGUE,
    UNIVERSITY_KLAGENFURT,
    VIENNA,
    place,
    route_distance_m,
)
from .population import (
    PopulationModel,
    RadialPopulationModel,
    RasterPopulationModel,
)

__all__ = [
    "EARTH_RADIUS_M", "GeoPoint", "haversine", "haversine_many",
    "haversine_matrix",
    "initial_bearing", "destination_point", "path_length",
    "CellId", "Grid",
    "MobilitySample", "DriveTestRoute", "RandomWaypoint", "ManhattanMobility",
    "PLACES", "place", "KLAGENFURT", "UNIVERSITY_KLAGENFURT", "VIENNA",
    "PRAGUE", "BUCHAREST", "GRAZ", "FRANKFURT", "FIBRE_CIRCUITY",
    "route_distance_m",
    "PopulationModel", "RadialPopulationModel", "RasterPopulationModel",
]
