"""Geographical grid segmentation (the paper's Fig. 1 methodology).

The evaluation partitions each *sector* (an urban region) into square
*cells* following the partitioning methodology the paper cites ([17]) with
the 1 km cell dimension of the Statistik Austria raster ([18]).  Cells are
labelled ``<column letter><row number>`` — columns ``A..F`` run west to
east, rows ``1..7`` run *north to south* (row 1 is the top row of the
figure, as in the paper's heatmaps).

The grid is a local tangent-plane approximation: rows are spaced by
``cell_size`` along the meridian, columns by ``cell_size`` along the
parallel through the grid origin.  At Klagenfurt's latitude the distortion
across a 6 km x 7 km patch is far below the cell size, so cell membership
is unambiguous.
"""

from __future__ import annotations

import math
import string
from dataclasses import dataclass
from typing import Iterator, Optional

from .coords import EARTH_RADIUS_M, GeoPoint

__all__ = ["CellId", "Grid"]


@dataclass(frozen=True, slots=True, order=True)
class CellId:
    """A grid-cell label such as ``C1`` (column ``C``, row ``1``)."""

    col: int  #: zero-based column index (0 = 'A', west-most)
    row: int  #: zero-based row index (0 = row '1', north-most)

    def __post_init__(self) -> None:
        if self.col < 0 or self.row < 0:
            raise ValueError(f"cell indices must be non-negative: {self!r}")
        if self.col >= 26:
            raise ValueError("grids wider than 26 columns are not supported")

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``'C3'``."""
        return f"{string.ascii_uppercase[self.col]}{self.row + 1}"

    @classmethod
    def from_label(cls, label: str) -> "CellId":
        """Parse labels like ``'C3'`` (case-insensitive)."""
        text = label.strip().upper()
        if len(text) < 2 or text[0] not in string.ascii_uppercase:
            raise ValueError(f"malformed cell label {label!r}")
        try:
            row = int(text[1:])
        except ValueError:
            raise ValueError(f"malformed cell label {label!r}") from None
        if row < 1:
            raise ValueError(f"row in {label!r} must be >= 1")
        return cls(col=string.ascii_uppercase.index(text[0]), row=row - 1)

    def __str__(self) -> str:
        return self.label


class Grid:
    """A ``cols x rows`` grid of square cells anchored at a NW corner.

    Parameters
    ----------
    origin:
        Geographic position of the grid's *north-west* corner.
    cell_size_m:
        Side length of each (square) cell, metres.  The paper uses 1 km.
    cols, rows:
        Grid dimensions.  The Klagenfurt scenario uses 6 x 7 = 42 cells
        labelled ``A1 .. F7``.
    """

    def __init__(self, origin: GeoPoint, cell_size_m: float = 1000.0,
                 cols: int = 6, rows: int = 7):
        if cell_size_m <= 0:
            raise ValueError(f"cell size must be positive, got {cell_size_m}")
        if cols < 1 or rows < 1:
            raise ValueError(f"grid must be at least 1x1, got {cols}x{rows}")
        if cols > 26:
            raise ValueError("grids wider than 26 columns are not supported")
        self.origin = origin
        self.cell_size_m = float(cell_size_m)
        self.cols = cols
        self.rows = rows
        # Metres per degree on the local tangent plane.
        self._m_per_deg_lat = math.pi * EARTH_RADIUS_M / 180.0
        self._m_per_deg_lon = (self._m_per_deg_lat
                               * math.cos(math.radians(origin.lat)))

    # -- iteration / sizing ---------------------------------------------

    @property
    def cell_count(self) -> int:
        return self.cols * self.rows

    def cells(self) -> Iterator[CellId]:
        """All cells, column-major (``A1, A2, ..., F7``)."""
        for col in range(self.cols):
            for row in range(self.rows):
                yield CellId(col, row)

    def __contains__(self, cell: CellId) -> bool:
        return 0 <= cell.col < self.cols and 0 <= cell.row < self.rows

    # -- coordinate transforms --------------------------------------------

    def _require(self, cell: CellId) -> None:
        if cell not in self:
            raise KeyError(f"cell {cell.label} outside {self.cols}x{self.rows} grid")

    def cell_origin(self, cell: CellId) -> GeoPoint:
        """NW corner of ``cell``."""
        self._require(cell)
        dlat = -(cell.row * self.cell_size_m) / self._m_per_deg_lat
        dlon = (cell.col * self.cell_size_m) / self._m_per_deg_lon
        return GeoPoint(self.origin.lat + dlat, self.origin.lon + dlon)

    def cell_center(self, cell: CellId) -> GeoPoint:
        """Centroid of ``cell``."""
        self._require(cell)
        dlat = -((cell.row + 0.5) * self.cell_size_m) / self._m_per_deg_lat
        dlon = ((cell.col + 0.5) * self.cell_size_m) / self._m_per_deg_lon
        return GeoPoint(self.origin.lat + dlat, self.origin.lon + dlon)

    def locate(self, point: GeoPoint) -> Optional[CellId]:
        """Cell containing ``point``, or ``None`` if outside the grid.

        Cells own their north and west edges (half-open intervals), so
        every interior point belongs to exactly one cell.
        """
        dlat_m = (self.origin.lat - point.lat) * self._m_per_deg_lat
        dlon_m = (point.lon - self.origin.lon) * self._m_per_deg_lon
        # The 1e-9-cell epsilon (~1 um for 1 km cells) absorbs degree<->metre
        # round-trip error so that points generated *on* a cell's own west/
        # north edge are attributed to that cell, not its neighbour.
        eps = 1e-9
        col = math.floor(dlon_m / self.cell_size_m + eps)
        row = math.floor(dlat_m / self.cell_size_m + eps)
        if 0 <= col < self.cols and 0 <= row < self.rows:
            return CellId(col, row)
        return None

    def point_in_cell(self, cell: CellId, frac_east: float,
                      frac_south: float) -> GeoPoint:
        """Point at fractional offsets within ``cell``.

        ``frac_east``/``frac_south`` in [0, 1) measured from the cell's NW
        corner; (0.5, 0.5) is the centroid.  Used by mobility models to
        place waypoints inside a target cell.
        """
        if not (0.0 <= frac_east < 1.0 and 0.0 <= frac_south < 1.0):
            raise ValueError("fractional offsets must lie in [0, 1)")
        self._require(cell)
        dlat = -((cell.row + frac_south) * self.cell_size_m) / self._m_per_deg_lat
        dlon = ((cell.col + frac_east) * self.cell_size_m) / self._m_per_deg_lon
        return GeoPoint(self.origin.lat + dlat, self.origin.lon + dlon)

    def neighbours(self, cell: CellId) -> list[CellId]:
        """4-connected neighbours inside the grid (N, S, W, E order)."""
        self._require(cell)
        candidates = [
            CellId(cell.col, cell.row - 1) if cell.row > 0 else None,
            CellId(cell.col, cell.row + 1) if cell.row < self.rows - 1 else None,
            CellId(cell.col - 1, cell.row) if cell.col > 0 else None,
            CellId(cell.col + 1, cell.row) if cell.col < self.cols - 1 else None,
        ]
        return [c for c in candidates if c is not None]

    def is_border(self, cell: CellId) -> bool:
        """True for cells on the grid boundary (the paper's border region)."""
        self._require(cell)
        return (cell.col in (0, self.cols - 1)
                or cell.row in (0, self.rows - 1))

    def boustrophedon_order(self) -> list[CellId]:
        """Serpentine traversal order used by the drive-test route.

        Row 1 west->east, row 2 east->west, and so on — the natural way a
        vehicle covers a street grid without revisiting cells.
        """
        order: list[CellId] = []
        for row in range(self.rows):
            cols = range(self.cols) if row % 2 == 0 else range(
                self.cols - 1, -1, -1)
            order.extend(CellId(col, row) for col in cols)
        return order

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Grid({self.cols}x{self.rows}, "
                f"cell={self.cell_size_m:g} m, origin={self.origin})")
