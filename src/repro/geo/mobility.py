"""Mobility models for the drive-test campaign and urban UEs.

The campaign of Section IV drives mobile nodes through the grid cells
while adhering to "traffic flow dynamics and local traffic regulations" —
i.e. the per-cell dwell time (and hence sample count) varies with
traffic.  Three models cover the needs:

* :class:`DriveTestRoute` — deterministic serpentine coverage of a set of
  target cells with stochastic per-cell dwell times and within-cell
  waypoints; produces the measurement positions for Fig. 2/3.
* :class:`RandomWaypoint` — the classic entity model, for background UEs.
* :class:`ManhattanMobility` — street-grid constrained movement ([17]'s
  urban pedestrian/vehicle setting), for mobility-management tests.

All models are generators of :class:`MobilitySample` and draw exclusively
from injected RNG streams, keeping campaigns reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from .coords import GeoPoint
from .grid import CellId, Grid

__all__ = [
    "MobilitySample",
    "DriveTestRoute",
    "RandomWaypoint",
    "ManhattanMobility",
]


@dataclass(frozen=True, slots=True)
class MobilitySample:
    """Position of a mobile node at a point in time."""

    time: float          #: seconds since campaign start
    position: GeoPoint
    cell: Optional[CellId]  #: grid cell containing the position (if any)


class DriveTestRoute:
    """Serpentine drive through ``target_cells`` with per-cell dwelling.

    For each visited cell the vehicle takes ``measurements_in(cell)``
    positions at random street locations inside the cell, separated by
    ``sample_interval_s``.  Travel time between consecutive cells is the
    centre-to-centre distance at ``speed_mps`` (urban driving).

    The number of measurements per cell is Poisson around a mean
    proportional to the cell's traffic weight, truncated to at least
    ``min_samples`` — matching the paper, where counts "varied, influenced
    by adherence to traffic flow dynamics".
    """

    def __init__(self, grid: Grid, target_cells: Sequence[CellId],
                 rng: np.random.Generator, *,
                 traffic_weight: Optional[dict[CellId, float]] = None,
                 mean_samples_per_cell: float = 24.0,
                 min_samples: int = 10,
                 sample_interval_s: float = 8.0,
                 speed_mps: float = 8.33):
        if not target_cells:
            raise ValueError("drive-test route needs at least one cell")
        for cell in target_cells:
            if cell not in grid:
                raise KeyError(f"target cell {cell.label} outside grid")
        if mean_samples_per_cell <= 0 or sample_interval_s <= 0:
            raise ValueError("sampling parameters must be positive")
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        self.grid = grid
        self.rng = rng
        self.mean_samples_per_cell = mean_samples_per_cell
        self.min_samples = min_samples
        self.sample_interval_s = sample_interval_s
        self.speed_mps = speed_mps
        self.traffic_weight = dict(traffic_weight or {})
        # Deterministic visiting order: serpentine, filtered to targets.
        targets = set(target_cells)
        self.visit_order: list[CellId] = [
            c for c in grid.boustrophedon_order() if c in targets]

    def measurements_in(self, cell: CellId) -> int:
        """Sample the number of measurement positions for ``cell``."""
        weight = self.traffic_weight.get(cell, 1.0)
        lam = self.mean_samples_per_cell * weight
        n = int(self.rng.poisson(lam))
        return max(self.min_samples, n)

    def walk(self) -> Iterator[MobilitySample]:
        """Yield measurement positions along the whole route."""
        t = 0.0
        prev_centre: Optional[GeoPoint] = None
        for cell in self.visit_order:
            centre = self.grid.cell_center(cell)
            if prev_centre is not None:
                t += prev_centre.distance_to(centre) / self.speed_mps
            prev_centre = centre
            for _ in range(self.measurements_in(cell)):
                frac_e, frac_s = self.rng.random(2)
                pos = self.grid.point_in_cell(cell, float(frac_e),
                                              float(frac_s))
                yield MobilitySample(time=t, position=pos, cell=cell)
                t += self.sample_interval_s


class RandomWaypoint:
    """Random-waypoint mobility inside the grid's bounding box.

    Pick a uniform destination, travel at a uniform speed from
    ``speed_range``, pause for ``pause_s``, repeat.  Samples are emitted
    every ``sample_interval_s`` along the way.
    """

    def __init__(self, grid: Grid, rng: np.random.Generator, *,
                 speed_range: tuple[float, float] = (0.5, 1.5),
                 pause_s: float = 30.0,
                 sample_interval_s: float = 1.0,
                 start: Optional[GeoPoint] = None):
        lo, hi = speed_range
        if not 0 < lo <= hi:
            raise ValueError(f"bad speed range {speed_range!r}")
        if sample_interval_s <= 0 or pause_s < 0:
            raise ValueError("intervals must be positive")
        self.grid = grid
        self.rng = rng
        self.speed_range = speed_range
        self.pause_s = pause_s
        self.sample_interval_s = sample_interval_s
        self._pos = start if start is not None else self._uniform_point()
        if start is not None and grid.locate(start) is None:
            raise ValueError("start position lies outside the grid")

    def _uniform_point(self) -> GeoPoint:
        col = int(self.rng.integers(0, self.grid.cols))
        row = int(self.rng.integers(0, self.grid.rows))
        fe, fs = self.rng.random(2)
        return self.grid.point_in_cell(CellId(col, row), float(fe), float(fs))

    def walk(self, duration_s: float) -> Iterator[MobilitySample]:
        """Yield position samples for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        t = 0.0
        pos = self._pos
        while t < duration_s:
            dest = self._uniform_point()
            dist = pos.distance_to(dest)
            speed = float(self.rng.uniform(*self.speed_range))
            travel = dist / speed
            bearing = pos.bearing_to(dest) if dist > 0 else 0.0
            elapsed = 0.0
            while elapsed < travel and t < duration_s:
                step = min(self.sample_interval_s, travel - elapsed)
                elapsed += step
                t += step
                covered = min(speed * elapsed, dist)
                pos = self._pos.destination(bearing, covered) \
                    if dist > 0 else pos
                yield MobilitySample(t, pos, self.grid.locate(pos))
            self._pos = pos
            t += self.pause_s


class ManhattanMobility:
    """Street-grid mobility: movement restricted to cell-edge 'streets'.

    The node moves along horizontal/vertical lanes aligned with the grid
    (the Manhattan model of [17]).  At each intersection it continues
    straight with probability ``p_straight`` and otherwise turns left or
    right with equal probability; dead ends force a turn.
    """

    def __init__(self, grid: Grid, rng: np.random.Generator, *,
                 speed_mps: float = 8.33, p_straight: float = 0.5,
                 start_cell: Optional[CellId] = None):
        if not 0.0 <= p_straight <= 1.0:
            raise ValueError("p_straight must be a probability")
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        self.grid = grid
        self.rng = rng
        self.speed_mps = speed_mps
        self.p_straight = p_straight
        if start_cell is None:
            start_cell = CellId(grid.cols // 2, grid.rows // 2)
        if start_cell not in grid:
            raise KeyError(f"start cell {start_cell.label} outside grid")
        self._cell = start_cell
        #: heading as (dcol, drow); start heading east
        self._heading = (1, 0)

    _TURNS = {
        (1, 0): [(0, -1), (0, 1)],     # east -> north/south
        (-1, 0): [(0, -1), (0, 1)],
        (0, 1): [(-1, 0), (1, 0)],     # south -> west/east
        (0, -1): [(-1, 0), (1, 0)],
    }

    def _next_heading(self) -> tuple[int, int]:
        options = []
        if self.rng.random() < self.p_straight:
            options = [self._heading] + self._TURNS[self._heading]
        else:
            options = self._TURNS[self._heading] + [self._heading]
        for dcol, drow in options:
            col, row = self._cell.col + dcol, self._cell.row + drow
            if 0 <= col < self.grid.cols and 0 <= row < self.grid.rows:
                return (dcol, drow)
        # Fully blocked (1x1 grid): reverse.
        return (-self._heading[0], -self._heading[1])

    def walk(self, steps: int) -> Iterator[MobilitySample]:
        """Yield one sample per intersection for ``steps`` moves."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        t = 0.0
        hop_time = self.grid.cell_size_m / self.speed_mps
        yield MobilitySample(t, self.grid.cell_center(self._cell), self._cell)
        for _ in range(steps):
            self._heading = self._next_heading()
            col = self._cell.col + self._heading[0]
            row = self._cell.row + self._heading[1]
            if not (0 <= col < self.grid.cols and 0 <= row < self.grid.rows):
                continue   # reversed on a 1x1 grid: stay put
            self._cell = CellId(col, row)
            t += hop_time
            yield MobilitySample(t, self.grid.cell_center(self._cell),
                                 self._cell)
