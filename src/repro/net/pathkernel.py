"""Compiled path-latency sampler: the deterministic part, precomputed.

:meth:`Topology.path_latency` re-walks a path link by link on every
call, rebuilding :class:`~repro.net.latency.LatencyBreakdown` objects
for components that never change — propagation, serialization and
forwarding are pure functions of ``(path, size_bits)``.  A
:class:`CompiledPath` folds those once at compile time and keeps only
the *stochastic* per-link queueing draws in the sampling loop, in the
exact order (forward links, then reverse links) the scalar walk makes
them, so the named-stream RNG consumption — and therefore every
downstream bit — is unchanged.

Bit-identity notes (load-bearing, do not "simplify"):

* the deterministic components are folded left-to-right in link order,
  matching the ``LatencyBreakdown`` accumulation of the scalar walk —
  float addition is not associative;
* links with zero utilisation or zero service time draw nothing in
  :func:`~repro.net.queueing.sample_mm1_wait`, so they are excluded
  from the stochastic list rather than drawn-and-discarded;
* each stochastic link consumes exactly one uniform and one
  exponential (scalar draws are stream-equivalent to the ``size=1``
  array draws the scalar path makes);
* a compiled path snapshots link utilisations — recompile after
  mutating the topology.
"""

from __future__ import annotations

import numpy as np

from .link import REFERENCE_PACKET_BITS

__all__ = ["CompiledPath"]


class CompiledPath:
    """One direction-pair of a path, compiled for repeated RTT sampling.

    ``sample_round_trip(rng)`` returns a float bitwise-equal to
    ``topology.round_trip(path, size_bits, rng).total`` while consuming
    the generator identically.
    """

    __slots__ = ("path", "size_bits", "_det_prop", "_det_trans",
                 "_det_proc", "_fwd_det", "_back_det",
                 "_stoch_fwd", "_stoch_back")

    def __init__(self, topology, path, size_bits=REFERENCE_PACKET_BITS):
        if len(path) < 2:
            raise ValueError("path must contain at least two nodes")
        self.path = tuple(path)
        self.size_bits = float(size_bits)
        fwd = self._compile(topology, list(self.path))
        back = self._compile(topology, list(self.path)[::-1])
        self._det_prop = fwd[0] + back[0]
        self._det_trans = fwd[1] + back[1]
        self._det_proc = fwd[2] + back[2]
        #: per-direction (prop, trans, proc) for echo-style totals,
        #: which sum each direction's breakdown before combining.
        self._fwd_det = (fwd[0], fwd[1], fwd[2])
        self._back_det = (back[0], back[1], back[2])
        #: (rho, exponential scale) per stochastic link in walk order.
        #: Kept per direction: the scalar walk folds each direction's
        #: queueing from zero and then adds the two partial sums, and
        #: float addition is not associative.
        self._stoch_fwd: tuple[tuple[float, float], ...] = fwd[3]
        self._stoch_back: tuple[tuple[float, float], ...] = back[3]

    def _compile(self, topology, path):
        prop = 0.0
        trans = 0.0
        stochastic: list[tuple[float, float]] = []
        for a, b in zip(path, path[1:]):
            link = topology.link(a, b)
            prop = prop + link.propagation_delay()
            service = link.transmission_delay(self.size_bits)
            trans = trans + service
            rho = link.utilisation
            if rho > 0.0 and service > 0.0:
                # Mirrors sample_mm1_wait's arithmetic exactly.
                mu = 1.0 / service
                lam = rho * mu
                stochastic.append((rho, 1.0 / (mu - lam)))
        proc = sum(topology.node(n).forwarding_delay_s for n in path[1:-1])
        return prop, trans, proc, tuple(stochastic)

    @property
    def deterministic_total(self) -> float:
        """Round-trip total with all queueing draws at zero."""
        return ((self._det_prop + self._det_trans) + 0.0) + self._det_proc

    @property
    def stochastic_link_count(self) -> int:
        """Queue draws (uniform+exponential pairs) per round trip."""
        return len(self._stoch_fwd) + len(self._stoch_back)

    @staticmethod
    def _sample_direction(stochastic, random, exponential) -> float:
        queueing = 0.0
        for rho, scale in stochastic:
            busy = random() < rho
            wait = exponential(scale)
            if busy:
                queueing = queueing + float(wait)
        return queueing

    def sample_round_trip(self, rng: np.random.Generator) -> float:
        """One sampled RTT total over the compiled path."""
        random = rng.random
        exponential = rng.exponential
        qf = self._sample_direction(self._stoch_fwd, random, exponential)
        qb = self._sample_direction(self._stoch_back, random, exponential)
        return ((self._det_prop + self._det_trans) + (qf + qb)) \
            + self._det_proc

    def sample_echo(self, rng: np.random.Generator) -> float:
        """One echo RTT: each direction's total summed *before* adding.

        Matches ``path_latency(path).total + path_latency(path[::-1])
        .total`` — the composition :func:`repro.probes.ping.ping` uses,
        which associates differently from :meth:`sample_round_trip`.
        """
        random = rng.random
        exponential = rng.exponential
        pf, tf, prf = self._fwd_det
        qf = self._sample_direction(self._stoch_fwd, random, exponential)
        pb, tb, prb = self._back_det
        qb = self._sample_direction(self._stoch_back, random, exponential)
        return (((pf + tf) + qf) + prf) + (((pb + tb) + qb) + prb)
