"""Queueing-theory delay models.

Load-dependent delay is what separates the paper's quiet-cell (sigma =
1.8 ms at B3) from congested-cell (sigma = 46.4 ms at E5) behaviour.
Links and schedulers use these canonical single-server results:

* M/M/1  — exponential service; the default for router egress queues.
* M/D/1  — deterministic service; fits fixed-size TTI radio grants.
* M/G/1  — general service via Pollaczek-Khinchine.

All functions return *waiting time in queue* (excluding service) in the
same time unit as the supplied service time, and raise for utilisation
outside ``[0, 1)`` — an overloaded queue has no steady state, and
silently returning infinity hides modelling errors.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mm1_wait",
    "md1_wait",
    "mg1_wait",
    "mm1_residence",
    "utilisation_check",
    "sample_mm1_wait",
]


def utilisation_check(rho: float) -> None:
    """Validate a utilisation value for steady-state formulas."""
    if not 0.0 <= rho < 1.0:
        raise ValueError(
            f"utilisation must be in [0, 1) for steady state, got {rho!r}")


def mm1_wait(rho: float, service_time: float) -> float:
    """Mean M/M/1 waiting time: ``W_q = rho / (1 - rho) * E[S]``."""
    utilisation_check(rho)
    if service_time < 0:
        raise ValueError("service time must be non-negative")
    return rho / (1.0 - rho) * service_time


def md1_wait(rho: float, service_time: float) -> float:
    """Mean M/D/1 waiting time: half the M/M/1 value.

    ``W_q = rho / (2 (1 - rho)) * E[S]`` — deterministic service halves
    the queueing penalty, which is why TTI-aligned radio grants behave
    better than their utilisation suggests.
    """
    utilisation_check(rho)
    if service_time < 0:
        raise ValueError("service time must be non-negative")
    return rho / (2.0 * (1.0 - rho)) * service_time


def mg1_wait(rho: float, service_time: float, service_scv: float) -> float:
    """Mean M/G/1 waiting time (Pollaczek-Khinchine).

    ``W_q = rho (1 + C_s^2) / (2 (1 - rho)) * E[S]`` with ``C_s^2`` the
    squared coefficient of variation of service time.  ``service_scv=1``
    recovers M/M/1; ``service_scv=0`` recovers M/D/1.
    """
    utilisation_check(rho)
    if service_time < 0:
        raise ValueError("service time must be non-negative")
    if service_scv < 0:
        raise ValueError("squared coefficient of variation must be >= 0")
    return rho * (1.0 + service_scv) / (2.0 * (1.0 - rho)) * service_time


def mm1_residence(rho: float, service_time: float) -> float:
    """Mean M/M/1 residence (wait + service): ``E[S] / (1 - rho)``."""
    utilisation_check(rho)
    if service_time < 0:
        raise ValueError("service time must be non-negative")
    return service_time / (1.0 - rho)


def sample_mm1_wait(rho: float, service_time: float,
                    rng: np.random.Generator,
                    size: int | None = None) -> float | np.ndarray:
    """Sample per-packet M/M/1 waiting times.

    The M/M/1 waiting-time distribution is a point mass ``1 - rho`` at
    zero plus an exponential tail: ``P(W > t) = rho * exp(-(mu - lambda) t)``.
    Sampling it (rather than adding the mean) is what gives simulated
    RTT series realistic dispersion — the Fig. 3 heatmap is a map of
    exactly this dispersion.
    """
    utilisation_check(rho)
    if service_time < 0:
        raise ValueError("service time must be non-negative")
    if service_time == 0.0 or rho == 0.0:
        return 0.0 if size is None else np.zeros(size)
    mu = 1.0 / service_time
    lam = rho * mu
    n = 1 if size is None else size
    busy = rng.random(n) < rho
    waits = np.where(busy, rng.exponential(1.0 / (mu - lam), n), 0.0)
    return float(waits[0]) if size is None else waits
