"""Internet exchange points and peering fabrics.

An IXP is where the paper's Sec. V-A remedy happens: ASes present at the
same exchange can peer settlement-free, collapsing the multi-country
detour of Fig. 4 into a metro-local hop (the Gupta et al. result the
paper cites: IXP peering cut intra-Africa paths from 300+ ms).

Model: each member AS connects one border router to the exchange.  A
peering session between two members creates (a) a ``p2p`` edge in the
:class:`~repro.net.asn.ASGraph` and (b) a short router-level link between
their border routers, tagged with the IXP name.  The switching fabric
itself is not a routed hop — consistent with real traceroutes, where the
fabric is invisible at the IP layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geo.coords import GeoPoint
from .asn import ASGraph
from .link import Link, LinkKind
from .node import Node
from .topology import Topology
from .. import units

__all__ = ["InternetExchange"]


@dataclass
class InternetExchange:
    """A named exchange at a city, with member border routers."""

    name: str
    location: GeoPoint
    #: member ASN -> that AS's border router at the exchange
    members: dict[int, Node] = field(default_factory=dict)

    def join(self, asn: int, border_router: Node) -> None:
        """Register ``border_router`` as ``asn``'s presence at the IXP.

        The router should be at (or near) the exchange's site; a member
        more than ~100 km away is almost certainly a modelling error
        (remote peering exists but is exactly the anti-pattern the paper
        warns about, so it must be requested explicitly via
        ``allow_remote``).
        """
        self._join(asn, border_router, allow_remote=False)

    def join_remote(self, asn: int, border_router: Node) -> None:
        """Register a *remote* peering presence (Castro et al. [23])."""
        self._join(asn, border_router, allow_remote=True)

    def _join(self, asn: int, border_router: Node, allow_remote: bool) -> None:
        if border_router.asn != asn:
            raise ValueError(
                f"router {border_router.name!r} belongs to "
                f"AS{border_router.asn}, not AS{asn}")
        if asn in self.members:
            raise ValueError(f"AS{asn} already member of {self.name}")
        distance = border_router.location.distance_to(self.location)
        if distance > 100e3 and not allow_remote:
            raise ValueError(
                f"router {border_router.name!r} is {distance / 1e3:.0f} km "
                f"from {self.name}; use join_remote() for remote peering")
        self.members[asn] = border_router

    def peer(self, topology: Topology, asgraph: ASGraph,
             a: int, b: int, *, rate_bps: float = units.gbps(100.0)) -> Link:
        """Establish a bilateral peering between members ``a`` and ``b``.

        Creates the ``p2p`` relationship and the cross-connect link.
        Port speed defaults to a 100G IXP port.
        """
        for asn in (a, b):
            if asn not in self.members:
                raise KeyError(f"AS{asn} is not a member of {self.name}")
        asgraph.set_peers(a, b)
        link = Link(
            self.members[a], self.members[b],
            kind=LinkKind.VIRTUAL,
            # Cross-connects inside one facility: metres, not kilometres.
            length_m=50.0,
            rate_bps=rate_bps,
            name=f"ixp:{self.name}:{a}-{b}",
        )
        return topology.add_link(link)

    def member_count(self) -> int:
        """Number of member ASes."""
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"InternetExchange({self.name!r}, "
                f"members={sorted(self.members)})")
