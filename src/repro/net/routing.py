"""Interdomain route computation: BGP policy + hot-potato stitching.

Combines the AS-level path (from :class:`~repro.net.bgp.BGPRouter`) with
router-level intra-AS shortest paths to produce the hop-by-hop path a
packet actually takes — the object traceroute renders and the latency
model integrates over.

Hot-potato (early-exit) routing: within each transit AS the packet exits
through the border link whose egress router is *closest to the ingress
point* (standard IGP-cost egress selection).  This is the second half of
the Fig. 4 story: each AS dumps traffic at its nearest exit, no AS
optimises the end-to-end path, and the concatenation zig-zags across
Europe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from .asn import ASGraph
from .bgp import ASRoute, BGPRouter
from .topology import Topology

__all__ = ["RouteResult", "RouteComputer"]


@dataclass(frozen=True)
class RouteResult:
    """A fully resolved route between two hosts."""

    src: str
    dst: str
    path: tuple[str, ...]        #: router-level node names, inclusive
    as_path: tuple[int, ...]     #: AS-level path
    route: Optional[ASRoute]     #: the BGP route object (None if intra-AS)

    @property
    def hop_count(self) -> int:
        """Number of forwarding hops after the source (Table I counts)."""
        return len(self.path) - 1


class RouteComputer:
    """Resolves host-to-host paths through topology + policy."""

    def __init__(self, topology: Topology, asgraph: ASGraph,
                 bgp: Optional[BGPRouter] = None):
        self.topology = topology
        self.asgraph = asgraph
        self.bgp = bgp if bgp is not None else BGPRouter(asgraph)
        self._border_index: Optional[dict[tuple[int, int],
                                          list[tuple[str, str]]]] = None
        self._cache: dict[tuple[str, str], RouteResult] = {}

    # -- cache management ---------------------------------------------------

    def invalidate(self) -> None:
        """Drop caches after topology or policy changes."""
        self.bgp.invalidate()
        self._border_index = None
        self._cache.clear()

    def _borders(self) -> dict[tuple[int, int], list[tuple[str, str]]]:
        """Index inter-AS links: (from_asn, to_asn) -> [(egress, ingress)].

        Candidate lists are sorted by node-name pair so egress selection
        is deterministic under equal IGP cost.
        """
        if self._border_index is None:
            index: dict[tuple[int, int], list[tuple[str, str]]] = {}
            for link in self.topology.links():
                a_asn, b_asn = link.a.asn, link.b.asn
                if a_asn is None or b_asn is None or a_asn == b_asn:
                    continue
                index.setdefault((a_asn, b_asn), []).append(
                    (link.a.name, link.b.name))
                index.setdefault((b_asn, a_asn), []).append(
                    (link.b.name, link.a.name))
            for pair in index.values():
                pair.sort()
            self._border_index = index
        return self._border_index

    # -- path resolution ----------------------------------------------------

    def route(self, src: str, dst: str) -> RouteResult:
        """Resolve the full router path from host ``src`` to host ``dst``."""
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        src_node = self.topology.node(src)
        dst_node = self.topology.node(dst)
        if src_node.asn is None or dst_node.asn is None:
            raise ValueError(
                "route endpoints must belong to an AS "
                f"({src!r}: {src_node.asn}, {dst!r}: {dst_node.asn})")

        try:
            if src_node.asn == dst_node.asn:
                path = tuple(self.topology.shortest_path(
                    src, dst, within_asn=src_node.asn))
                result = RouteResult(src, dst, path, (src_node.asn,), None)
            else:
                as_route = self.bgp.route(src_node.asn, dst_node.asn)
                if as_route is None:
                    raise LookupError(
                        f"no policy-compliant route AS{src_node.asn} -> "
                        f"AS{dst_node.asn}")
                path = self._stitch(src, dst, as_route.as_path)
                result = RouteResult(src, dst, tuple(path),
                                     as_route.as_path, as_route)
        except nx.NetworkXNoPath as exc:
            # Normalise the graph library's exception to the documented
            # unreachability error.
            raise LookupError(str(exc)) from None
        self._cache[key] = result
        return result

    def _stitch(self, src: str, dst: str,
                as_path: tuple[int, ...]) -> list[str]:
        """Concatenate intra-AS segments along ``as_path`` (hot-potato)."""
        borders = self._borders()
        path: list[str] = [src]
        current = src
        for here, nxt in zip(as_path, as_path[1:]):
            candidates = borders.get((here, nxt))
            if not candidates:
                raise LookupError(
                    f"BGP selected AS{here} -> AS{nxt} but no border "
                    "link exists between them in the topology")
            best_segment: Optional[list[str]] = None
            best_cost = float("inf")
            best_ingress: Optional[str] = None
            for egress, ingress in candidates:
                try:
                    segment = self.topology.shortest_path(
                        current, egress, within_asn=here)
                except nx.NetworkXNoPath:
                    continue
                cost = self._segment_cost(segment)
                if cost < best_cost:
                    best_cost = cost
                    best_segment = segment
                    best_ingress = ingress
            if best_segment is None:
                raise LookupError(
                    f"no intra-AS{here} path from {current!r} to any "
                    f"border router towards AS{nxt}")
            path.extend(best_segment[1:])   # skip duplicate of `current`
            path.append(best_ingress)
            current = best_ingress
        tail = self.topology.shortest_path(
            current, dst, within_asn=as_path[-1])
        path.extend(tail[1:])
        return path

    def _segment_cost(self, segment: list[str]) -> float:
        """IGP cost of an intra-AS segment: summed link weights."""
        if len(segment) < 2:
            return 0.0
        return sum(self.topology.link(a, b).routing_weight()
                   for a, b in zip(segment, segment[1:]))
