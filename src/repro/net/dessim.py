"""Packet-level discrete-event transport over a topology.

The campaign's latency model is *analytic-sampled*: per-packet queueing
is drawn from M/M/1 distributions.  This module provides the
cross-checking alternative: actual packets moving through actual queues
on the :mod:`repro.sim` kernel.

Per link direction there is a FIFO egress queue and a server process:
serialize (transmission delay), propagate (timeout), hand to the next
hop (forwarding delay), repeat.  Flows therefore *interact* — a burst
on one link delays everyone behind it — which is exactly what the
analytic model assumes away.  ``tests/test_net_dessim.py`` validates
the two against each other: on quiet paths they agree exactly; under
Poisson cross-traffic the DES waiting times converge to the M/M/1
means the campaign samples from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..sim.engine import Event, Simulator
from ..sim.monitor import SeriesMonitor
from ..sim.resources import Store
from .topology import Topology

__all__ = ["Packet", "PacketNetwork"]


@dataclass
class Packet:
    """One packet in flight."""

    packet_id: int
    path: tuple[str, ...]          #: node names, source to destination
    size_bits: float
    created_at: float
    delivered_at: Optional[float] = None
    #: per-hop timestamps (node name, time forwarded), for debugging
    hops: list = field(default_factory=list)

    @property
    def latency_s(self) -> float:
        if self.delivered_at is None:
            raise ValueError(f"packet {self.packet_id} not delivered yet")
        return self.delivered_at - self.created_at


class PacketNetwork:
    """Event-driven packet transport over a :class:`Topology`.

    One egress queue + server process per (link, direction) pair,
    created lazily on first use.  Node forwarding delay is paid when a
    packet is accepted for forwarding; the destination's delay is not
    charged (consistent with :meth:`Topology.path_latency`).
    """

    def __init__(self, sim: Simulator, topology: Topology):
        self.sim = sim
        self.topology = topology
        self._queues: dict[tuple[str, str], Store] = {}
        self._next_id = 0
        #: latency samples of every delivered packet
        self.delivered = SeriesMonitor("delivered")

    # -- queue/server machinery ----------------------------------------

    def _egress(self, a: str, b: str) -> Store:
        """The egress queue of direction ``a -> b`` (lazily started)."""
        key = (a, b)
        queue = self._queues.get(key)
        if queue is None:
            link = self.topology.link(a, b)   # validates existence
            queue = Store(self.sim, name=f"q:{a}->{b}")
            self._queues[key] = queue
            self.sim.process(self._server(queue, a, b, link),
                             name=f"srv:{a}->{b}")
        return queue

    def _server(self, queue: Store, a: str, b: str, link):
        """Serve the egress queue: serialize, propagate, hand over."""
        sim = self.sim
        prop = link.propagation_delay()
        while True:
            item = yield queue.get()
            packet, done = item
            yield sim.timeout(link.transmission_delay(packet.size_bits))
            # Propagation does not occupy the transmitter: model it as
            # a detached delivery process so back-to-back packets
            # pipeline on the wire.
            sim.process(self._deliver_after(prop, packet, b, done),
                        name=f"wire:{a}->{b}")

    def _deliver_after(self, delay: float, packet: Packet, node: str,
                       done: Event):
        yield self.sim.timeout(delay)
        yield from self._arrive(packet, node, done)

    def _arrive(self, packet: Packet, node: str, done: Event):
        """Packet reached ``node``: deliver or forward."""
        packet.hops.append((node, self.sim.now))
        index = packet.hops and len(packet.hops)
        position = packet.path.index(node)
        if position == len(packet.path) - 1:
            packet.delivered_at = self.sim.now
            self.delivered.record(self.sim.now, packet.latency_s)
            done.succeed(packet)
            return
        # Forwarding delay at intermediate nodes, then enqueue onward.
        yield self.sim.timeout(
            self.topology.node(node).forwarding_delay_s)
        next_hop = packet.path[position + 1]
        yield self._egress(node, next_hop).put((packet, done))

    # -- public API ----------------------------------------------------------

    def send(self, path: list[str], size_bits: float) -> Event:
        """Inject one packet at ``path[0]``; returns its delivery event.

        The source host pays no forwarding delay (as in
        :meth:`Topology.path_latency` with default endpoints).
        """
        if len(path) < 2:
            raise ValueError("path must contain at least two nodes")
        for a, b in zip(path, path[1:]):
            if not self.topology.has_link(a, b):
                raise KeyError(f"no link {a!r}--{b!r} on the path")
        if size_bits <= 0:
            raise ValueError("packet size must be positive")
        packet = Packet(
            packet_id=self._next_id,
            path=tuple(path),
            size_bits=size_bits,
            created_at=self.sim.now,
        )
        self._next_id += 1
        done = self.sim.event(f"delivery:{packet.packet_id}")
        first = self._egress(path[0], path[1])
        put = first.put((packet, done))
        assert put.triggered  # unbounded queue accepts immediately
        return done

    def poisson_source(self, path: list[str], *, rate_pps: float,
                       size_bits: float, count: int,
                       rng: np.random.Generator):
        """Process generator: ``count`` Poisson arrivals along ``path``."""
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if count < 1:
            raise ValueError("need at least one packet")

        def source():
            for _ in range(count):
                yield self.sim.timeout(
                    float(rng.exponential(1.0 / rate_pps)))
                self.send(path, size_bits)

        return source()
