"""Point-to-point link model.

A link carries propagation (distance/medium), transmission
(size/rate) and load-dependent queueing delay.  Radio access links are
*not* modelled here — the RAN package owns the air interface, which has
scheduling structure a plain queue cannot capture.  ``LinkKind.RADIO``
exists for fixed wireless backhaul (microwave hops at c).
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from .. import units
from .latency import LatencyBreakdown
from .node import Node
from .queueing import mm1_wait, sample_mm1_wait

__all__ = ["LinkKind", "Link"]

#: Reference packet size for routing weights: a full-size ethernet frame.
REFERENCE_PACKET_BITS: float = 1500.0 * 8.0


class LinkKind(enum.Enum):
    """Transmission medium of a link."""
    FIBRE = "fibre"          #: long-haul / metro fibre (c / 1.5)
    RADIO = "radio"          #: line-of-sight backhaul (c)
    VIRTUAL = "virtual"      #: intra-site patch (negligible propagation)


_PROPAGATION_SPEED = {
    LinkKind.FIBRE: units.FIBRE_PROPAGATION_SPEED,
    LinkKind.RADIO: units.RADIO_PROPAGATION_SPEED,
    LinkKind.VIRTUAL: units.FIBRE_PROPAGATION_SPEED,
}

#: Deployed-fibre detour over great circle for long-haul links.
_DEFAULT_CIRCUITY = {
    LinkKind.FIBRE: 1.05,
    LinkKind.RADIO: 1.0,
    LinkKind.VIRTUAL: 1.0,
}


class Link:
    """Bidirectional, symmetric point-to-point link.

    Parameters
    ----------
    a, b:
        Endpoint nodes.
    kind:
        Medium (sets propagation speed and default circuity).
    rate_bps:
        Line rate.
    length_m:
        Cable length.  Defaults to great-circle distance between the
        endpoints scaled by the medium's circuity factor; pass explicitly
        for deliberately detoured cables.
    utilisation:
        Background load in [0, 1); drives the M/M/1 queueing term.
    """

    __slots__ = ("a", "b", "kind", "rate_bps", "length_m", "_utilisation",
                 "name")

    def __init__(self, a: Node, b: Node, *,
                 kind: LinkKind = LinkKind.FIBRE,
                 rate_bps: float = units.gbps(10.0),
                 length_m: Optional[float] = None,
                 utilisation: float = 0.0,
                 name: str = ""):
        if a == b:
            raise ValueError(f"self-loop link at {a.name!r}")
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps!r}")
        if length_m is None:
            length_m = a.distance_to(b) * _DEFAULT_CIRCUITY[kind]
        if length_m < 0:
            raise ValueError(f"negative link length {length_m!r}")
        self.a = a
        self.b = b
        self.kind = kind
        self.rate_bps = float(rate_bps)
        self.length_m = float(length_m)
        self.utilisation = utilisation  # property validates
        self.name = name or f"{a.name}--{b.name}"

    # -- load ----------------------------------------------------------------

    @property
    def utilisation(self) -> float:
        return self._utilisation

    @utilisation.setter
    def utilisation(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError(
                f"utilisation must be in [0, 1), got {value!r}")
        self._utilisation = float(value)

    # -- delay components ------------------------------------------------

    def propagation_delay(self) -> float:
        """One-way propagation delay, seconds."""
        return self.length_m / _PROPAGATION_SPEED[self.kind]

    def transmission_delay(self, size_bits: float) -> float:
        """Serialization delay for a packet of ``size_bits``."""
        return units.transmission_delay(size_bits, self.rate_bps)

    def mean_queueing_delay(self, size_bits: float) -> float:
        """Expected M/M/1 egress-queue wait for this load level."""
        return mm1_wait(self._utilisation, self.transmission_delay(size_bits))

    def sample_queueing_delay(self, size_bits: float,
                              rng: np.random.Generator) -> float:
        """Per-packet sampled egress-queue wait."""
        return float(sample_mm1_wait(
            self._utilisation, self.transmission_delay(size_bits), rng))

    def one_way(self, size_bits: float = REFERENCE_PACKET_BITS,
                rng: Optional[np.random.Generator] = None
                ) -> LatencyBreakdown:
        """One-way link delay (no endpoint processing).

        With ``rng`` the queueing term is sampled; without, it is the
        analytic mean (used for routing weights, which must be stable).
        """
        if rng is None:
            queueing = self.mean_queueing_delay(size_bits)
        else:
            queueing = self.sample_queueing_delay(size_bits, rng)
        return LatencyBreakdown(
            propagation=self.propagation_delay(),
            transmission=self.transmission_delay(size_bits),
            queueing=queueing,
        )

    def routing_weight(self) -> float:
        """Deterministic weight for shortest-latency routing, seconds."""
        return self.one_way(REFERENCE_PACKET_BITS).total

    def other(self, node: Node) -> Node:
        """The endpoint that is not ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node.name!r} is not an endpoint of {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Link({self.name!r}, {self.kind.value}, "
                f"{units.to_km(self.length_m):.1f} km, "
                f"{units.to_mbps(self.rate_bps):.0f} Mbps, "
                f"rho={self._utilisation:.2f})")
