"""IPv4 addressing and reverse-DNS naming.

Table I of the paper reports hops by reverse-DNS name and address
(``unn-37-19-223-61.datapacket.com [37.19.223.61]``).  To regenerate that
table faithfully the simulated routers need plausible addresses and
PTR-style names.  This module provides:

* :class:`IPv4Address` / :class:`IPv4Prefix` — minimal, validating value
  types (the stdlib ``ipaddress`` module would do, but these stay in
  plain-int land for speed inside tight loops and add the dashed-quad
  helper the naming templates need).
* :class:`PrefixAllocator` — carves /24s and host addresses out of an
  operator's aggregate, deterministically.
* :func:`ptr_name` — operator-style PTR names from templates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["IPv4Address", "IPv4Prefix", "PrefixAllocator", "ptr_name"]


@dataclass(frozen=True, slots=True, order=True)
class IPv4Address:
    """A single IPv4 address, stored as a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"address value {self.value!r} outside 32-bit range")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"malformed IPv4 address {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"octet {octet} > 255 in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def octets(self) -> tuple[int, int, int, int]:
        v = self.value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    @property
    def dotted(self) -> str:
        return ".".join(str(o) for o in self.octets)

    @property
    def dashed(self) -> str:
        """Dashed form used in PTR templates: ``37-19-223-61``."""
        return "-".join(str(o) for o in self.octets)

    @property
    def reverse_dashed(self) -> str:
        """Reversed dashed form (some operators: ``061-223-019-037``)."""
        return "-".join(f"{o:03d}" for o in reversed(self.octets))

    def is_private(self) -> bool:
        """RFC 1918 check (Table I hop 1 is a private gateway)."""
        o = self.octets
        return (o[0] == 10
                or (o[0] == 172 and 16 <= o[1] <= 31)
                or (o[0] == 192 and o[1] == 168))

    def __str__(self) -> str:
        return self.dotted


@dataclass(frozen=True, slots=True)
class IPv4Prefix:
    """A CIDR prefix such as ``185.156.45.0/24``."""

    network: IPv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length {self.length} outside [0, 32]")
        if self.network.value & (self.host_count - 1):
            raise ValueError(
                f"{self.network}/{self.length} has host bits set")

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        try:
            net, length = text.strip().split("/")
        except ValueError:
            raise ValueError(f"malformed prefix {text!r}") from None
        return cls(IPv4Address.parse(net), int(length))

    @property
    def host_count(self) -> int:
        return 1 << (32 - self.length)

    def __contains__(self, addr: IPv4Address) -> bool:
        return (addr.value & ~(self.host_count - 1)) == self.network.value

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th address inside the prefix (0 = network)."""
        if not 0 <= index < self.host_count:
            raise IndexError(
                f"host index {index} outside /{self.length} "
                f"({self.host_count} addresses)")
        return IPv4Address(self.network.value + index)

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Enumerate sub-prefixes of the given longer length."""
        if new_length < self.length or new_length > 32:
            raise ValueError(
                f"cannot split /{self.length} into /{new_length}")
        step = 1 << (32 - new_length)
        for base in range(self.network.value,
                          self.network.value + self.host_count, step):
            yield IPv4Prefix(IPv4Address(base), new_length)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"


class PrefixAllocator:
    """Deterministic sequential allocator over an aggregate prefix.

    Each operator in the scenario gets one allocator over its announced
    aggregate; routers draw loopback/interface addresses from it.  Host
    index 0 (the network address) and broadcast are skipped.
    """

    def __init__(self, aggregate: IPv4Prefix):
        if aggregate.length > 30:
            raise ValueError("aggregate too small to allocate hosts from")
        self.aggregate = aggregate
        self._next = 1  # skip network address

    @property
    def remaining(self) -> int:
        return max(0, self.aggregate.host_count - 1 - self._next)

    def allocate(self) -> IPv4Address:
        """Allocate the next free host address."""
        if self._next >= self.aggregate.host_count - 1:  # keep broadcast free
            raise RuntimeError(f"prefix {self.aggregate} exhausted")
        addr = self.aggregate.host(self._next)
        self._next += 1
        return addr

    def allocate_subnet(self, length: int) -> "PrefixAllocator":
        """Carve the next aligned sub-prefix and return its allocator."""
        step = 1 << (32 - length)
        base = self.aggregate.network.value + ((self._next + step - 1)
                                               // step) * step
        end = self.aggregate.network.value + self.aggregate.host_count
        if base + step > end:
            raise RuntimeError(
                f"no room for a /{length} inside {self.aggregate}")
        self._next = (base - self.aggregate.network.value) + step
        return PrefixAllocator(IPv4Prefix(IPv4Address(base), length))


def ptr_name(template: str, addr: IPv4Address, **fields: str) -> str:
    """Render an operator PTR-style name.

    Supported placeholders: ``{dashed}``, ``{reverse}``, ``{dotted}``
    plus arbitrary keyword fields (``{pop}``, ``{role}``, ...).

    >>> ptr_name("unn-{dashed}.datapacket.com", IPv4Address.parse("37.19.223.61"))
    'unn-37-19-223-61.datapacket.com'
    """
    return template.format(dashed=addr.dashed, reverse=addr.reverse_dashed,
                           dotted=addr.dotted, **fields)
