"""Valley-free (Gao-Rexford) AS-path selection.

Implements the standard three-phase routing-tree computation over an
:class:`~repro.net.asn.ASGraph`: for a destination AS ``d``, every other
AS selects its best route under the canonical BGP decision process

1. highest local preference — customer route > peer route > provider
   route (follow the money),
2. shortest AS path,
3. deterministic tie-break (lowest next-hop ASN),

subject to the Gao-Rexford export rules (a route learned from a peer or
provider is never exported to another peer or provider — "no valleys").

This is the mechanism behind the paper's Fig. 4: the eyeball and hosting
ASes in Klagenfurt share no customer/peer edge, so traffic climbs to a
transit/CDN provider (Vienna), crosses a distant peering (Prague), and
descends through the hosting AS's provider chain (Bucharest) — 2544 km
for a 5 km crow-fly distance.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Optional

from .asn import ASGraph

__all__ = ["RouteClass", "ASRoute", "BGPRouter"]


class RouteClass(enum.IntEnum):
    """Local-preference classes, in decreasing preference order."""

    SELF = 0       #: the destination itself
    CUSTOMER = 1   #: learned from a customer
    PEER = 2       #: learned from a peer
    PROVIDER = 3   #: learned from a provider


@dataclass(frozen=True, slots=True)
class ASRoute:
    """The route one AS selected towards a destination AS."""

    dest: int
    as_path: tuple[int, ...]   #: from this AS to dest, inclusive
    route_class: RouteClass

    @property
    def length(self) -> int:
        """AS-path length in edges."""
        return len(self.as_path) - 1

    def __str__(self) -> str:
        return (" ".join(str(a) for a in self.as_path)
                + f" ({self.route_class.name.lower()})")


class BGPRouter:
    """Computes and caches valley-free routes over an AS graph.

    Routes are recomputed lazily per destination and invalidated by
    :meth:`invalidate` when the relationship graph changes (e.g. the
    local-peering what-if in :mod:`repro.core.peering`).
    """

    def __init__(self, graph: ASGraph):
        graph.validate_hierarchy()
        self.graph = graph
        self._tables: dict[int, dict[int, ASRoute]] = {}

    def invalidate(self) -> None:
        """Drop cached routing tables (call after editing the AS graph)."""
        self.graph.validate_hierarchy()
        self._tables.clear()

    # -- routing-tree computation ----------------------------------------

    def routes_to(self, dest: int) -> dict[int, ASRoute]:
        """Best route from every AS that can reach ``dest``."""
        if dest not in self.graph:
            raise KeyError(f"unknown destination AS{dest}")
        table = self._tables.get(dest)
        if table is None:
            table = self._compute(dest)
            self._tables[dest] = table
        return table

    def route(self, src: int, dest: int) -> Optional[ASRoute]:
        """Best route from ``src`` to ``dest`` or None if unreachable."""
        if src not in self.graph:
            raise KeyError(f"unknown source AS{src}")
        return self.routes_to(dest).get(src)

    def as_path(self, src: int, dest: int) -> tuple[int, ...]:
        """AS path from ``src`` to ``dest``; raises if unreachable."""
        route = self.route(src, dest)
        if route is None:
            raise LookupError(f"AS{src} has no route to AS{dest}")
        return route.as_path

    def _compute(self, dest: int) -> dict[int, ASRoute]:
        g = self.graph
        best: dict[int, ASRoute] = {
            dest: ASRoute(dest, (dest,), RouteClass.SELF)}

        # Phase 1 — customer routes climb provider edges.  Uniform edge
        # weights => Dijkstra == BFS, but the heap orders by
        # (path length, next-hop ASN) which realises tie-break rule 3.
        heap: list[tuple[int, int, int]] = [(0, dest, dest)]
        while heap:
            dist, tie, asn = heapq.heappop(heap)
            current = best.get(asn)
            if current is None or current.length < dist:
                continue
            for provider in sorted(g.providers_of(asn)):
                candidate = ASRoute(dest, (provider,) + best[asn].as_path,
                                    RouteClass.CUSTOMER)
                incumbent = best.get(provider)
                if self._better(candidate, incumbent):
                    best[provider] = candidate
                    heapq.heappush(heap, (candidate.length, asn, provider))

        # Phase 2 — one peer hop off any customer/self route.
        peer_routes: dict[int, ASRoute] = {}
        for asn, route in best.items():
            if route.route_class not in (RouteClass.SELF,
                                         RouteClass.CUSTOMER):
                continue
            for peer in sorted(g.peers_of(asn)):
                candidate = ASRoute(dest, (peer,) + route.as_path,
                                    RouteClass.PEER)
                if self._better(candidate, best.get(peer)) and \
                        self._better(candidate, peer_routes.get(peer)):
                    peer_routes[peer] = candidate
        for asn, route in peer_routes.items():
            if self._better(route, best.get(asn)):
                best[asn] = route

        # Phase 3 — provider routes descend customer edges from every
        # AS that already has a route.
        heap = [(best[a].length, a, a) for a in best]
        heapq.heapify(heap)
        while heap:
            dist, tie, asn = heapq.heappop(heap)
            route = best.get(asn)
            if route is None or route.length < dist:
                continue
            for customer in sorted(g.customers_of(asn)):
                candidate = ASRoute(dest, (customer,) + route.as_path,
                                    RouteClass.PROVIDER)
                if self._better(candidate, best.get(customer)):
                    best[customer] = candidate
                    heapq.heappush(heap, (candidate.length, asn, customer))

        return best

    @staticmethod
    def _better(candidate: ASRoute, incumbent: Optional[ASRoute]) -> bool:
        """BGP decision process: class, then length, then next-hop ASN."""
        if incumbent is None:
            return True
        if candidate.route_class != incumbent.route_class:
            return candidate.route_class < incumbent.route_class
        if candidate.length != incumbent.length:
            return candidate.length < incumbent.length
        return candidate.as_path[1] < incumbent.as_path[1]

    # -- analysis helpers -------------------------------------------------

    def is_valley_free(self, as_path: tuple[int, ...]) -> bool:
        """Check the valley-free property of an arbitrary AS path.

        A valid path is a (possibly empty) uphill run of c2p edges,
        at most one p2p edge, then a downhill run of p2c edges.
        """
        if len(as_path) < 2:
            return True
        phase = "up"
        for a, b in zip(as_path, as_path[1:]):
            rel = self.graph.relationship(a, b)
            if rel is None:
                return False
            if rel == "c2p":
                if phase != "up":
                    return False
            elif rel == "p2p":
                if phase != "up":
                    return False
                phase = "down"   # at most one peer edge, then downhill
            else:  # p2c
                phase = "down"
        return True
