"""Autonomous systems and inter-AS business relationships.

The paper's central routing observation — a request between two nodes
less than 5 km apart travelling Vienna-Prague-Bucharest-Vienna (2544 km,
Table I / Fig. 4) — is an artifact of *policy* routing: ASes forward
along commercial relationships, not geography.  This module models the
relationship graph in the standard Gao-Rexford form:

* **customer-to-provider (c2p)** — the customer pays; routes learned
  from a customer may be exported to anyone.
* **peer-to-peer (p2p)** — settlement-free; routes learned from a peer
  (or provider) may be exported only to customers.

:class:`ASGraph` stores the relationships; path selection over it lives
in :mod:`repro.net.bgp`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["ASKind", "AutonomousSystem", "ASGraph"]


class ASKind(enum.Enum):
    """Commercial role of an AS (labelling only; policy comes from edges)."""

    MOBILE_ISP = "mobile_isp"      #: cellular operator (the UE's home)
    ACCESS_ISP = "access_isp"      #: fixed-line eyeball network
    TRANSIT = "transit"            #: wholesale IP transit carrier
    CDN = "cdn"                    #: content-delivery / anycast operator
    HOSTING = "hosting"            #: server hosting company
    CLOUD = "cloud"                #: public cloud region
    EDUCATION = "education"        #: NREN / university network
    IXP_ROUTESERVER = "ixp"        #: route server (organisational, no hops)


@dataclass(eq=False)
class AutonomousSystem:
    """One AS: a number, a name, and a PTR-naming template.

    ``ptr_template`` renders router reverse-DNS names in
    :mod:`repro.net.traceroute`; placeholders are those of
    :func:`repro.net.address.ptr_name` (e.g.
    ``"unn-{dashed}.datapacket.com"``).
    """

    asn: int
    name: str
    kind: ASKind = ASKind.TRANSIT
    ptr_template: str = ""
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"AS number must be positive, got {self.asn}")
        if not self.name:
            raise ValueError("AS name must be non-empty")

    def __hash__(self) -> int:
        return hash(self.asn)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AutonomousSystem) and other.asn == self.asn

    def __repr__(self) -> str:  # pragma: no cover
        return f"AS{self.asn}({self.name!r}, {self.kind.value})"


class ASGraph:
    """The inter-AS relationship graph."""

    def __init__(self):
        self._systems: dict[int, AutonomousSystem] = {}
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}

    # -- construction ------------------------------------------------------

    def add(self, system: AutonomousSystem) -> AutonomousSystem:
        """Register an AS; duplicate numbers are rejected."""
        if system.asn in self._systems:
            raise ValueError(f"duplicate AS number {system.asn}")
        self._systems[system.asn] = system
        self._providers[system.asn] = set()
        self._customers[system.asn] = set()
        self._peers[system.asn] = set()
        return system

    def _require(self, asn: int) -> None:
        if asn not in self._systems:
            raise KeyError(f"unknown AS{asn}")

    def set_customer_of(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        self._require(customer)
        self._require(provider)
        if customer == provider:
            raise ValueError("an AS cannot be its own provider")
        if provider in self._customers[customer]:
            raise ValueError(
                f"AS{provider} is already a customer of AS{customer}; "
                "mutual transit is not a valid Gao-Rexford relationship")
        if provider in self._peers[customer]:
            raise ValueError(
                f"AS{customer} and AS{provider} already peer")
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)

    def set_peers(self, a: int, b: int) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        self._require(a)
        self._require(b)
        if a == b:
            raise ValueError("an AS cannot peer with itself")
        if b in self._providers[a] or b in self._customers[a]:
            raise ValueError(
                f"AS{a} and AS{b} already have a transit relationship")
        self._peers[a].add(b)
        self._peers[b].add(a)

    def remove_peering(self, a: int, b: int) -> None:
        """Tear down a peering (the de-peering event of Sec. V-A)."""
        self._require(a)
        self._require(b)
        if b not in self._peers[a]:
            raise KeyError(f"AS{a} and AS{b} do not peer")
        self._peers[a].discard(b)
        self._peers[b].discard(a)

    # -- queries -----------------------------------------------------------

    def system(self, asn: int) -> AutonomousSystem:
        """Look up one AS by number."""
        self._require(asn)
        return self._systems[asn]

    def __contains__(self, asn: int) -> bool:
        return asn in self._systems

    def systems(self) -> Iterator[AutonomousSystem]:
        """Iterate over all registered ASes."""
        return iter(self._systems.values())

    @property
    def count(self) -> int:
        return len(self._systems)

    def providers_of(self, asn: int) -> frozenset[int]:
        """The ASes this AS buys transit from."""
        self._require(asn)
        return frozenset(self._providers[asn])

    def customers_of(self, asn: int) -> frozenset[int]:
        """The ASes buying transit from this AS."""
        self._require(asn)
        return frozenset(self._customers[asn])

    def peers_of(self, asn: int) -> frozenset[int]:
        """The settlement-free peers of this AS."""
        self._require(asn)
        return frozenset(self._peers[asn])

    def relationship(self, a: int, b: int) -> Optional[str]:
        """``'c2p'`` if a is b's customer, ``'p2c'``, ``'p2p'`` or None."""
        self._require(a)
        self._require(b)
        if b in self._providers[a]:
            return "c2p"
        if b in self._customers[a]:
            return "p2c"
        if b in self._peers[a]:
            return "p2p"
        return None

    def validate_hierarchy(self) -> None:
        """Reject customer-provider cycles (AS paying itself transitively).

        The Gao-Rexford stability results assume the provider graph is a
        DAG; a cycle would make the routing-tree computation in
        :mod:`repro.net.bgp` ill-defined.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {asn: WHITE for asn in self._systems}

        def dfs(asn: int, stack: list[int]) -> None:
            colour[asn] = GREY
            for prov in self._providers[asn]:
                if colour[prov] == GREY:
                    cycle = stack[stack.index(prov):] if prov in stack \
                        else [prov]
                    raise ValueError(
                        "customer-provider cycle: "
                        + " -> ".join(f"AS{x}" for x in cycle + [prov]))
                if colour[prov] == WHITE:
                    dfs(prov, stack + [prov])
            colour[asn] = BLACK

        for asn in self._systems:
            if colour[asn] == WHITE:
                dfs(asn, [asn])
