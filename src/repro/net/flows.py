"""Traffic demands and background-load assignment.

The drive-test cells differ in load (rush-hour arterials vs quiet
residential blocks); the heatmap dispersion in Fig. 3 is largely this
load structure filtered through queueing.  A :class:`TrafficMatrix`
holds host-to-host demands; :meth:`TrafficMatrix.apply` routes each
demand with the policy-aware :class:`~repro.net.routing.RouteComputer`
and accumulates per-link utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .routing import RouteComputer

__all__ = ["TrafficDemand", "TrafficMatrix"]

#: Utilisation ceiling: real routers shed/shape load before the queue
#: diverges, and the M/M/1 formulas need rho < 1.
MAX_UTILISATION: float = 0.95


@dataclass(frozen=True, slots=True)
class TrafficDemand:
    """A steady host-to-host offered load."""

    src: str
    dst: str
    rate_bps: float

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError(f"demand rate must be positive, got "
                             f"{self.rate_bps!r}")
        if self.src == self.dst:
            raise ValueError("demand endpoints must differ")


class TrafficMatrix:
    """A collection of demands that can be applied to a topology."""

    def __init__(self):
        self._demands: list[TrafficDemand] = []

    def add(self, src: str, dst: str, rate_bps: float) -> TrafficDemand:
        """Register one demand; returns the validated record."""
        demand = TrafficDemand(src, dst, rate_bps)
        self._demands.append(demand)
        return demand

    def __iter__(self) -> Iterator[TrafficDemand]:
        return iter(self._demands)

    def __len__(self) -> int:
        return len(self._demands)

    @property
    def total_rate_bps(self) -> float:
        return sum(d.rate_bps for d in self._demands)

    def apply(self, routes: RouteComputer,
              max_utilisation: float = MAX_UTILISATION) -> dict[str, float]:
        """Route every demand and set link utilisations.

        Returns ``{link name: utilisation}`` for inspection.  Existing
        utilisation is *not* cleared — call :meth:`reset` first for a
        clean slate.  Routing weights are refreshed afterwards so later
        shortest-path queries see the loaded network.
        """
        if not 0.0 < max_utilisation < 1.0:
            raise ValueError("max utilisation must be in (0, 1)")
        topo = routes.topology
        loads: dict[str, float] = {}
        for demand in self._demands:
            result = routes.route(demand.src, demand.dst)
            for a, b in zip(result.path, result.path[1:]):
                link = topo.link(a, b)
                rho = min(max_utilisation,
                          link.utilisation + demand.rate_bps / link.rate_bps)
                link.utilisation = rho
                loads[link.name] = rho
        topo.refresh_weights()
        return loads

    @staticmethod
    def reset(routes: RouteComputer) -> None:
        """Zero all link utilisations and refresh routing weights."""
        for link in routes.topology.links():
            link.utilisation = 0.0
        routes.topology.refresh_weights()
