"""Latency decomposition and composition.

One-way delay of a packet over a path decomposes, per hop, into

* **propagation** — distance / medium speed,
* **transmission** — packet size / link rate,
* **queueing**     — load-dependent waiting at the egress queue,
* **processing**   — per-node forwarding cost.

:class:`LatencyBreakdown` keeps the four components separate end-to-end
so analyses (e.g. "the majority of the delay stems from excessive
networking hops rather than the physical distance travelled",
Sec. V-A) can be asked directly of the data instead of eyeballed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LatencyBreakdown"]


@dataclass(frozen=True, slots=True)
class LatencyBreakdown:
    """Additive latency components, seconds."""

    propagation: float = 0.0
    transmission: float = 0.0
    queueing: float = 0.0
    processing: float = 0.0

    def __post_init__(self) -> None:
        for name in self.__slots__:
            if getattr(self, name) < 0.0:
                raise ValueError(f"negative {name} component")

    @property
    def total(self) -> float:
        return (self.propagation + self.transmission
                + self.queueing + self.processing)

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        if not isinstance(other, LatencyBreakdown):
            return NotImplemented
        return LatencyBreakdown(
            propagation=self.propagation + other.propagation,
            transmission=self.transmission + other.transmission,
            queueing=self.queueing + other.queueing,
            processing=self.processing + other.processing,
        )

    def scaled(self, factor: float) -> "LatencyBreakdown":
        """All components multiplied by ``factor`` (e.g. x2 for RTT)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return LatencyBreakdown(
            propagation=self.propagation * factor,
            transmission=self.transmission * factor,
            queueing=self.queueing * factor,
            processing=self.processing * factor,
        )

    def share(self, component: str) -> float:
        """Fraction of total due to one component (0 if total is 0)."""
        if component not in self.__slots__:
            raise KeyError(f"unknown component {component!r}")
        total = self.total
        if total == 0.0:
            return 0.0
        return getattr(self, component) / total

    @classmethod
    def zero(cls) -> "LatencyBreakdown":
        return cls()

    def as_dict(self) -> dict[str, float]:
        """Components plus total as a plain dict."""
        d = {name: getattr(self, name) for name in self.__slots__}
        d["total"] = self.total
        return d

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{n}={getattr(self, n) * 1e3:.3f}ms"
                          for n in self.__slots__)
        return f"LatencyBreakdown({parts}, total={self.total * 1e3:.3f}ms)"
