"""Internet substrate: addressing, topology, policy routing, tracing."""


from __future__ import annotations

from .address import IPv4Address, IPv4Prefix, PrefixAllocator, ptr_name
from .asn import ASGraph, ASKind, AutonomousSystem
from .dessim import Packet, PacketNetwork
from .bgp import ASRoute, BGPRouter, RouteClass
from .flows import TrafficDemand, TrafficMatrix
from .ixp import InternetExchange
from .latency import LatencyBreakdown
from .link import Link, LinkKind
from .node import Node, NodeKind
from .queueing import (
    md1_wait,
    mg1_wait,
    mm1_residence,
    mm1_wait,
    sample_mm1_wait,
    utilisation_check,
)
from .routing import RouteComputer, RouteResult
from .topology import Topology
from .traceroute import TracerouteHop, TracerouteResult, traceroute

__all__ = [
    "IPv4Address", "IPv4Prefix", "PrefixAllocator", "ptr_name",
    "ASGraph", "ASKind", "AutonomousSystem",
    "Packet", "PacketNetwork",
    "ASRoute", "BGPRouter", "RouteClass",
    "TrafficDemand", "TrafficMatrix",
    "InternetExchange",
    "LatencyBreakdown",
    "Link", "LinkKind",
    "Node", "NodeKind",
    "mm1_wait", "md1_wait", "mg1_wait", "mm1_residence", "sample_mm1_wait",
    "utilisation_check",
    "RouteComputer", "RouteResult",
    "Topology",
    "TracerouteHop", "TracerouteResult", "traceroute",
]
