"""Router-level topology graph.

Thin, validating wrapper over :class:`networkx.Graph`: nodes are keyed by
name (carrying :class:`~repro.net.node.Node` objects), edges carry
:class:`~repro.net.link.Link` objects.  Provides latency-weighted
shortest paths and end-to-end latency composition; AS-level *policy*
path selection lives in :mod:`repro.net.bgp` and stitches through this
graph for the intra-AS segments.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import networkx as nx
import numpy as np

from .latency import LatencyBreakdown
from .link import Link, REFERENCE_PACKET_BITS
from .node import Node
from .pathkernel import CompiledPath

__all__ = ["Topology"]


class Topology:
    """A named collection of nodes and links."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self._graph = nx.Graph()
        self._nodes: dict[str, Node] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Insert ``node``; duplicate names are rejected."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        return node

    def add_link(self, link: Link) -> Link:
        """Insert ``link``; both endpoints must already be present."""
        for end in (link.a, link.b):
            if end.name not in self._nodes:
                raise KeyError(f"link endpoint {end.name!r} not in topology")
        if self._graph.has_edge(link.a.name, link.b.name):
            raise ValueError(
                f"parallel link {link.a.name!r}--{link.b.name!r}")
        self._graph.add_edge(link.a.name, link.b.name, link=link,
                             weight=link.routing_weight())
        return link

    def connect(self, a: Node | str, b: Node | str, **link_kwargs) -> Link:
        """Convenience: build and insert a link between two nodes."""
        node_a = self.node(a if isinstance(a, str) else a.name)
        node_b = self.node(b if isinstance(b, str) else b.name)
        link = Link(node_a, node_b, **link_kwargs)
        return self.add_link(link)

    def refresh_weights(self) -> None:
        """Recompute routing weights after utilisation changes."""
        for _, _, data in self._graph.edges(data=True):
            data["weight"] = data["link"].routing_weight()

    # -- lookup -------------------------------------------------------------

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        """True when ``name`` is a node of this topology."""
        return name in self._nodes

    def link(self, a: str, b: str) -> Link:
        """The link between two adjacent nodes."""
        try:
            return self._graph.edges[a, b]["link"]
        except KeyError:
            raise KeyError(f"no link {a!r}--{b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        """True when nodes ``a`` and ``b`` are directly linked."""
        return self._graph.has_edge(a, b)

    def remove_link(self, a: str, b: str) -> None:
        """Remove a link (failure injection / de-peering)."""
        if not self._graph.has_edge(a, b):
            raise KeyError(f"no link {a!r}--{b!r}")
        self._graph.remove_edge(a, b)

    def nodes(self, kind=None, asn: Optional[int] = None) -> Iterator[Node]:
        """All nodes, optionally filtered by kind and/or AS number."""
        for node in self._nodes.values():
            if kind is not None and node.kind != kind:
                continue
            if asn is not None and node.asn != asn:
                continue
            yield node

    def links(self) -> Iterator[Link]:
        """Iterate over all links."""
        for _, _, data in self._graph.edges(data=True):
            yield data["link"]

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        return self._graph.number_of_edges()

    def degree(self, name: str) -> int:
        """Number of links incident to a node."""
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r}")
        return self._graph.degree[name]

    # -- paths ----------------------------------------------------------------

    def shortest_path(self, src: str, dst: str,
                      within_asn: Optional[int] = None) -> list[str]:
        """Minimum-latency path as a list of node names.

        ``within_asn`` restricts the search to one AS's subgraph (used by
        BGP stitching for intra-AS segments; border routers of the AS are
        included by their ``asn`` attribute).
        """
        graph = self._graph
        if within_asn is not None:
            members = [n for n, node in self._nodes.items()
                       if node.asn == within_asn]
            graph = self._graph.subgraph(members)
        try:
            return nx.shortest_path(graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise nx.NetworkXNoPath(
                f"no path {src!r} -> {dst!r}"
                + (f" inside AS{within_asn}" if within_asn else "")) from None

    def path_latency(self, path: list[str],
                     size_bits: float = REFERENCE_PACKET_BITS,
                     rng: Optional[np.random.Generator] = None,
                     include_endpoints: bool = False) -> LatencyBreakdown:
        """One-way latency of ``path`` (list of node names).

        Sums link delays plus forwarding delay at every *intermediate*
        node; ``include_endpoints`` adds the first/last node's processing
        too (hosts' stack traversal).  With ``rng``, queueing is sampled
        per link.
        """
        if len(path) < 2:
            raise ValueError("path must contain at least two nodes")
        total = LatencyBreakdown.zero()
        for a, b in zip(path, path[1:]):
            total = total + self.link(a, b).one_way(size_bits, rng)
        hops = path if include_endpoints else path[1:-1]
        processing = sum(self._nodes[n].forwarding_delay_s for n in hops)
        return total + LatencyBreakdown(processing=processing)

    def round_trip(self, path: list[str],
                   size_bits: float = REFERENCE_PACKET_BITS,
                   rng: Optional[np.random.Generator] = None
                   ) -> LatencyBreakdown:
        """RTT over ``path``: forward plus (independently sampled) return."""
        forward = self.path_latency(path, size_bits, rng)
        back = self.path_latency(path[::-1], size_bits, rng)
        return forward + back

    def compile_path(self, path: Iterable[str],
                     size_bits: float = REFERENCE_PACKET_BITS
                     ) -> "CompiledPath":
        """Precompute a path's deterministic latency for hot sampling.

        The returned :class:`~repro.net.pathkernel.CompiledPath` samples
        round trips bit-identically to ``round_trip(path, size_bits,
        rng).total`` without re-walking the graph.  It snapshots link
        utilisations — recompile after mutating the topology.
        """
        return CompiledPath(self, list(path), size_bits)

    # -- analysis ---------------------------------------------------------

    def geographic_path_length(self, path: list[str]) -> float:
        """Total cable length along ``path``, metres (Fig. 4's 2544 km)."""
        if len(path) < 2:
            return 0.0
        return sum(self.link(a, b).length_m for a, b in zip(path, path[1:]))

    def subgraph_nodes(self, names: Iterable[str]) -> "Topology":
        """Copy of the topology restricted to ``names`` (for what-ifs)."""
        names = set(names)
        sub = Topology(name=f"{self.name}/sub")
        for name in names:
            sub.add_node(self.node(name))
        for link in self.links():
            if link.a.name in names and link.b.name in names:
                sub.add_link(link)
        return sub

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Topology({self.name!r}, nodes={self.node_count}, "
                f"links={self.link_count})")
