"""Network node model.

Every hop a packet can touch — routers, servers, probes, UEs, gNBs, UPFs,
IXP fabrics — is a :class:`Node`.  Nodes carry a geographic position (the
latency model turns inter-node distance into propagation delay), an
owning autonomous system, an address/PTR identity (Table I rendering),
and a per-packet forwarding delay.

Forwarding delays default to published magnitudes: carrier-grade routers
forward in tens of microseconds; servers and middleboxes add more.  The
paper's observation that the *application layer added ~35 ms* (Fezeu) is
modelled at the service endpoints, not in the network nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..geo.coords import GeoPoint
from .address import IPv4Address

__all__ = ["NodeKind", "Node"]


class NodeKind(enum.Enum):
    """Role of a node in the topology."""

    ROUTER = "router"            #: IP router (core/border/access)
    SERVER = "server"            #: application/cloud server
    PROBE = "probe"              #: measurement anchor (RIPE-Atlas-like)
    UE = "ue"                    #: user equipment (mobile node)
    GNB = "gnb"                  #: 5G/6G base station
    UPF = "upf"                  #: user-plane function
    GATEWAY = "gateway"          #: CGNAT / mobile-core packet gateway
    IXP = "ixp"                  #: internet-exchange switching fabric
    NF = "nf"                    #: control-plane network function host


#: Default per-packet forwarding delay by node kind, seconds.
DEFAULT_FORWARDING_DELAY: dict[NodeKind, float] = {
    NodeKind.ROUTER: 50e-6,
    NodeKind.SERVER: 200e-6,
    NodeKind.PROBE: 100e-6,
    NodeKind.UE: 300e-6,
    NodeKind.GNB: 150e-6,
    # Kernel-path UPF packet processing: the SmartNIC studies cited in
    # Sec. V-B measure host-path UPFs at hundreds of microseconds.
    NodeKind.UPF: 400e-6,
    NodeKind.GATEWAY: 250e-6,
    NodeKind.IXP: 20e-6,
    NodeKind.NF: 200e-6,
}


@dataclass(eq=False)
class Node:
    """A vertex in the network topology.

    ``name`` is the unique topology key.  ``display_name`` (PTR-style,
    e.g. ``vl204.vie-itx1-core-2.cdn77.com``) is what traceroute renders;
    it defaults to ``name``.
    """

    name: str
    kind: NodeKind
    location: GeoPoint
    asn: Optional[int] = None
    address: Optional[IPv4Address] = None
    display_name: str = ""
    forwarding_delay_s: float = field(default=-1.0)
    #: arbitrary extra attributes (e.g. 'pop': 'vie')
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if self.forwarding_delay_s < 0.0:
            self.forwarding_delay_s = DEFAULT_FORWARDING_DELAY[self.kind]
        if not self.display_name:
            self.display_name = self.name

    # Identity semantics: nodes are mutable carriers keyed by name.
    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.name == self.name

    @property
    def hop_label(self) -> str:
        """Traceroute rendering: ``display_name [addr]`` or bare address.

        Matches the formatting of Table I, where hops with PTR records
        show ``name [address]`` and hops without show the address alone.
        """
        if self.address is None:
            return self.display_name
        if self.display_name and self.display_name != str(self.address):
            return f"{self.display_name} [{self.address}]"
        return str(self.address)

    def distance_to(self, other: "Node") -> float:
        """Great-circle distance to another node, metres."""
        return self.location.distance_to(other.location)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Node({self.name!r}, {self.kind.value}, AS{self.asn})"
