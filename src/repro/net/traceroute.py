"""Hop-by-hop route tracing (Table I / Fig. 4 generator).

Emulates ICMP-TTL traceroute over a resolved
:class:`~repro.net.routing.RouteResult`: one probe per hop, each probe
independently sampling queueing along the truncated path, the responder
adding its own forwarding delay.  Output renders exactly like the
paper's Table I (``Hop | Node``) plus the geographic route summary used
by Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import units
from .routing import RouteResult
from .topology import Topology

__all__ = ["TracerouteHop", "TracerouteResult", "traceroute"]

#: Traceroute probes are small UDP/ICMP packets.
PROBE_SIZE_BITS: float = 64.0 * 8.0


@dataclass(frozen=True, slots=True)
class TracerouteHop:
    """One row of a traceroute."""

    index: int          #: 1-based hop number (hop 1 = first gateway)
    node_name: str      #: topology key
    label: str          #: Table-I-style rendering (PTR [addr] or addr)
    rtt_s: float        #: round-trip time of this hop's probe


@dataclass(frozen=True)
class TracerouteResult:
    """A completed trace."""

    src: str
    dst: str
    hops: tuple[TracerouteHop, ...]
    geographic_length_m: float  #: cable length of the full path (Fig. 4)

    @property
    def hop_count(self) -> int:
        return len(self.hops)

    @property
    def total_rtt_s(self) -> float:
        """RTT to the final hop (the destination)."""
        if not self.hops:
            raise ValueError("empty traceroute")
        return self.hops[-1].rtt_s

    def render_table(self, title: str = "NETWORKING HOPS") -> str:
        """ASCII rendering in the shape of the paper's Table I."""
        width = max([len(h.label) for h in self.hops] + [4])
        lines = [title, f"{'Hop':>3}  {'Node':<{width}}"]
        lines += [f"{h.index:>3}  {h.label:<{width}}" for h in self.hops]
        lines.append(
            f"total: {self.hop_count} hops, "
            f"{units.to_ms(self.total_rtt_s):.0f} ms RTT, "
            f"{units.to_km(self.geographic_length_m):.0f} km path")
        return "\n".join(lines)


def traceroute(topology: Topology, route: RouteResult,
               rng: Optional[np.random.Generator] = None,
               probe_size_bits: float = PROBE_SIZE_BITS) -> TracerouteResult:
    """Trace ``route`` hop by hop.

    For hop *i* the probe traverses the first *i* links and back, paying
    forwarding delay at intermediate routers both ways plus the
    responder's own processing once (TTL-expiry handling is on the slow
    path of real routers; we fold that into the node's forwarding delay).
    Without ``rng``, queueing terms are analytic means, making the trace
    deterministic (used by tests; benches pass a generator).
    """
    path = list(route.path)
    if len(path) < 2:
        raise ValueError("route path must contain at least two nodes")
    hops: list[TracerouteHop] = []
    for i in range(1, len(path)):
        prefix = path[: i + 1]
        forward = topology.path_latency(prefix, probe_size_bits, rng)
        back = topology.path_latency(prefix[::-1], probe_size_bits, rng)
        responder = topology.node(path[i])
        rtt = forward.total + back.total + responder.forwarding_delay_s
        hops.append(TracerouteHop(
            index=i,
            node_name=responder.name,
            label=responder.hop_label,
            rtt_s=rtt,
        ))
    return TracerouteResult(
        src=route.src,
        dst=route.dst,
        hops=tuple(hops),
        geographic_length_m=topology.geographic_path_length(path),
    )
