"""Tests for the population model and mobility models."""

import pytest

from repro.geo import (
    CellId,
    DriveTestRoute,
    GeoPoint,
    Grid,
    ManhattanMobility,
    RadialPopulationModel,
    RandomWaypoint,
    RasterPopulationModel,
)
from repro.sim import RngRegistry


@pytest.fixture
def grid():
    return Grid(origin=GeoPoint(46.653, 14.255), cell_size_m=1000.0,
                cols=6, rows=7)


@pytest.fixture
def rng():
    return RngRegistry(seed=1234)


# ---------------------------------------------------------------------------
# Population models
# ---------------------------------------------------------------------------

def test_radial_density_peaks_at_centre(grid):
    centre = grid.cell_center(CellId.from_label("C4"))
    model = RadialPopulationModel(centre, core_density=4200.0)
    assert model.density_at(centre) == pytest.approx(4200.0)
    edge = grid.cell_center(CellId.from_label("A1"))
    assert model.density_at(edge) < 4200.0


def test_radial_density_monotone_decreasing(grid):
    centre = grid.cell_center(CellId.from_label("C4"))
    model = RadialPopulationModel(centre)
    d = [model.density_at(centre.destination(90.0, r))
         for r in (0.0, 500.0, 1500.0, 3000.0, 6000.0)]
    assert all(a > b for a, b in zip(d, d[1:]))


def test_radial_density_floor_far_away(grid):
    centre = grid.cell_center(CellId.from_label("C4"))
    model = RadialPopulationModel(centre, floor=40.0)
    remote = centre.destination(0.0, 60_000.0)
    assert model.density_at(remote) == pytest.approx(40.0, rel=0.01)


def test_contour_radius_inverse(grid):
    centre = grid.cell_center(CellId.from_label("C4"))
    model = RadialPopulationModel(centre, core_density=4200.0,
                                  scale_m=2000.0, floor=40.0)
    r = model.contour_radius_m(1000.0)
    assert model.density_at(centre.destination(45.0, r)) == pytest.approx(
        1000.0, rel=0.01)


def test_contour_radius_out_of_range(grid):
    centre = grid.cell_center(CellId.from_label("C4"))
    model = RadialPopulationModel(centre, core_density=4200.0, floor=40.0)
    with pytest.raises(ValueError):
        model.contour_radius_m(10.0)   # below floor
    with pytest.raises(ValueError):
        model.contour_radius_m(9000.0)  # above core


def test_radial_validation(grid):
    centre = grid.cell_center(CellId.from_label("C4"))
    with pytest.raises(ValueError):
        RadialPopulationModel(centre, core_density=0.0)
    with pytest.raises(ValueError):
        RadialPopulationModel(centre, core_density=100.0, floor=200.0)


def test_raster_model_lookup(grid):
    cells = {CellId.from_label("C3"): 3000.0,
             CellId.from_label("A1"): 500.0}
    model = RasterPopulationModel(grid, cells, default=10.0)
    assert model.cell_density(grid, CellId.from_label("C3")) == 3000.0
    assert model.cell_density(grid, CellId.from_label("F7")) == 10.0
    assert model.density_at(grid.cell_center(CellId.from_label("A1"))) == 500.0
    assert model.density_at(GeoPoint(0.0, 0.0)) == 10.0


def test_raster_model_validation(grid):
    with pytest.raises(KeyError):
        RasterPopulationModel(grid, {CellId(20, 20): 5.0})
    with pytest.raises(ValueError):
        RasterPopulationModel(grid, {CellId(0, 0): -5.0})


# ---------------------------------------------------------------------------
# DriveTestRoute
# ---------------------------------------------------------------------------

def test_drive_test_visits_exactly_target_cells(grid, rng):
    targets = [CellId.from_label(x) for x in ("B2", "C2", "C3", "D4")]
    route = DriveTestRoute(grid, targets, rng.stream("drive"))
    visited = {s.cell for s in route.walk()}
    assert visited == set(targets)


def test_drive_test_min_samples_respected(grid, rng):
    targets = [CellId.from_label("B2")]
    route = DriveTestRoute(grid, targets, rng.stream("drive"),
                           mean_samples_per_cell=1.0, min_samples=10)
    samples = list(route.walk())
    assert len(samples) >= 10


def test_drive_test_traffic_weight_scales_counts(grid, rng):
    heavy = CellId.from_label("C3")
    light = CellId.from_label("B2")
    route = DriveTestRoute(
        grid, [heavy, light], rng.stream("drive"),
        traffic_weight={heavy: 4.0, light: 1.0},
        mean_samples_per_cell=30.0)
    counts = {heavy: 0, light: 0}
    for s in route.walk():
        counts[s.cell] += 1
    assert counts[heavy] > counts[light]


def test_drive_test_times_are_monotone(grid, rng):
    targets = [CellId.from_label(x) for x in ("A1", "B1", "C1")]
    route = DriveTestRoute(grid, targets, rng.stream("drive"))
    times = [s.time for s in route.walk()]
    assert all(a < b for a, b in zip(times, times[1:]))


def test_drive_test_positions_inside_reported_cell(grid, rng):
    targets = [CellId.from_label(x) for x in ("C2", "D2", "E5")]
    route = DriveTestRoute(grid, targets, rng.stream("drive"))
    for s in route.walk():
        assert grid.locate(s.position) == s.cell


def test_drive_test_deterministic_given_stream(grid):
    targets = [CellId.from_label(x) for x in ("B2", "C2")]
    r1 = DriveTestRoute(grid, targets, RngRegistry(9).stream("d"))
    r2 = DriveTestRoute(grid, targets, RngRegistry(9).stream("d"))
    s1 = [(s.time, s.position.lat, s.position.lon) for s in r1.walk()]
    s2 = [(s.time, s.position.lat, s.position.lon) for s in r2.walk()]
    assert s1 == s2


def test_drive_test_validation(grid, rng):
    with pytest.raises(ValueError):
        DriveTestRoute(grid, [], rng.stream("d"))
    with pytest.raises(KeyError):
        DriveTestRoute(grid, [CellId(20, 20)], rng.stream("d"))
    with pytest.raises(ValueError):
        DriveTestRoute(grid, [CellId(0, 0)], rng.stream("d"),
                       mean_samples_per_cell=0.0)


def test_drive_test_follows_serpentine_order(grid, rng):
    targets = [CellId.from_label(x) for x in ("A1", "C1", "F2", "A2")]
    route = DriveTestRoute(grid, targets, rng.stream("drive"))
    seen = []
    for s in route.walk():
        if not seen or seen[-1] != s.cell:
            seen.append(s.cell)
    assert [c.label for c in seen] == ["A1", "C1", "F2", "A2"]


# ---------------------------------------------------------------------------
# RandomWaypoint
# ---------------------------------------------------------------------------

def test_random_waypoint_stays_in_grid(grid, rng):
    model = RandomWaypoint(grid, rng.stream("rwp"))
    for s in model.walk(duration_s=600.0):
        assert s.cell is not None


def test_random_waypoint_moves(grid, rng):
    model = RandomWaypoint(grid, rng.stream("rwp"))
    samples = list(model.walk(duration_s=300.0))
    assert len(samples) > 1
    dist = samples[0].position.distance_to(samples[-1].position)
    assert dist > 0.0


def test_random_waypoint_validation(grid, rng):
    with pytest.raises(ValueError):
        RandomWaypoint(grid, rng.stream("x"), speed_range=(2.0, 1.0))
    with pytest.raises(ValueError):
        RandomWaypoint(grid, rng.stream("x"), start=GeoPoint(0.0, 0.0))
    model = RandomWaypoint(grid, rng.stream("x"))
    with pytest.raises(ValueError):
        list(model.walk(duration_s=0.0))


# ---------------------------------------------------------------------------
# ManhattanMobility
# ---------------------------------------------------------------------------

def test_manhattan_stays_in_grid(grid, rng):
    model = ManhattanMobility(grid, rng.stream("man"))
    for s in model.walk(steps=500):
        assert s.cell in grid


def test_manhattan_moves_one_cell_per_step(grid, rng):
    model = ManhattanMobility(grid, rng.stream("man"))
    samples = list(model.walk(steps=100))
    for a, b in zip(samples, samples[1:]):
        manhattan = abs(a.cell.col - b.cell.col) + abs(a.cell.row - b.cell.row)
        assert manhattan == 1


def test_manhattan_hop_timing(grid, rng):
    model = ManhattanMobility(grid, rng.stream("man"), speed_mps=10.0)
    samples = list(model.walk(steps=5))
    dt = samples[1].time - samples[0].time
    assert dt == pytest.approx(100.0)  # 1000 m at 10 m/s


def test_manhattan_validation(grid, rng):
    with pytest.raises(ValueError):
        ManhattanMobility(grid, rng.stream("m"), p_straight=1.5)
    with pytest.raises(KeyError):
        ManhattanMobility(grid, rng.stream("m"), start_cell=CellId(20, 20))
    model = ManhattanMobility(grid, rng.stream("m"))
    with pytest.raises(ValueError):
        list(model.walk(steps=-1))
