"""Tests for the concurrency-contract rules (REP101..REP106).

Same single-walk engine as the determinism family; each rule gets a
firing and a non-firing fixture through ``check_source``, plus the
category plumbing and the ``--select``/``--ignore``/``--explain`` CLI.
"""

import io
import json
import textwrap
from dataclasses import replace

from repro.lint import LintConfig, check_source, run_lint
from repro.lint.findings import rule_category
from repro.lint.rules import CONCURRENCY_RULES, DETERMINISM_RULES, RULES


def lint(source: str, *, path: str = "mod.py",
         config: LintConfig | None = None):
    return check_source(textwrap.dedent(source), path=path, config=config)


def codes(findings) -> list[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# REP101 — guarded attribute accessed without its lock
# ---------------------------------------------------------------------------

REP101_CLASS = """
    from repro.sim.sync import WatchedLock, guarded_by

    class Box:
        value = guarded_by("_lock")

        def __init__(self):
            self._lock = WatchedLock("box")
            self.value = 0
    %s
"""


def test_rep101_flags_unlocked_access():
    findings = lint(REP101_CLASS % """
        def bump(self):
            self.value += 1
    """)
    assert codes(findings) == ["REP101"]
    assert "guarded_by('_lock')" in findings[0].message


def test_rep101_allows_with_lock_and_init():
    assert lint(REP101_CLASS % """
        def bump(self):
            with self._lock:
                self.value += 1
    """) == []


def test_rep101_honors_holds_escape():
    assert lint(REP101_CLASS % """
        def _bump(self):  # lint: holds(_lock)
            self.value += 1
    """) == []


def test_rep101_escape_scans_multiline_signatures():
    assert lint(REP101_CLASS % """
        def _bump(self,  # lint: holds(_lock)
                  amount):
            self.value += amount
    """) == []


def test_rep101_nested_function_does_not_inherit_lock():
    findings = lint(REP101_CLASS % """
        def bump(self):
            with self._lock:
                def later():
                    self.value += 1
                return later
    """)
    assert codes(findings) == ["REP101"]


def test_rep101_other_attrs_and_other_classes_ignored():
    assert lint(REP101_CLASS % """
        def fine(self):
            self.other = 1
    """) == []
    assert lint("""
        class Unrelated:
            def bump(self):
                self.value += 1
    """) == []


# ---------------------------------------------------------------------------
# REP102 — blocking call while holding a lock
# ---------------------------------------------------------------------------

REP102_CLASS = """
    import time
    from repro.sim.sync import WatchedLock

    class Worker:
        def __init__(self):
            self._lock = WatchedLock("w")
    %s
"""


def test_rep102_flags_sleep_under_lock():
    findings = lint(REP102_CLASS % """
        def spin(self):
            with self._lock:
                time.sleep(0.1)
    """)
    assert codes(findings) == ["REP102"]
    assert "time.sleep" in findings[0].message


def test_rep102_flags_configured_method_names():
    findings = lint(REP102_CLASS % """
        def run(self, scenario):
            with self._lock:
                return scenario.evaluate(seed=1)
    """)
    assert codes(findings) == ["REP102"]


def test_rep102_quiet_outside_lock():
    assert lint(REP102_CLASS % """
        def spin(self):
            time.sleep(0.1)
            with self._lock:
                pass
    """) == []


def test_rep102_prefix_match_on_blocking_modules():
    findings = lint("""
        import urllib.request
        from repro.sim.sync import WatchedLock

        class Fetcher:
            def __init__(self):
                self._lock = WatchedLock("f")

            def fetch(self, url):
                with self._lock:
                    return urllib.request.urlopen(url)
    """)
    assert codes(findings) == ["REP102"]


# ---------------------------------------------------------------------------
# REP103 — mutable class-level attribute on a shared class
# ---------------------------------------------------------------------------

REP103_CONFIG = replace(LintConfig(), rep103_classes=("Shared",))


def test_rep103_flags_mutable_class_attrs():
    findings = lint("""
        class Shared:
            registry = {}
            items: list = []
            pool = set()
    """, config=REP103_CONFIG)
    assert codes(findings) == ["REP103"] * 3


def test_rep103_flags_mutable_constructor_calls():
    findings = lint("""
        import collections

        class Shared:
            counts = collections.Counter()
    """, config=REP103_CONFIG)
    assert codes(findings) == ["REP103"]


def test_rep103_allows_immutables_and_guards():
    assert lint("""
        from repro.sim.sync import guarded_by

        class Shared:
            LIMIT = 16
            NAMES = ("a", "b")
            state = guarded_by("_lock")
    """, config=REP103_CONFIG) == []


def test_rep103_only_configured_classes():
    assert lint("""
        class Elsewhere:
            registry = {}
    """, config=REP103_CONFIG) == []


# ---------------------------------------------------------------------------
# REP104 — threading.Thread without explicit daemon=
# ---------------------------------------------------------------------------

def test_rep104_flags_implicit_daemon():
    findings = lint("""
        import threading

        worker = threading.Thread(target=print)
    """)
    assert codes(findings) == ["REP104"]


def test_rep104_allows_explicit_daemon_either_way():
    assert lint("""
        import threading

        a = threading.Thread(target=print, daemon=True)
        b = threading.Thread(target=print, daemon=False)
    """) == []


def test_rep104_resolves_from_import():
    findings = lint("""
        from threading import Thread

        worker = Thread(target=print)
    """)
    assert codes(findings) == ["REP104"]


# ---------------------------------------------------------------------------
# REP105 — nested acquisition of a different declared lock
# ---------------------------------------------------------------------------

REP105_CLASS = """
    from repro.sim.sync import WatchedLock

    class TwoLocks:
        def __init__(self):
            self._a = WatchedLock("a")
            self._b = WatchedLock("b")
    %s
"""


def test_rep105_flags_nested_different_locks():
    findings = lint(REP105_CLASS % """
        def both(self):
            with self._a:
                with self._b:
                    pass
    """)
    assert codes(findings) == ["REP105"]
    assert "_a->_b" in findings[0].message


def test_rep105_whitelisted_pair_is_fine():
    config = replace(LintConfig(), lock_order=("_a -> _b",))
    assert lint(REP105_CLASS % """
        def both(self):
            with self._a:
                with self._b:
                    pass
    """, config=config) == []


def test_rep105_whitelist_is_directional():
    config = replace(LintConfig(), lock_order=("_a->_b",))
    findings = lint(REP105_CLASS % """
        def both(self):
            with self._b:
                with self._a:
                    pass
    """, config=config)
    assert codes(findings) == ["REP105"]


def test_rep105_reentrant_and_sequential_are_fine():
    assert lint(REP105_CLASS % """
        def fine(self):
            with self._a:
                with self._a:
                    pass
            with self._b:
                pass
    """) == []


def test_rep105_sees_holds_escape_as_held():
    findings = lint(REP105_CLASS % """
        def helper(self):  # lint: holds(_a)
            with self._b:
                pass
    """)
    assert codes(findings) == ["REP105"]


# ---------------------------------------------------------------------------
# REP106 — shared-cache mutation from executor-boundary code
# ---------------------------------------------------------------------------

REP106_CONFIG = replace(
    LintConfig(),
    rep106_exec_paths=("worker.py",),
    rep106_shared_attrs=("cache",),
    rep106_mutators=("put",),
    rep106_threadsafe=("SafeCache",),
)

REP106_CLASS = """
    class Pool:
        def __init__(self, directory):
            self.cache = %s

        def on_done(self, key, record):
            self.cache.put(key, record)
"""


def test_rep106_flags_unsafe_cache_type():
    findings = lint(REP106_CLASS % "PlainCache(directory)",
                    path="worker.py", config=REP106_CONFIG)
    assert codes(findings) == ["REP106"]
    assert "PlainCache" in findings[0].message


def test_rep106_quiet_for_threadsafe_type():
    assert lint(REP106_CLASS % "SafeCache(directory)",
                path="worker.py", config=REP106_CONFIG) == []


def test_rep106_quiet_when_provenance_unknown():
    assert lint(REP106_CLASS % "directory",
                path="worker.py", config=REP106_CONFIG) == []


def test_rep106_path_scoped():
    assert lint(REP106_CLASS % "PlainCache(directory)",
                path="elsewhere.py", config=REP106_CONFIG) == []


# ---------------------------------------------------------------------------
# categories + single-walk integration
# ---------------------------------------------------------------------------

def test_rule_families_and_categories():
    assert len(DETERMINISM_RULES) == 6
    assert len(CONCURRENCY_RULES) == 6
    assert RULES == DETERMINISM_RULES + CONCURRENCY_RULES
    for rule in DETERMINISM_RULES:
        assert rule.category == "determinism"
    for rule in CONCURRENCY_RULES:
        assert rule.category == "concurrency"
    assert rule_category("REP001") == "determinism"
    assert rule_category("REP106") == "concurrency"


def test_finding_carries_category():
    findings = lint("""
        import random
        import threading

        x = random.random()
        t = threading.Thread(target=print)
    """)
    assert codes(findings) == ["REP001", "REP104"]
    assert [f.category for f in findings] == ["determinism", "concurrency"]
    assert findings[1].to_dict()["category"] == "concurrency"


def test_both_families_fire_in_one_walk():
    # one source, violations from both families, single check_source call
    findings = lint("""
        import random
        from repro.sim.sync import WatchedLock, guarded_by

        class Mixed:
            value = guarded_by("_lock")

            def __init__(self):
                self._lock = WatchedLock("m")
                self.value = 0

            def bad(self):
                self.value = random.random()
    """)
    assert sorted(codes(findings)) == ["REP001", "REP101"]


# ---------------------------------------------------------------------------
# CLI: --select / --ignore / --explain
# ---------------------------------------------------------------------------

MIXED_SOURCE = textwrap.dedent("""
    import random
    import threading

    x = random.random()
    t = threading.Thread(target=print)
""")


def write_module(tmp_path, name, source):
    (tmp_path / name).write_text(textwrap.dedent(source))


def run(tmp_path, **kwargs):
    out, err = io.StringIO(), io.StringIO()
    code = run_lint(["mixed.py"], root=str(tmp_path), out=out, err=err,
                    **kwargs)
    return code, out.getvalue(), err.getvalue()


def test_select_by_code_and_category(tmp_path):
    write_module(tmp_path, "mixed.py", MIXED_SOURCE)
    code, out, _ = run(tmp_path, select=("REP104",))
    assert code == 1
    assert "REP104" in out and "REP001" not in out

    code, out, _ = run(tmp_path, select=("determinism",))
    assert code == 1
    assert "REP001" in out and "REP104" not in out


def test_ignore_by_category(tmp_path):
    write_module(tmp_path, "mixed.py", MIXED_SOURCE)
    code, out, _ = run(tmp_path, ignore=("concurrency",))
    assert code == 1
    assert "REP001" in out and "REP104" not in out

    code, out, _ = run(tmp_path, ignore=("determinism", "concurrency"))
    assert code == 0


def test_ignore_wins_over_select(tmp_path):
    write_module(tmp_path, "mixed.py", MIXED_SOURCE)
    code, _, _ = run(tmp_path, select=("REP104",), ignore=("REP104",))
    assert code == 0


def test_filters_apply_to_json_rules_listing(tmp_path):
    write_module(tmp_path, "mixed.py", MIXED_SOURCE)
    code, out, _ = run(tmp_path, select=("concurrency",),
                       output_format="json")
    assert code == 1
    payload = json.loads(out)
    assert [v["rule"] for v in payload["violations"]] == ["REP104"]
    assert all(v["category"] == "concurrency"
               for v in payload["violations"])


def test_invalid_filter_token_exits_2(tmp_path):
    write_module(tmp_path, "mixed.py", MIXED_SOURCE)
    code, _, err = run(tmp_path, select=("REP999",))
    assert code == 2
    assert "REP999" in err


def test_select_with_write_baseline_refused(tmp_path):
    write_module(tmp_path, "mixed.py", MIXED_SOURCE)
    code, _, err = run(tmp_path, select=("concurrency",),
                       write_baseline=True)
    assert code == 2
    assert "baseline" in err.lower()


def test_explain_prints_rule_contract():
    out, err = io.StringIO(), io.StringIO()
    assert run_lint(explain="REP105", out=out, err=err) == 0
    text = out.getvalue()
    assert "REP105" in text and "[concurrency]" in text
    assert "lock-order" in text


def test_explain_unknown_code_exits_2():
    out, err = io.StringIO(), io.StringIO()
    assert run_lint(explain="REP042", out=out, err=err) == 2
    assert "REP042" in err.getvalue()
