"""Tests for great-circle geometry."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    BUCHAREST,
    GeoPoint,
    KLAGENFURT,
    PRAGUE,
    VIENNA,
    destination_point,
    haversine,
    haversine_matrix,
    initial_bearing,
    path_length,
    place,
    route_distance_m,
)
from repro.units import to_km

lat_st = st.floats(min_value=-89.0, max_value=89.0, allow_nan=False)
lon_st = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)


def test_geopoint_validates_latitude():
    with pytest.raises(ValueError):
        GeoPoint(91.0, 0.0)
    with pytest.raises(ValueError):
        GeoPoint(-90.5, 0.0)


def test_geopoint_normalises_longitude():
    assert GeoPoint(0.0, 190.0).lon == pytest.approx(-170.0)
    assert GeoPoint(0.0, -180.0).lon == pytest.approx(-180.0)


def test_haversine_zero_for_identical_points():
    assert haversine(46.6, 14.3, 46.6, 14.3) == 0.0


def test_haversine_known_distance_klagenfurt_vienna():
    # Klagenfurt to Vienna is ~234 km great circle.
    d = KLAGENFURT.distance_to(VIENNA)
    assert 225e3 < d < 245e3


def test_haversine_quarter_meridian():
    # Equator to pole ~ 10,000 km by the metre's original definition.
    d = haversine(0.0, 0.0, 90.0, 0.0)
    assert d == pytest.approx(1.0008e7, rel=1e-3)


@given(lat_st, lon_st, lat_st, lon_st)
def test_haversine_symmetry(lat1, lon1, lat2, lon2):
    d_ab = haversine(lat1, lon1, lat2, lon2)
    d_ba = haversine(lat2, lon2, lat1, lon1)
    assert d_ab == pytest.approx(d_ba, rel=1e-12, abs=1e-9)


@given(lat_st, lon_st, lat_st, lon_st, lat_st, lon_st)
def test_haversine_triangle_inequality(lat1, lon1, lat2, lon2, lat3, lon3):
    d_ac = haversine(lat1, lon1, lat3, lon3)
    d_ab = haversine(lat1, lon1, lat2, lon2)
    d_bc = haversine(lat2, lon2, lat3, lon3)
    assert d_ac <= d_ab + d_bc + 1e-6


def test_haversine_matrix_matches_scalar():
    pts = [KLAGENFURT, VIENNA, PRAGUE, BUCHAREST]
    lats = np.array([p.lat for p in pts])
    lons = np.array([p.lon for p in pts])
    mat = haversine_matrix(lats[:, None], lons[:, None], lats[None, :],
                           lons[None, :])
    assert mat.shape == (4, 4)
    for i, a in enumerate(pts):
        for j, b in enumerate(pts):
            assert mat[i, j] == pytest.approx(
                haversine(a.lat, a.lon, b.lat, b.lon), rel=1e-12, abs=1e-6)


def test_bearing_cardinal_directions():
    assert initial_bearing(0.0, 0.0, 10.0, 0.0) == pytest.approx(0.0)
    assert initial_bearing(0.0, 0.0, 0.0, 10.0) == pytest.approx(90.0)
    assert initial_bearing(10.0, 0.0, 0.0, 0.0) == pytest.approx(180.0)
    assert initial_bearing(0.0, 10.0, 0.0, 0.0) == pytest.approx(270.0)


@given(lat_st, lon_st, st.floats(min_value=0.0, max_value=359.9),
       st.floats(min_value=0.0, max_value=2e6))
def test_destination_round_trip_distance(lat, lon, bearing, dist):
    origin = GeoPoint(lat, lon)
    dest = destination_point(origin, bearing, dist)
    assert origin.distance_to(dest) == pytest.approx(dist, rel=1e-6, abs=1.0)


def test_destination_negative_distance_rejected():
    with pytest.raises(ValueError):
        destination_point(KLAGENFURT, 0.0, -5.0)


def test_path_length_degenerate_cases():
    assert path_length([]) == 0.0
    assert path_length([KLAGENFURT]) == 0.0


def test_path_length_is_sum_of_legs():
    total = path_length([KLAGENFURT, VIENNA, PRAGUE])
    assert total == pytest.approx(
        KLAGENFURT.distance_to(VIENNA) + VIENNA.distance_to(PRAGUE))


def test_fig4_route_distance_matches_paper():
    """The Fig. 4 detour: Klagenfurt->Vienna->Prague->Bucharest->Vienna
    covers ~2544 km in the paper."""
    dist_km = to_km(route_distance_m(
        KLAGENFURT, VIENNA, PRAGUE, BUCHAREST, VIENNA))
    assert dist_km == pytest.approx(2544.0, rel=0.02)


def test_direct_distance_under_5km_for_c2_e3_scale():
    """Sanity: points < 5 km apart stay < 5 km (Table I locations)."""
    a = GeoPoint(46.62, 14.28)
    b = GeoPoint(46.63, 14.31)
    assert a.distance_to(b) < 5e3


def test_place_lookup_case_insensitive():
    assert place("Vienna") == VIENNA
    with pytest.raises(KeyError, match="unknown place"):
        place("atlantis")


def test_route_distance_rejects_sub_unity_circuity():
    with pytest.raises(ValueError):
        route_distance_m(KLAGENFURT, VIENNA, circuity=0.9)


def test_bearing_range():
    for (a, b) in [(KLAGENFURT, VIENNA), (VIENNA, PRAGUE),
                   (PRAGUE, BUCHAREST)]:
        assert 0.0 <= a.bearing_to(b) < 360.0


def test_geopoint_str_format():
    assert str(GeoPoint(46.6247, 14.305)) == "(46.6247, 14.3050)"


# ---------------------------------------------------------------------------
# haversine_many — the measurement kernel's bitwise contract
# ---------------------------------------------------------------------------

def test_haversine_many_bitwise_equals_scalar_randomised():
    """Element-wise *bitwise* equality against the scalar haversine.

    The vectorised serving tables select cells by argmax over values
    built from these distances, so 'close enough' is not enough: a
    single differing ulp could flip a tie and change every downstream
    random draw.
    """
    rng = np.random.default_rng(2025)
    lats1 = rng.uniform(-89.9, 89.9, 4096)
    lons1 = rng.uniform(-180.0, 180.0, 4096)
    lats2 = rng.uniform(-89.9, 89.9, 4096)
    lons2 = rng.uniform(-180.0, 180.0, 4096)
    from repro.geo import haversine_many
    many = haversine_many(lats1, lons1, lats2, lons2)
    for i in range(lats1.size):
        scalar = haversine(lats1[i], lons1[i], lats2[i], lons2[i])
        assert many[i] == scalar, (
            f"bitwise mismatch at {i}: {many[i]!r} != {scalar!r}")


@given(lat_st, lon_st, lat_st, lon_st)
def test_haversine_many_bitwise_equals_scalar_property(lat1, lon1,
                                                       lat2, lon2):
    from repro.geo import haversine_many
    many = haversine_many(np.array([lat1]), np.array([lon1]),
                          np.array([lat2]), np.array([lon2]))
    assert many[0] == haversine(lat1, lon1, lat2, lon2)


def test_haversine_many_broadcasts_to_matrix():
    from repro.geo import haversine_many
    site_lats = np.array([46.62, 46.65])
    site_lons = np.array([14.30, 14.28])
    pos_lats = np.array([46.60, 46.61, 46.64])
    pos_lons = np.array([14.29, 14.33, 14.27])
    matrix = haversine_many(site_lats[:, None], site_lons[:, None],
                            pos_lats[None, :], pos_lons[None, :])
    assert matrix.shape == (2, 3)
    for i in range(2):
        for j in range(3):
            assert matrix[i, j] == haversine(
                site_lats[i], site_lons[i], pos_lats[j], pos_lons[j])


def test_haversine_many_antipodal_and_identical_points():
    from repro.geo import haversine_many
    many = haversine_many(np.array([0.0, 0.0]), np.array([0.0, 0.0]),
                          np.array([0.0, 0.0]), np.array([0.0, 180.0]))
    assert many[0] == 0.0
    assert many[1] == haversine(0.0, 0.0, 0.0, 180.0)
