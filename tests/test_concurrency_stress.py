"""Concurrency stress tests, run with the sync watchdog in assert mode.

Three shared objects get hammered from multiple threads with
``repro.sim.sync`` assert mode on — so any guarded-attribute access
without its lock or any inconsistent lock-acquisition order raises
inside the worker threads and fails the test:

* :class:`CompiledScenarioCache` — the memory LRU under contention;
* :class:`ChannelModel` — the shadowing memo, bit-identical to serial;
* :class:`FleetBroker` — N workers racing lease/submit/expire, with
  every run dropped once (a simulated worker death) and resubmitted by
  a zombie after completion; the drained fleet must be bit-identical
  to a serial ``run_sweep``.
"""

import threading

import pytest

from repro.fleet import FleetStore, ResultCache, SweepAxis, SweepSpec, run_sweep
from repro.fleet.compiled import CompiledScenarioCache
from repro.geo.coords import GeoPoint
from repro.ran.channel import ChannelModel
from repro.scenarios import klagenfurt
from repro.service import FleetBroker
from repro.service.contracts import ResultSubmission
from repro.sim.sync import reset_watchdog, set_assert_mode

AXIS = "campaign.handover_interruption_s"


@pytest.fixture(autouse=True)
def assert_on():
    previous = set_assert_mode(True)
    reset_watchdog()
    try:
        yield
    finally:
        set_assert_mode(previous)
        reset_watchdog()


def run_threads(workers):
    """Run callables on threads; re-raise the first worker exception."""
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - rethrown below
                errors.append(exc)
        return runner

    threads = [threading.Thread(target=wrap(fn), daemon=True)
               for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads)
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# CompiledScenarioCache
# ---------------------------------------------------------------------------

class FakeCompiled:
    """Stands in for CompiledScenario: build cost without the physics."""

    def __init__(self, spec, *, seed, density):
        self.spec, self.seed, self.density = spec, seed, density


def test_compiled_cache_two_thread_hammer(monkeypatch):
    monkeypatch.setattr("repro.fleet.compiled.CompiledScenario",
                        FakeCompiled)
    cache = CompiledScenarioCache(directory=None, capacity=4)
    keys = [f"key-{i:02d}" for i in range(8)]  # 2x capacity: churn
    rounds = 400

    def hammer(offset):
        def work():
            for i in range(rounds):
                key = keys[(i * 3 + offset) % len(keys)]
                compiled = cache.get(None, 0, 1.0, key=key)
                assert isinstance(compiled, FakeCompiled)
        return work

    run_threads([hammer(0), hammer(1), hammer(2), hammer(3)])
    # Every get was either a memory hit or a build (no disk tier), and
    # the LRU never grew past its capacity.
    stats = cache.stats
    assert stats.memory_hits + stats.builds == 4 * rounds
    assert stats.disk_hits == 0 and stats.corrupt == 0
    with cache._lock:
        assert len(cache._memory) <= cache.capacity


# ---------------------------------------------------------------------------
# ChannelModel shadowing memo
# ---------------------------------------------------------------------------

def test_channel_shadowing_bit_identical_under_threads(monkeypatch):
    # A tiny capacity forces constant eviction + re-derivation while
    # four threads hammer the memo — values must still come out
    # bitwise-equal to the serial model (the draw is pure).
    monkeypatch.setattr(ChannelModel, "SHADOW_CACHE_CAPACITY", 16)
    points = [GeoPoint(46.62 + 0.0005 * i, 14.30 + 0.0005 * j)
              for i in range(8) for j in range(8)]
    serial = ChannelModel(3.5e9, seed=7)
    expected = [serial.shadowing_db(p) for p in points]

    shared = ChannelModel(3.5e9, seed=7)

    def hammer(rotation):
        def work():
            order = points[rotation:] + points[:rotation]
            for _ in range(3):
                for point, want in zip(
                        order, expected[rotation:] + expected[:rotation]):
                    assert shared.shadowing_db(point) == want
        return work

    run_threads([hammer(0), hammer(16), hammer(32), hammer(48)])
    # and a final single-threaded readback matches too
    assert [shared.shadowing_db(p) for p in points] == expected


# ---------------------------------------------------------------------------
# FleetBroker: lease/submit/expire race
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def stress_sweep():
    return SweepSpec(
        bases=(klagenfurt(),),
        axes=(SweepAxis(AXIS, (30e-3, 45e-3, 60e-3)),),
        seeds=(42, 43),
        density=2.0,
    )


@pytest.fixture(scope="module")
def stress_serial(stress_sweep):
    result = run_sweep(stress_sweep, executor="serial")
    return {record.run_id: record for record in result.records}


def test_broker_stress_no_lost_or_duplicated_runs(
        tmp_path, stress_sweep, stress_serial):
    cache = ResultCache(tmp_path / "cache")
    broker = FleetBroker(tmp_path / "fleets", cache=cache,
                         lease_ttl_s=0.2)
    ack = broker.submit_sweep(stress_sweep)
    total = ack.total
    assert ack.cached == 0

    state_lock = threading.Lock()
    dropped: set[str] = set()      # run_ids whose first lease "died"
    zombies = []                   # the grants those dead workers held
    accepted = []

    def worker(worker_id):
        def work():
            while True:
                grant = broker.lease(worker_id)
                if grant is None:
                    if broker.status(ack.fleet_id).complete:
                        return
                    broker.expire_leases()
                    continue
                run_id = grant.run["run_id"]
                with state_lock:
                    first_sight = run_id not in dropped
                    if first_sight:
                        dropped.add(run_id)
                        zombies.append(grant)
                if first_sight:
                    continue  # simulate a worker death mid-run
                result = broker.submit_result(ResultSubmission(
                    lease_id=grant.lease_id,
                    record=stress_serial[run_id].to_dict(),
                    wall_s=0.001))
                if result.accepted:
                    with state_lock:
                        accepted.append(run_id)
        return work

    run_threads([worker(f"w{i}") for i in range(4)])

    # no lost runs, no double-counted runs
    status = broker.status(ack.fleet_id)
    assert status.complete and status.done == total
    assert sorted(accepted) == sorted(stress_serial)
    assert len(zombies) == total          # every run died exactly once
    assert broker.requeues >= total       # ...and was requeued

    # every zombie finishing late is a duplicate, never an error
    for grant in zombies:
        run_id = grant.run["run_id"]
        late = broker.submit_result(ResultSubmission(
            lease_id=grant.lease_id,
            record=stress_serial[run_id].to_dict(), wall_s=0.001))
        assert not late.accepted and late.duplicate

    # the drained fleet is bit-identical to the serial sweep
    loaded = FleetStore(broker.fleet_dir(ack.fleet_id)).load()
    assert [r.to_dict() for r in loaded.records] == \
        [stress_serial[run.run_id].to_dict()
         for run in stress_sweep.expand()]

    # and the shared cache can prefill an identical resubmission fully
    again = broker.submit_sweep(stress_sweep)
    assert again.cached == total
