"""Tests for the crash-safe fleet journal: append/replay round trips,
sequence continuation across reopen, torn-tail tolerance, staged
compaction (including a crash between the rename and the unlinks), and
the stats the readiness probe reports."""

import json

import pytest

from repro.service.journal import (
    SNAPSHOT_TYPE,
    FleetJournal,
    open_journal,
)


@pytest.fixture
def journal(tmp_path):
    return FleetJournal(tmp_path / "journal")


def _entries(n, kind="submit"):
    return [{"type": kind, "fleet_id": f"fleet-{i:04d}"}
            for i in range(n)]


# ---------------------------------------------------------------------------
# Append + replay
# ---------------------------------------------------------------------------

def test_append_replay_round_trip(journal):
    for entry in _entries(3):
        journal.append(entry)
    replayed = journal.replay()
    assert [e["fleet_id"] for e in replayed] == \
        ["fleet-0000", "fleet-0001", "fleet-0002"]
    assert [e["seq"] for e in replayed] == [1, 2, 3]


def test_sequence_continues_across_reopen(journal):
    for entry in _entries(2):
        journal.append(entry)
    reopened = FleetJournal(journal.directory)
    assert reopened.append({"type": "ack"}) == 3


def test_empty_directory_replays_nothing(tmp_path):
    assert FleetJournal(tmp_path / "fresh").replay() == []


def test_open_journal_none_means_durability_off(tmp_path):
    assert open_journal(None) is None
    assert open_journal(tmp_path / "j").directory == tmp_path / "j"


# ---------------------------------------------------------------------------
# Crash tolerance
# ---------------------------------------------------------------------------

def test_torn_final_line_is_dropped_not_fatal(journal):
    for entry in _entries(2):
        journal.append(entry)
    # A crash mid-append leaves a partial JSON line at the tail.
    with journal.segments()[-1].open("a") as handle:
        handle.write('{"type": "ack", "fleet')
    reopened = FleetJournal(journal.directory)
    replayed = reopened.replay()
    assert len(replayed) == 2
    assert reopened.dropped_lines == 1


def test_non_dict_lines_are_dropped(journal):
    journal.append({"type": "submit", "fleet_id": "fleet-0001"})
    with journal.segments()[-1].open("a") as handle:
        handle.write('"just a string"\n[1, 2, 3]\n')
    assert len(journal.replay()) == 1
    assert journal.dropped_lines == 2


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------

def test_compact_replaces_segments_with_a_snapshot(journal):
    for entry in _entries(5):
        journal.append(entry)
    assert journal.appended_since_compact == 5
    journal.compact(_entries(2))
    segments = journal.segments()
    assert len(segments) == 1
    assert journal.appended_since_compact == 0
    # The new segment leads with the snapshot marker.
    head = json.loads(segments[0].read_text().splitlines()[0])
    assert head["type"] == SNAPSHOT_TYPE
    assert [e["fleet_id"] for e in journal.replay()] == \
        ["fleet-0000", "fleet-0001"]


def test_appends_after_compaction_replay_in_order(journal):
    journal.append({"type": "submit", "fleet_id": "old"})
    journal.compact([{"type": "submit", "fleet_id": "kept"}])
    journal.append({"type": "ack", "fleet_id": "kept"})
    assert [(e["type"], e["fleet_id"]) for e in journal.replay()] == \
        [("submit", "kept"), ("ack", "kept")]


def test_crash_between_replace_and_unlink_is_harmless(journal):
    """Staged compaction's worst case: the compacted segment landed
    but the old segments survive.  The snapshot marker must make
    replay discard them."""
    for entry in _entries(3):
        journal.append(entry)
    old_segment = journal.segments()[-1]
    stale = old_segment.read_text()
    journal.compact([{"type": "submit", "fleet_id": "fleet-0001"}])
    # Resurrect the pre-compaction segment, as if unlink never ran.
    old_segment.write_text(stale)
    replayed = FleetJournal(journal.directory).replay()
    assert [e["fleet_id"] for e in replayed] == ["fleet-0001"]


def test_snapshots_never_appear_in_replay(journal):
    journal.compact(_entries(1))
    assert all(e.get("type") != SNAPSHOT_TYPE
               for e in journal.replay())


# ---------------------------------------------------------------------------
# Stats + helpers
# ---------------------------------------------------------------------------

def test_stats_report_lag_and_sizes(journal):
    for entry in _entries(4):
        journal.append(entry)
    stats = journal.stats()
    assert stats["segments"] == 1
    assert stats["entries"] == 4
    assert stats["lag"] == 4
    assert stats["bytes"] > 0
    assert stats["fsync"] is False
    journal.compact([])
    assert journal.stats()["lag"] == 0


def test_iter_types_filters(journal):
    journal.append({"type": "submit", "fleet_id": "f"})
    journal.append({"type": "lease", "fleet_id": "f"})
    journal.append({"type": "ack", "fleet_id": "f"})
    kinds = [e["type"] for e in journal.iter_types("submit", "ack")]
    assert kinds == ["submit", "ack"]


def test_sync_flushes_without_error(journal):
    journal.append({"type": "submit", "fleet_id": "f"})
    journal.sync()   # must not raise, segment + dir fsynced


def test_fsync_mode_appends_are_replayable(tmp_path):
    journal = FleetJournal(tmp_path / "durable", fsync=True)
    journal.append({"type": "submit", "fleet_id": "f"})
    assert journal.stats()["fsync"] is True
    assert len(journal.replay()) == 1
